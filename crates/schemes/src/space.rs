//! Reconfiguration candidate spaces for model checking.

use adore_core::{Configuration, NodeSet};

/// A [`Configuration`] whose one-step reconfiguration successors can be
/// enumerated over a bounded node universe.
///
/// The model checker uses this to know *which* `reconfig` operations to try
/// from a given state; every candidate must satisfy `self.r1_plus(&c)` so
/// that the `R1⁺` guard never filters the whole set (implementations are
/// tested for this).
///
/// # Examples
///
/// ```
/// use adore_core::{node_set, Configuration};
/// use adore_schemes::{ReconfigSpace, SingleNode};
///
/// let cf = SingleNode::new([1, 2, 3]);
/// for cand in cf.candidates(&node_set([1, 2, 3, 4])) {
///     assert!(cf.r1_plus(&cand));
/// }
/// ```
pub trait ReconfigSpace: Configuration {
    /// The configurations directly reachable from `self` by one
    /// reconfiguration, drawn from `universe`.
    fn candidates(&self, universe: &NodeSet) -> Vec<Self>;
}
