//! A managed primary *set* with free passive backups — the composition §6
//! suggests to fix primary-backup's availability problem:
//!
//! > "A more reliable alternative is to use one of the previous approaches
//! > to manage a set of primaries that can be replaced as needed.
//! > Primaries can then be replaced one at a time, and passive backups can
//! > still be freely added or removed."
//!
//! Quorums are majorities **of the primary set**; `R1⁺` lets the primary
//! set change by at most one node (the single-node rule) while the backup
//! set changes arbitrarily. OVERLAP reduces to single-node majority
//! overlap on the primaries; backups never vote.

use serde::{Deserialize, Serialize};

use adore_core::{node_set, Configuration, NodeSet};

/// A majority-managed primary set plus freely changeable passive backups.
///
/// # Examples
///
/// ```
/// use adore_core::{node_set, Configuration};
/// use adore_schemes::ManagedPrimary;
///
/// let cf = ManagedPrimary::new([1, 2, 3], [4, 5]);
/// // A majority of the primaries is a quorum; backups never count.
/// assert!(cf.is_quorum(&node_set([1, 2])));
/// assert!(!cf.is_quorum(&node_set([3, 4, 5])));
/// // One primary may be replaced per step while backups swap wholesale.
/// assert!(cf.r1_plus(&ManagedPrimary::new([1, 2, 3, 4], [6, 7, 8])));
/// assert!(!cf.r1_plus(&ManagedPrimary::new([4, 5, 6], [])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ManagedPrimary {
    primaries: NodeSet,
    backups: NodeSet,
}

impl ManagedPrimary {
    /// Creates a configuration from primary and backup node numbers; a
    /// node listed in both is a primary.
    ///
    /// # Panics
    ///
    /// Panics if the primary set is empty (no quorums could ever form).
    #[must_use]
    pub fn new<I, J>(primaries: I, backups: J) -> Self
    where
        I: IntoIterator<Item = u32>,
        J: IntoIterator<Item = u32>,
    {
        let primaries = node_set(primaries);
        assert!(!primaries.is_empty(), "the primary set must be non-empty");
        let backups = node_set(backups).difference(&primaries).copied().collect();
        ManagedPrimary { primaries, backups }
    }

    /// The active primary set.
    #[must_use]
    pub fn primaries(&self) -> &NodeSet {
        &self.primaries
    }

    /// The passive backups (disjoint from the primaries).
    #[must_use]
    pub fn backups(&self) -> &NodeSet {
        &self.backups
    }

    fn primaries_differ_by_at_most_one(&self, next: &Self) -> bool {
        let added = next.primaries.difference(&self.primaries).count();
        let removed = self.primaries.difference(&next.primaries).count();
        added + removed <= 1
    }
}

impl Configuration for ManagedPrimary {
    fn members(&self) -> NodeSet {
        self.primaries.union(&self.backups).copied().collect()
    }

    fn is_quorum(&self, s: &NodeSet) -> bool {
        self.primaries.len() < 2 * s.intersection(&self.primaries).count()
    }

    fn r1_plus(&self, next: &Self) -> bool {
        self.primaries_differ_by_at_most_one(next)
    }
}

impl crate::space::ReconfigSpace for ManagedPrimary {
    fn candidates(&self, universe: &NodeSet) -> Vec<Self> {
        let mut out = Vec::new();
        // Primary changes: add or remove one (never emptying the set); the
        // backups pick up/release the moved node.
        for &n in universe {
            if self.primaries.contains(&n) {
                if self.primaries.len() > 1 {
                    let mut p = self.primaries.clone();
                    p.remove(&n);
                    let mut b = self.backups.clone();
                    b.insert(n);
                    out.push(ManagedPrimary {
                        primaries: p,
                        backups: b,
                    });
                }
            } else {
                let mut p = self.primaries.clone();
                p.insert(n);
                let mut b = self.backups.clone();
                b.remove(&n);
                out.push(ManagedPrimary {
                    primaries: p,
                    backups: b,
                });
            }
        }
        // One representative backup-set change (full swap to the remaining
        // universe); arbitrary backup changes are all R1⁺-admissible, so a
        // single representative keeps model-checking branching bounded.
        let swapped: NodeSet = universe
            .difference(&self.primaries)
            .copied()
            .filter(|n| !self.backups.contains(n))
            .collect();
        if swapped != self.backups {
            out.push(ManagedPrimary {
                primaries: self.primaries.clone(),
                backups: swapped,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ReconfigSpace;
    use adore_core::{check_overlap, check_reflexive};

    #[test]
    fn quorums_are_primary_majorities() {
        let cf = ManagedPrimary::new([1, 2, 3], [4, 5, 6]);
        assert!(cf.is_quorum(&node_set([1, 2])));
        assert!(cf.is_quorum(&node_set([2, 3, 4])));
        assert!(!cf.is_quorum(&node_set([1, 4, 5, 6])));
    }

    #[test]
    fn constructor_keeps_sets_disjoint_and_primaries_nonempty() {
        let cf = ManagedPrimary::new([1, 2], [2, 3]);
        assert_eq!(cf.primaries(), &node_set([1, 2]));
        assert_eq!(cf.backups(), &node_set([3]));
        assert_eq!(cf.members(), node_set([1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "primary set must be non-empty")]
    fn empty_primary_set_is_rejected() {
        let _ = ManagedPrimary::new([], [1, 2]);
    }

    #[test]
    fn r1_plus_bounds_primary_churn_only() {
        let cf = ManagedPrimary::new([1, 2, 3], [4]);
        assert!(check_reflexive(&cf));
        // Backups swap freely.
        assert!(cf.r1_plus(&ManagedPrimary::new([1, 2, 3], [7, 8, 9])));
        // Promote a backup (primary set +1).
        assert!(cf.r1_plus(&ManagedPrimary::new([1, 2, 3, 4], [])));
        // Demote a primary (primary set -1).
        assert!(cf.r1_plus(&ManagedPrimary::new([1, 2], [3, 4])));
        // Replacing a primary is two changes: rejected.
        assert!(!cf.r1_plus(&ManagedPrimary::new([1, 2, 4], [3])));
    }

    #[test]
    fn overlap_holds_exhaustively_over_small_universe() {
        // All (primaries, backups) splits over {1..4}, all supporter pairs.
        let universe: Vec<u32> = (1..=4).collect();
        let mut configs = Vec::new();
        for p_mask in 1u64..16 {
            for b_mask in 0u64..16 {
                if p_mask & b_mask != 0 {
                    continue;
                }
                let prim: Vec<u32> = universe
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &n)| (p_mask & (1 << i) != 0).then_some(n))
                    .collect();
                let back: Vec<u32> = universe
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &n)| (b_mask & (1 << i) != 0).then_some(n))
                    .collect();
                configs.push(ManagedPrimary::new(prim, back));
            }
        }
        let subsets: Vec<NodeSet> = (0u64..16)
            .map(|mask| {
                node_set(
                    universe
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &n)| (mask & (1 << i) != 0).then_some(n)),
                )
            })
            .collect();
        for a in &configs {
            for b in &configs {
                for q in &subsets {
                    for q2 in &subsets {
                        assert!(
                            check_overlap(a, b, q, q2),
                            "overlap violated: {a:?} {b:?} {q:?} {q2:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_preserve_r1_and_nonempty_primaries() {
        let cf = ManagedPrimary::new([1, 2], [3]);
        let universe = node_set([1, 2, 3, 4]);
        let cands = cf.candidates(&universe);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(cf.r1_plus(c), "{c:?}");
            assert!(!c.primaries().is_empty());
        }
    }
}
