//! Raft's single-node membership change (§6, "Raft Single-Node").
//!
//! ```text
//! Config        ≜ Set(N_nid)
//! R1⁺(C, C')    ≜ C = C' ∨ ∃s. C = C' ∪ {s} ∨ C' = C ∪ {s}
//! isQuorum(S,C) ≜ |C| < 2·|S ∩ C|
//! ```

use serde::{Deserialize, Serialize};

use adore_core::{node_set, Configuration, NodeId, NodeSet};

/// Majority quorums over a member set that may change by at most one node
/// per reconfiguration.
///
/// # Examples
///
/// ```
/// use adore_schemes::SingleNode;
/// use adore_core::Configuration;
///
/// let four = SingleNode::new([1, 2, 3, 4]);
/// let three = SingleNode::new([1, 2, 3]);
/// assert!(four.r1_plus(&three));          // remove one
/// assert!(three.r1_plus(&four));          // add one
/// assert!(!four.r1_plus(&SingleNode::new([1, 2]))); // two at once: no
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SingleNode {
    members: NodeSet,
}

impl SingleNode {
    /// Creates a configuration over the given node numbers.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_schemes::SingleNode;
    /// use adore_core::Configuration;
    /// assert_eq!(SingleNode::new([1, 2, 3]).members().len(), 3);
    /// ```
    #[must_use]
    pub fn new<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        SingleNode {
            members: node_set(ids),
        }
    }

    /// Creates a configuration from an existing node set.
    #[must_use]
    pub fn from_set(members: NodeSet) -> Self {
        SingleNode { members }
    }

    /// The configuration with `node` added.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::NodeId;
    /// use adore_schemes::SingleNode;
    /// let cf = SingleNode::new([1, 2]).with(NodeId(3));
    /// assert_eq!(cf, SingleNode::new([1, 2, 3]));
    /// ```
    #[must_use]
    pub fn with(&self, node: NodeId) -> Self {
        let mut members = self.members.clone();
        members.insert(node);
        SingleNode { members }
    }

    /// The configuration with `node` removed.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::NodeId;
    /// use adore_schemes::SingleNode;
    /// let cf = SingleNode::new([1, 2, 3]).without(NodeId(3));
    /// assert_eq!(cf, SingleNode::new([1, 2]));
    /// ```
    #[must_use]
    pub fn without(&self, node: NodeId) -> Self {
        let mut members = self.members.clone();
        members.remove(&node);
        SingleNode { members }
    }
}

impl Configuration for SingleNode {
    fn members(&self) -> NodeSet {
        self.members.clone()
    }

    fn is_quorum(&self, s: &NodeSet) -> bool {
        self.members.len() < 2 * s.intersection(&self.members).count()
    }

    fn r1_plus(&self, next: &Self) -> bool {
        let added = next.members.difference(&self.members).count();
        let removed = self.members.difference(&next.members).count();
        added + removed <= 1
    }
}

impl crate::space::ReconfigSpace for SingleNode {
    fn candidates(&self, universe: &NodeSet) -> Vec<Self> {
        let mut out = Vec::new();
        for &n in universe {
            if self.members.contains(&n) {
                // Never shrink to an empty configuration.
                if self.members.len() > 1 {
                    out.push(self.without(n));
                }
            } else {
                out.push(self.with(n));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ReconfigSpace;
    use adore_core::{check_overlap, check_reflexive};

    #[test]
    fn quorum_is_strict_majority_of_members() {
        let cf = SingleNode::new([1, 2, 3, 4, 5]);
        assert!(!cf.is_quorum(&node_set([1, 2])));
        assert!(cf.is_quorum(&node_set([1, 2, 3])));
        // Outsiders don't count.
        assert!(!cf.is_quorum(&node_set([6, 7, 8])));
        assert!(cf.is_quorum(&node_set([1, 2, 3, 9])));
    }

    #[test]
    fn r1_plus_allows_at_most_one_change() {
        let cf = SingleNode::new([1, 2, 3]);
        assert!(check_reflexive(&cf));
        assert!(cf.r1_plus(&cf.with(NodeId(4))));
        assert!(cf.r1_plus(&cf.without(NodeId(3))));
        // Replacement = one add + one remove: rejected.
        assert!(!cf.r1_plus(&SingleNode::new([1, 2, 4])));
    }

    #[test]
    fn overlap_holds_exhaustively_over_five_node_universe() {
        // Every R1+-related pair of configs over {1..5}, every quorum pair.
        let universe: Vec<u32> = (1..=5).collect();
        let configs: Vec<SingleNode> = (1u32..32)
            .map(|mask| {
                SingleNode::new(
                    universe
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &n)| (mask & (1 << i) != 0).then_some(n)),
                )
            })
            .collect();
        let subsets: Vec<NodeSet> = (0u32..32)
            .map(|mask| {
                node_set(
                    universe
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &n)| (mask & (1 << i) != 0).then_some(n)),
                )
            })
            .collect();
        for a in &configs {
            for b in &configs {
                for q in &subsets {
                    for q2 in &subsets {
                        assert!(
                            check_overlap(a, b, q, q2),
                            "overlap violated: {a:?} {b:?} {q:?} {q2:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_change_one_node_and_keep_nonempty() {
        let cf = SingleNode::new([1, 2]);
        let universe = node_set([1, 2, 3]);
        let cands = cf.candidates(&universe);
        assert!(cands.contains(&SingleNode::new([1, 2, 3])));
        assert!(cands.contains(&SingleNode::new([1])));
        assert!(cands.contains(&SingleNode::new([2])));
        assert_eq!(cands.len(), 3);
        // A singleton never proposes emptiness.
        let single = SingleNode::new([1]);
        assert!(!single
            .candidates(&universe)
            .iter()
            .any(|c| c.members().is_empty()));
        // All candidates are R1+-related.
        for c in cf.candidates(&universe) {
            assert!(cf.r1_plus(&c));
        }
    }
}
