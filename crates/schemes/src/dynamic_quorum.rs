//! Dynamic quorum sizes à la Vertical Paxos (§6, "Dynamic Quorum Sizes").
//!
//! The quorum size `q` is part of the configuration and may be tuned to
//! trade reconfiguration agility against fault tolerance:
//!
//! ```text
//! Config                  ≜ N * Set(N_nid)
//! R1⁺((q,C), (q',C'))     ≜ (C ⊆ C' ∧ |C'| < q + q') ∨ (C' ⊆ C ∧ |C| < q + q')
//! isQuorum(S, (q, C))     ≜ q ≤ |S ∩ C|
//! ```
//!
//! Overlap follows from the pigeonhole principle: if the two quorum sizes
//! together exceed the larger member set, any two quorums must share a node.
//!
//! **Soundness caveat (found by exhaustive validation):** the REFLEXIVE
//! assumption instantiates the pigeonhole condition with `q + q`, so a
//! configuration is only self-consistent when `2q > |C|`. A sub-majority
//! quorum size (e.g. `q = 2` over four nodes) admits disjoint quorums of
//! *itself*; the constructor therefore requires strict-majority-or-larger
//! quorum sizes, which is also the regime Vertical Paxos operates in.

use serde::{Deserialize, Serialize};

use adore_core::{node_set, Configuration, NodeSet};

/// A member set with an explicit quorum size.
///
/// # Examples
///
/// ```
/// use adore_core::{node_set, Configuration};
/// use adore_schemes::DynamicQuorum;
///
/// // Five nodes with quorum size 4: up to three nodes may change at once.
/// let big = DynamicQuorum::new(4, [1, 2, 3, 4, 5]);
/// assert!(big.is_quorum(&node_set([1, 2, 3, 4])));
/// assert!(!big.is_quorum(&node_set([1, 2, 3])));
/// let shrunk = DynamicQuorum::new(2, [1, 2]);
/// assert!(big.r1_plus(&shrunk)); // |{1..5}| = 5 < 4 + 2
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DynamicQuorum {
    quorum_size: usize,
    members: NodeSet,
}

impl DynamicQuorum {
    /// Creates a configuration with quorum size `quorum_size` over the
    /// given node numbers.
    ///
    /// # Panics
    ///
    /// Panics unless `|members|/2 < quorum_size <= |members|`: sub-majority
    /// quorum sizes admit disjoint quorums of the same configuration
    /// (violating REFLEXIVE+OVERLAP), and oversized ones could never
    /// commit.
    #[must_use]
    pub fn new<I: IntoIterator<Item = u32>>(quorum_size: usize, ids: I) -> Self {
        let members = node_set(ids);
        assert!(
            2 * quorum_size > members.len() && quorum_size <= members.len(),
            "quorum size must be within |members|/2+1..=|members|"
        );
        DynamicQuorum {
            quorum_size,
            members,
        }
    }

    /// The configured quorum size.
    #[must_use]
    pub fn quorum_size(&self) -> usize {
        self.quorum_size
    }
}

impl Configuration for DynamicQuorum {
    fn members(&self) -> NodeSet {
        self.members.clone()
    }

    fn is_quorum(&self, s: &NodeSet) -> bool {
        self.quorum_size <= s.intersection(&self.members).count()
    }

    fn r1_plus(&self, next: &Self) -> bool {
        let sum = self.quorum_size + next.quorum_size;
        (self.members.is_subset(&next.members) && next.members.len() < sum)
            || (next.members.is_subset(&self.members) && self.members.len() < sum)
    }
}

impl crate::space::ReconfigSpace for DynamicQuorum {
    fn candidates(&self, universe: &NodeSet) -> Vec<Self> {
        // Enumerate super- and subsets of the current members over the
        // universe, with every quorum size that keeps R1⁺ satisfied.
        let mut out = Vec::new();
        let nodes: Vec<_> = universe.iter().copied().collect();
        for mask in 1u64..(1 << nodes.len()) {
            let members: NodeSet = nodes
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| (mask & (1 << i) != 0).then_some(n))
                .collect();
            if !(members.is_subset(&self.members) || self.members.is_subset(&members)) {
                continue;
            }
            for q in (members.len() / 2 + 1)..=members.len() {
                let cand = DynamicQuorum {
                    quorum_size: q,
                    members: members.clone(),
                };
                if cand != *self && self.r1_plus(&cand) {
                    out.push(cand);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ReconfigSpace;
    use adore_core::{check_overlap, check_reflexive};

    #[test]
    fn quorum_counts_member_intersection() {
        let cf = DynamicQuorum::new(2, [1, 2, 3]);
        assert!(cf.is_quorum(&node_set([1, 2])));
        assert!(cf.is_quorum(&node_set([2, 3, 9])));
        assert!(!cf.is_quorum(&node_set([3, 9])));
    }

    #[test]
    #[should_panic(expected = "quorum size must be within")]
    fn sub_majority_quorum_is_rejected() {
        // q = 2 over {1,2,3,4} admits the disjoint quorums {1,2} and {3,4}.
        let _ = DynamicQuorum::new(2, [1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "quorum size must be within")]
    fn oversized_quorum_is_rejected() {
        let _ = DynamicQuorum::new(3, [1, 2]);
    }

    #[test]
    fn r1_plus_is_the_pigeonhole_condition() {
        let five4 = DynamicQuorum::new(4, [1, 2, 3, 4, 5]);
        assert!(check_reflexive(&five4));
        // Shrinking to {1,2} with quorum 2: 5 < 4 + 2.
        assert!(five4.r1_plus(&DynamicQuorum::new(2, [1, 2])));
        // Growing to seven nodes with quorum 4: 7 < 4 + 4 holds.
        assert!(five4.r1_plus(&DynamicQuorum::new(4, (1..=7).collect::<Vec<_>>())));
        // But with quorum 5 of 9 members: 9 < 4 + 5 fails.
        assert!(!five4.r1_plus(&DynamicQuorum::new(5, (1..=9).collect::<Vec<_>>())));
        // Non-nested member sets are never related.
        assert!(!five4.r1_plus(&DynamicQuorum::new(4, [2, 3, 4, 5, 6])));
    }

    #[test]
    fn overlap_holds_exhaustively_over_small_universe() {
        // All (q, members) configs over {1..4} and all supporter pairs.
        let universe: Vec<u32> = (1..=4).collect();
        let mut configs = Vec::new();
        for mask in 1u64..16 {
            let members: Vec<u32> = universe
                .iter()
                .enumerate()
                .filter_map(|(i, &n)| (mask & (1 << i) != 0).then_some(n))
                .collect();
            for q in (members.len() / 2 + 1)..=members.len() {
                configs.push(DynamicQuorum::new(q, members.iter().copied()));
            }
        }
        let subsets: Vec<NodeSet> = (0u64..16)
            .map(|mask| {
                node_set(
                    universe
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &n)| (mask & (1 << i) != 0).then_some(n)),
                )
            })
            .collect();
        for a in &configs {
            for b in &configs {
                for q in &subsets {
                    for q2 in &subsets {
                        assert!(
                            check_overlap(a, b, q, q2),
                            "overlap violated: {a:?} {b:?} {q:?} {q2:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_are_all_r1_related() {
        let cf = DynamicQuorum::new(2, [1, 2, 3]);
        let universe = node_set([1, 2, 3, 4]);
        let cands = cf.candidates(&universe);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(cf.r1_plus(c), "candidate {c:?} not R1+-related");
            assert_ne!(c, &cf);
        }
    }
}
