//! Reconfiguration scheme instantiations for the ADORE model.
//!
//! ADORE's safety theorem is parametric in the configuration type: any
//! implementation of [`adore_core::Configuration`] satisfying REFLEXIVE and
//! OVERLAP (Fig. 7 of the paper) inherits safety *for free*. This crate
//! provides the paper's six instantiations (§6 plus the "two others"
//! mentioned in §7) and an exhaustive validator discharging the two
//! assumptions over bounded universes:
//!
//! | Scheme | Type | Quorums | `R1⁺` |
//! |---|---|---|---|
//! | [`SingleNode`] | Raft single-node (§6) | majority | differ by ≤ 1 node |
//! | [`Joint`] | Raft joint consensus (§6) | majorities of old **and** new | stable→joint→stable |
//! | [`PrimaryBackup`] | chain-replication style (§6) | contains the primary | same primary |
//! | [`DynamicQuorum`] | Vertical-Paxos style (§6) | `q ≤ |S ∩ C|` | nested + pigeonhole |
//! | [`StaticMajority`] | static baseline (CADO) | majority | equality |
//! | [`WeightedMajority`] | weighted votes | weight majority | equality |
//! | [`ManagedPrimary`] | §6's suggested composition | primary-set majority | primaries ± 1, backups free |
//! | [`ByzantineQuorum`] | §9's BFT direction | `2f+1` of `3f+1` | nested ± 3 (adjacent `f`) |
//!
//! # Validating a scheme
//!
//! ```
//! use adore_core::node_set;
//! use adore_schemes::{powerset_configs, validate, SingleNode};
//!
//! let configs = powerset_configs(&node_set([1, 2, 3, 4]), SingleNode::from_set);
//! assert!(validate(&configs).is_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod byzantine;
mod dynamic_quorum;
mod joint;
mod managed_primary;
mod primary_backup;
mod single_node;
mod space;
mod validate;
mod weighted;

pub use byzantine::ByzantineQuorum;
pub use dynamic_quorum::DynamicQuorum;
pub use joint::Joint;
pub use managed_primary::ManagedPrimary;
pub use primary_backup::PrimaryBackup;
pub use single_node::SingleNode;
pub use space::ReconfigSpace;
pub use validate::{powerset_configs, validate, ValidationReport};
pub use weighted::WeightedMajority;

/// The static-majority baseline scheme (re-exported from `adore-core`,
/// where it doubles as the built-in example configuration).
pub use adore_core::majority::Majority as StaticMajority;

impl ReconfigSpace for StaticMajority {
    fn candidates(&self, _universe: &adore_core::NodeSet) -> Vec<Self> {
        // R1⁺ is equality: re-proposing the current configuration is the
        // only legal "change".
        vec![self.clone()]
    }
}

impl ReconfigSpace for WeightedMajority {
    fn candidates(&self, _universe: &adore_core::NodeSet) -> Vec<Self> {
        vec![self.clone()]
    }
}
