//! Property-based tests for the cache-tree substrate.
//!
//! These correspond to the generic tree well-formedness lemmas of the Coq
//! development: arbitrary sequences of `addLeaf`/`insertBtw` operations
//! preserve the structural invariants, and the derived queries (ancestry,
//! nearest common ancestor, path interiors) satisfy their algebraic laws.

use adore_tree::{CacheId, Tree};
use proptest::prelude::*;

/// A randomly generated mutation script: each entry picks a parent (modulo
/// the current tree size) and whether to `add_leaf` or `insert_between`.
fn script() -> impl Strategy<Value = Vec<(usize, bool)>> {
    prop::collection::vec((0usize..64, any::<bool>()), 0..64)
}

/// Replays a script, returning the resulting tree.
fn build(script: &[(usize, bool)]) -> Tree<u32> {
    let mut tree = Tree::new(0);
    for (i, &(parent_seed, between)) in script.iter().enumerate() {
        let parent = CacheId::from_index(parent_seed % tree.len());
        let payload = (i + 1) as u32;
        if between {
            tree.insert_between(parent, payload).unwrap();
        } else {
            tree.add_leaf(parent, payload).unwrap();
        }
    }
    tree
}

proptest! {
    #[test]
    fn mutations_preserve_well_formedness(s in script()) {
        let tree = build(&s);
        prop_assert!(tree.check_well_formed().is_ok());
        prop_assert_eq!(tree.len(), s.len() + 1);
    }

    #[test]
    fn ancestry_is_a_strict_partial_order(s in script()) {
        let tree = build(&s);
        let ids: Vec<_> = tree.ids().collect();
        for &a in &ids {
            // Irreflexive.
            prop_assert!(!tree.is_strict_ancestor(a, a));
            for &b in &ids {
                // Antisymmetric.
                if tree.is_strict_ancestor(a, b) {
                    prop_assert!(!tree.is_strict_ancestor(b, a));
                }
            }
        }
    }

    #[test]
    fn every_node_descends_from_root(s in script()) {
        let tree = build(&s);
        for id in tree.ids() {
            prop_assert!(tree.is_ancestor_or_self(Tree::<u32>::ROOT, id));
        }
    }

    #[test]
    fn nca_is_commutative_and_ancestral(s in script()) {
        let tree = build(&s);
        let ids: Vec<_> = tree.ids().collect();
        for &a in ids.iter().take(12) {
            for &b in ids.iter().take(12) {
                let nca = tree.nearest_common_ancestor(a, b).unwrap();
                prop_assert_eq!(tree.nearest_common_ancestor(b, a), Some(nca));
                prop_assert!(tree.is_ancestor_or_self(nca, a));
                prop_assert!(tree.is_ancestor_or_self(nca, b));
                // Nearest: no child of nca is an ancestor of both.
                for &c in tree.children(nca) {
                    prop_assert!(
                        !(tree.is_ancestor_or_self(c, a) && tree.is_ancestor_or_self(c, b))
                    );
                }
            }
        }
    }

    #[test]
    fn path_interior_length_matches_depths(s in script()) {
        let tree = build(&s);
        let ids: Vec<_> = tree.ids().collect();
        for &a in ids.iter().take(12) {
            for &b in ids.iter().take(12) {
                let nca = tree.nearest_common_ancestor(a, b).unwrap();
                let interior = tree.path_interior(a, b).unwrap();
                let (da, db, dn) = (
                    tree.depth(a).unwrap(),
                    tree.depth(b).unwrap(),
                    tree.depth(nca).unwrap(),
                );
                // Total path node count (inclusive) minus the two endpoints.
                let expected = if a == b {
                    0
                } else {
                    (da - dn) + (db - dn) + 1 - 2
                };
                prop_assert_eq!(interior.len(), expected);
                // Endpoints never appear in the interior.
                prop_assert!(!interior.contains(&a));
                prop_assert!(!interior.contains(&b));
            }
        }
    }

    #[test]
    fn ancestors_walk_has_strictly_decreasing_depth(s in script()) {
        let tree = build(&s);
        for id in tree.ids() {
            let depths: Vec<_> = tree
                .ancestors_inclusive(id)
                .map(|a| tree.depth(a).unwrap())
                .collect();
            for w in depths.windows(2) {
                prop_assert_eq!(w[0], w[1] + 1);
            }
        }
    }

    #[test]
    fn prune_to_branch_preserves_well_formedness(s in script(), keep_seed in 0usize..64) {
        let mut tree = build(&s);
        let keep = CacheId::from_index(keep_seed % tree.len());
        let before_branch: Vec<u32> = tree
            .ancestors_inclusive(keep)
            .map(|id| *tree.payload(id).unwrap())
            .collect();
        let map = tree.prune_to_branch(keep).unwrap();
        prop_assert!(tree.check_well_formed().is_ok());
        // The kept branch survives with payloads intact.
        let after_branch: Vec<u32> = tree
            .ancestors_inclusive(map[&keep])
            .map(|id| *tree.payload(id).unwrap())
            .collect();
        prop_assert_eq!(before_branch, after_branch);
    }
}
