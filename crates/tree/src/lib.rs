//! Append-only cache-tree substrate for the ADORE model.
//!
//! The ADORE model ("Adore: Atomic Distributed Objects with Certified
//! Reconfiguration", PLDI 2022) represents the entire history of a
//! replicated system — committed states, partial failures, and configuration
//! changes — as a single tree of *caches*. This crate provides that tree as a
//! reusable, payload-generic data structure, together with the structural
//! queries the safety argument depends on (ancestor tests, nearest common
//! ancestors, paths between nodes) and executable well-formedness invariants
//! (the analogue of the paper's ~2.3k lines of generic Coq tree lemmas).
//!
//! Two mutation primitives mirror the paper's semantics (Fig. 26):
//!
//! * [`Tree::add_leaf`] — `addLeaf`: attach a fresh child to a parent. Used
//!   by `pull`, `invoke`, and `reconfig`.
//! * [`Tree::insert_between`] — `insertBtw`: splice a fresh node between a
//!   parent and all of its current children. Used by `push`, so that
//!   uncommitted siblings remain viable descendants of the new commit.
//!
//! Nodes are never removed (the tree is append-only), with one documented
//! exception: [`Tree::prune_to_branch`] implements the stop-the-world
//! reconfiguration extension sketched in §8 of the paper.
//!
//! # Examples
//!
//! ```
//! use adore_tree::Tree;
//!
//! let mut tree = Tree::new("root");
//! let a = tree.add_leaf(Tree::<&str>::ROOT, "a").unwrap();
//! let b = tree.add_leaf(a, "b").unwrap();
//! let c = tree.add_leaf(a, "c").unwrap();
//!
//! assert!(tree.is_strict_ancestor(a, b));
//! assert_eq!(tree.nearest_common_ancestor(b, c), Some(a));
//! tree.check_well_formed().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node in a [`Tree`].
///
/// Cache IDs are dense indices handed out in insertion order; the root is
/// always [`Tree::ROOT`] (id 0). IDs are only meaningful relative to the tree
/// that produced them.
///
/// # Examples
///
/// ```
/// use adore_tree::{CacheId, Tree};
///
/// let tree = Tree::new(());
/// let root: CacheId = Tree::<()>::ROOT;
/// assert_eq!(tree.payload(root), Some(&()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CacheId(u32);

impl CacheId {
    /// Returns the raw index of this id.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// assert_eq!(Tree::<()>::ROOT.index(), 0);
    /// ```
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `CacheId` from a raw index.
    ///
    /// Intended for (de)serialization and test construction; an id built this
    /// way is only valid if the target tree actually contains it.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::CacheId;
    /// let id = CacheId::from_index(3);
    /// assert_eq!(id.index(), 3);
    /// ```
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        CacheId(u32::try_from(index).expect("tree larger than u32::MAX nodes"))
    }
}

impl fmt::Display for CacheId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Error returned by tree mutations referring to ids the tree does not hold.
///
/// # Examples
///
/// ```
/// use adore_tree::{CacheId, Tree, UnknownCacheId};
///
/// let mut tree = Tree::new(());
/// let bogus = CacheId::from_index(42);
/// assert_eq!(tree.add_leaf(bogus, ()), Err(UnknownCacheId(bogus)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownCacheId(pub CacheId);

impl fmt::Display for UnknownCacheId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache id {} is not present in the tree", self.0)
    }
}

impl std::error::Error for UnknownCacheId {}

/// A structural well-formedness violation detected by
/// [`Tree::check_well_formed`].
///
/// A tree built exclusively through the public API never produces these; the
/// checker exists so that higher layers (model checkers, refinement drivers)
/// can certify the invariant wholesale, mirroring the paper's generic tree
/// well-formedness lemmas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellFormedError {
    /// A node's parent id is not a valid node.
    DanglingParent {
        /// The node with the bad parent pointer.
        node: CacheId,
        /// The missing parent id.
        parent: CacheId,
    },
    /// Walking parent pointers from `node` never reaches the root.
    Cycle {
        /// A node on the cycle (or on a path into a cycle).
        node: CacheId,
    },
    /// The children index disagrees with the parent pointers.
    ChildIndexMismatch {
        /// The node whose recorded children are inconsistent.
        node: CacheId,
    },
    /// The root's parent pointer is not the root itself.
    BadRoot,
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::DanglingParent { node, parent } => {
                write!(f, "node {node} points at missing parent {parent}")
            }
            WellFormedError::Cycle { node } => {
                write!(f, "node {node} does not reach the root (cycle)")
            }
            WellFormedError::ChildIndexMismatch { node } => {
                write!(
                    f,
                    "children index of node {node} disagrees with parent pointers"
                )
            }
            WellFormedError::BadRoot => write!(f, "root parent pointer is not the root"),
        }
    }
}

impl std::error::Error for WellFormedError {}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
struct Node<T> {
    parent: CacheId,
    children: Vec<CacheId>,
    payload: T,
}

/// An append-only rooted tree with dense [`CacheId`] handles.
///
/// The tree always contains at least the root node created by [`Tree::new`].
/// See the [crate docs](crate) for the relation to the ADORE cache tree.
///
/// # Examples
///
/// ```
/// use adore_tree::Tree;
///
/// let mut tree = Tree::new(0u32);
/// let child = tree.add_leaf(Tree::<u32>::ROOT, 1).unwrap();
/// assert_eq!(tree.len(), 2);
/// assert_eq!(tree.parent(child), Some(Tree::<u32>::ROOT));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tree<T> {
    nodes: Vec<Node<T>>,
}

impl<T> Tree<T> {
    /// Id of the root node of every tree.
    pub const ROOT: CacheId = CacheId(0);

    /// Creates a tree holding a single root node with the given payload.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let tree = Tree::new("genesis");
    /// assert_eq!(tree.len(), 1);
    /// ```
    #[must_use]
    pub fn new(root_payload: T) -> Self {
        Tree {
            nodes: vec![Node {
                parent: Self::ROOT,
                children: Vec::new(),
                payload: root_payload,
            }],
        }
    }

    /// Number of nodes in the tree, including the root.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// assert_eq!(Tree::new(()).len(), 1);
    /// ```
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `false`: a tree always contains its root.
    ///
    /// Provided for API completeness alongside [`Tree::len`].
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// assert!(!Tree::new(()).is_empty());
    /// ```
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Tests whether `id` names a node of this tree.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::{CacheId, Tree};
    /// let tree = Tree::new(());
    /// assert!(tree.contains(Tree::<()>::ROOT));
    /// assert!(!tree.contains(CacheId::from_index(7)));
    /// ```
    #[must_use]
    pub fn contains(&self, id: CacheId) -> bool {
        id.index() < self.nodes.len()
    }

    fn node(&self, id: CacheId) -> Result<&Node<T>, UnknownCacheId> {
        self.nodes.get(id.index()).ok_or(UnknownCacheId(id))
    }

    /// Returns the payload stored at `id`, or `None` for an unknown id.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let tree = Tree::new(5);
    /// assert_eq!(tree.payload(Tree::<i32>::ROOT), Some(&5));
    /// ```
    #[must_use]
    pub fn payload(&self, id: CacheId) -> Option<&T> {
        self.nodes.get(id.index()).map(|n| &n.payload)
    }

    /// Returns the parent of `id`, or `None` for the root or an unknown id.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(());
    /// let a = tree.add_leaf(Tree::<()>::ROOT, ()).unwrap();
    /// assert_eq!(tree.parent(a), Some(Tree::<()>::ROOT));
    /// assert_eq!(tree.parent(Tree::<()>::ROOT), None);
    /// ```
    #[must_use]
    pub fn parent(&self, id: CacheId) -> Option<CacheId> {
        if id == Self::ROOT {
            return None;
        }
        self.nodes.get(id.index()).map(|n| n.parent)
    }

    /// Returns the children of `id` in insertion order (empty for leaves and
    /// unknown ids).
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(());
    /// let a = tree.add_leaf(Tree::<()>::ROOT, ()).unwrap();
    /// assert_eq!(tree.children(Tree::<()>::ROOT), &[a]);
    /// ```
    #[must_use]
    pub fn children(&self, id: CacheId) -> &[CacheId] {
        self.nodes
            .get(id.index())
            .map(|n| n.children.as_slice())
            .unwrap_or(&[])
    }

    /// Appends a fresh leaf under `parent` (the paper's `addLeaf`).
    ///
    /// Returns the id of the new node.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownCacheId`] if `parent` is not in the tree.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new("root");
    /// let leaf = tree.add_leaf(Tree::<&str>::ROOT, "leaf")?;
    /// assert_eq!(tree.payload(leaf), Some(&"leaf"));
    /// # Ok::<(), adore_tree::UnknownCacheId>(())
    /// ```
    pub fn add_leaf(&mut self, parent: CacheId, payload: T) -> Result<CacheId, UnknownCacheId> {
        self.node(parent)?;
        let id = CacheId::from_index(self.nodes.len());
        self.nodes.push(Node {
            parent,
            children: Vec::new(),
            payload,
        });
        self.nodes[parent.index()].children.push(id);
        Ok(id)
    }

    /// Splices a fresh node between `parent` and all of `parent`'s current
    /// children (the paper's `insertBtw`).
    ///
    /// After the call, every former child of `parent` is a child of the new
    /// node. ADORE's `push` uses this to place a `CCache` after the committed
    /// method while keeping not-yet-committed descendants viable.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownCacheId`] if `parent` is not in the tree.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new("m");
    /// let child = tree.add_leaf(Tree::<&str>::ROOT, "suffix")?;
    /// let commit = tree.insert_between(Tree::<&str>::ROOT, "commit")?;
    /// assert_eq!(tree.parent(child), Some(commit));
    /// assert_eq!(tree.parent(commit), Some(Tree::<&str>::ROOT));
    /// # Ok::<(), adore_tree::UnknownCacheId>(())
    /// ```
    pub fn insert_between(
        &mut self,
        parent: CacheId,
        payload: T,
    ) -> Result<CacheId, UnknownCacheId> {
        self.node(parent)?;
        let id = CacheId::from_index(self.nodes.len());
        let former_children = std::mem::take(&mut self.nodes[parent.index()].children);
        for &child in &former_children {
            self.nodes[child.index()].parent = id;
        }
        self.nodes.push(Node {
            parent,
            children: former_children,
            payload,
        });
        self.nodes[parent.index()].children.push(id);
        Ok(id)
    }

    /// Tests whether `ancestor` is a **strict** ancestor of `descendant`
    /// (the paper's `C ↑ C'`).
    ///
    /// A node is not its own strict ancestor. Unknown ids are nobody's
    /// ancestors and have no ancestors.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(());
    /// let a = tree.add_leaf(Tree::<()>::ROOT, ()).unwrap();
    /// assert!(tree.is_strict_ancestor(Tree::<()>::ROOT, a));
    /// assert!(!tree.is_strict_ancestor(a, a));
    /// ```
    #[must_use]
    pub fn is_strict_ancestor(&self, ancestor: CacheId, descendant: CacheId) -> bool {
        if !self.contains(ancestor) || !self.contains(descendant) {
            return false;
        }
        let mut cur = descendant;
        while cur != Self::ROOT {
            cur = self.nodes[cur.index()].parent;
            if cur == ancestor {
                return true;
            }
        }
        false
    }

    /// Tests whether `ancestor` equals or strictly precedes `descendant` on
    /// the same branch.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let tree = Tree::new(());
    /// assert!(tree.is_ancestor_or_self(Tree::<()>::ROOT, Tree::<()>::ROOT));
    /// ```
    #[must_use]
    pub fn is_ancestor_or_self(&self, ancestor: CacheId, descendant: CacheId) -> bool {
        (ancestor == descendant && self.contains(ancestor))
            || self.is_strict_ancestor(ancestor, descendant)
    }

    /// Tests whether two nodes lie on a single root-to-leaf branch.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(());
    /// let a = tree.add_leaf(Tree::<()>::ROOT, ()).unwrap();
    /// let b = tree.add_leaf(Tree::<()>::ROOT, ()).unwrap();
    /// assert!(tree.same_branch(Tree::<()>::ROOT, a));
    /// assert!(!tree.same_branch(a, b));
    /// ```
    #[must_use]
    pub fn same_branch(&self, a: CacheId, b: CacheId) -> bool {
        self.is_ancestor_or_self(a, b) || self.is_ancestor_or_self(b, a)
    }

    /// Iterates from `id` up to the root, inclusive on both ends.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(());
    /// let a = tree.add_leaf(Tree::<()>::ROOT, ()).unwrap();
    /// let path: Vec<_> = tree.ancestors_inclusive(a).collect();
    /// assert_eq!(path, vec![a, Tree::<()>::ROOT]);
    /// ```
    pub fn ancestors_inclusive(&self, id: CacheId) -> AncestorsInclusive<'_, T> {
        AncestorsInclusive {
            tree: self,
            next: if self.contains(id) { Some(id) } else { None },
        }
    }

    /// Depth of `id` (root has depth 0); `None` for unknown ids.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(());
    /// let a = tree.add_leaf(Tree::<()>::ROOT, ()).unwrap();
    /// assert_eq!(tree.depth(a), Some(1));
    /// ```
    #[must_use]
    pub fn depth(&self, id: CacheId) -> Option<usize> {
        if !self.contains(id) {
            return None;
        }
        Some(self.ancestors_inclusive(id).count() - 1)
    }

    /// Nearest common ancestor of `a` and `b` (possibly one of them), or
    /// `None` if either id is unknown.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(());
    /// let a = tree.add_leaf(Tree::<()>::ROOT, ()).unwrap();
    /// let b = tree.add_leaf(a, ()).unwrap();
    /// let c = tree.add_leaf(a, ()).unwrap();
    /// assert_eq!(tree.nearest_common_ancestor(b, c), Some(a));
    /// assert_eq!(tree.nearest_common_ancestor(a, b), Some(a));
    /// ```
    #[must_use]
    pub fn nearest_common_ancestor(&self, a: CacheId, b: CacheId) -> Option<CacheId> {
        if !self.contains(a) || !self.contains(b) {
            return None;
        }
        let mut pa: Vec<CacheId> = self.ancestors_inclusive(a).collect();
        let mut pb: Vec<CacheId> = self.ancestors_inclusive(b).collect();
        pa.reverse();
        pb.reverse();
        let mut nca = Self::ROOT;
        for (x, y) in pa.iter().zip(pb.iter()) {
            if x == y {
                nca = *x;
            } else {
                break;
            }
        }
        Some(nca)
    }

    /// The interior of the tree path from `a` to `b` through their nearest
    /// common ancestor, **excluding** both endpoints (the path the paper's
    /// `rdist` counts over).
    ///
    /// The nearest common ancestor itself is included unless it is an
    /// endpoint. Returns `None` if either id is unknown.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(());
    /// let a = tree.add_leaf(Tree::<()>::ROOT, ()).unwrap();
    /// let b = tree.add_leaf(a, ()).unwrap();
    /// let c = tree.add_leaf(a, ()).unwrap();
    /// // Path b -> a -> c, endpoints excluded: just [a].
    /// assert_eq!(tree.path_interior(b, c), Some(vec![a]));
    /// // Path a -> b on one branch: empty interior.
    /// assert_eq!(tree.path_interior(a, b), Some(vec![]));
    /// ```
    #[must_use]
    pub fn path_interior(&self, a: CacheId, b: CacheId) -> Option<Vec<CacheId>> {
        let nca = self.nearest_common_ancestor(a, b)?;
        let mut interior = Vec::new();
        let mut cur = a;
        while cur != nca {
            cur = self.nodes[cur.index()].parent;
            if cur != nca {
                interior.push(cur);
            }
        }
        if nca != a && nca != b {
            interior.push(nca);
        }
        let mut from_b = Vec::new();
        let mut cur = b;
        while cur != nca {
            cur = self.nodes[cur.index()].parent;
            if cur != nca {
                from_b.push(cur);
            }
        }
        interior.extend(from_b.into_iter().rev());
        Some(interior)
    }

    /// Iterates over `(id, payload)` pairs in insertion (= id) order.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(0);
    /// tree.add_leaf(Tree::<i32>::ROOT, 1).unwrap();
    /// let sum: i32 = tree.iter().map(|(_, p)| p).sum();
    /// assert_eq!(sum, 1);
    /// ```
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            inner: self.nodes.iter().enumerate(),
        }
    }

    /// Ids of all nodes in insertion order.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let tree = Tree::new(());
    /// assert_eq!(tree.ids().count(), 1);
    /// ```
    pub fn ids(&self) -> impl ExactSizeIterator<Item = CacheId> + '_ {
        (0..self.nodes.len()).map(CacheId::from_index)
    }

    /// Ids of all leaves (nodes without children).
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(());
    /// let a = tree.add_leaf(Tree::<()>::ROOT, ()).unwrap();
    /// assert_eq!(tree.leaves().collect::<Vec<_>>(), vec![a]);
    /// ```
    pub fn leaves(&self) -> impl Iterator<Item = CacheId> + '_ {
        self.ids().filter(|id| self.children(*id).is_empty())
    }

    /// Iterates over the subtree rooted at `id` in depth-first preorder
    /// (including `id` itself); empty for unknown ids.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(0);
    /// let a = tree.add_leaf(Tree::<i32>::ROOT, 1).unwrap();
    /// let b = tree.add_leaf(a, 2).unwrap();
    /// let _c = tree.add_leaf(Tree::<i32>::ROOT, 3).unwrap();
    /// let sub: Vec<_> = tree.iter_subtree(a).collect();
    /// assert_eq!(sub, vec![a, b]);
    /// ```
    pub fn iter_subtree(&self, id: CacheId) -> IterSubtree<'_, T> {
        IterSubtree {
            tree: self,
            stack: if self.contains(id) {
                vec![id]
            } else {
                Vec::new()
            },
        }
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`);
    /// zero for unknown ids.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(0);
    /// let a = tree.add_leaf(Tree::<i32>::ROOT, 1).unwrap();
    /// tree.add_leaf(a, 2).unwrap();
    /// assert_eq!(tree.subtree_size(a), 2);
    /// assert_eq!(tree.subtree_size(Tree::<i32>::ROOT), 3);
    /// ```
    #[must_use]
    pub fn subtree_size(&self, id: CacheId) -> usize {
        self.iter_subtree(id).count()
    }

    /// Deletes every node that is not on the root-to-`keep` branch and not a
    /// descendant of `keep`, compacting ids.
    ///
    /// This is **not** part of the core ADORE semantics: it implements the
    /// stop-the-world reconfiguration extension from §8 of the paper
    /// ("deleting all caches not on the active branch when an *RCache* is
    /// committed"). Returns the remapping from old ids to new ids.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownCacheId`] if `keep` is not in the tree.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new("root");
    /// let a = tree.add_leaf(Tree::<&str>::ROOT, "keep")?;
    /// let _b = tree.add_leaf(Tree::<&str>::ROOT, "stale")?;
    /// let map = tree.prune_to_branch(a)?;
    /// assert_eq!(tree.len(), 2);
    /// assert_eq!(tree.payload(map[&a]), Some(&"keep"));
    /// # Ok::<(), adore_tree::UnknownCacheId>(())
    /// ```
    pub fn prune_to_branch(
        &mut self,
        keep: CacheId,
    ) -> Result<std::collections::BTreeMap<CacheId, CacheId>, UnknownCacheId> {
        self.node(keep)?;
        let mut retain = vec![false; self.nodes.len()];
        for id in self.ancestors_inclusive(keep) {
            retain[id.index()] = true;
        }
        for id in self.ids() {
            if self.is_strict_ancestor(keep, id) {
                retain[id.index()] = true;
            }
        }
        let mut remap = std::collections::BTreeMap::new();
        let mut next = 0usize;
        for (i, keep_it) in retain.iter().enumerate() {
            if *keep_it {
                remap.insert(CacheId::from_index(i), CacheId::from_index(next));
                next += 1;
            }
        }
        let old = std::mem::take(&mut self.nodes);
        for (i, node) in old.into_iter().enumerate() {
            if retain[i] {
                self.nodes.push(Node {
                    parent: remap[&node.parent],
                    children: node
                        .children
                        .iter()
                        .filter_map(|c| remap.get(c).copied())
                        .collect(),
                    payload: node.payload,
                });
            }
        }
        Ok(remap)
    }

    /// Certifies the structural invariants of the tree.
    ///
    /// Checks that every parent pointer targets an existing node, that every
    /// node reaches the root (no cycles), that the children index agrees
    /// with parent pointers, and that the root is its own parent.
    ///
    /// # Errors
    ///
    /// Returns the first [`WellFormedError`] found.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_tree::Tree;
    /// let mut tree = Tree::new(());
    /// tree.add_leaf(Tree::<()>::ROOT, ()).unwrap();
    /// tree.check_well_formed().unwrap();
    /// ```
    pub fn check_well_formed(&self) -> Result<(), WellFormedError> {
        if self.nodes[Self::ROOT.index()].parent != Self::ROOT {
            return Err(WellFormedError::BadRoot);
        }
        for id in self.ids() {
            let node = &self.nodes[id.index()];
            if !self.contains(node.parent) {
                return Err(WellFormedError::DanglingParent {
                    node: id,
                    parent: node.parent,
                });
            }
            // Walk upward at most `len` steps; failing to reach the root
            // within that bound implies a cycle.
            let mut cur = id;
            let mut steps = 0usize;
            while cur != Self::ROOT {
                cur = self.nodes[cur.index()].parent;
                steps += 1;
                if steps > self.nodes.len() {
                    return Err(WellFormedError::Cycle { node: id });
                }
            }
            for &child in &node.children {
                if !self.contains(child) || self.nodes[child.index()].parent != id {
                    return Err(WellFormedError::ChildIndexMismatch { node: id });
                }
            }
        }
        // Every non-root node must appear in exactly one children list.
        let mut seen = vec![0usize; self.nodes.len()];
        for id in self.ids() {
            for &child in &self.nodes[id.index()].children {
                seen[child.index()] += 1;
            }
        }
        for id in self.ids() {
            let expected = usize::from(id != Self::ROOT);
            if seen[id.index()] != expected {
                return Err(WellFormedError::ChildIndexMismatch { node: id });
            }
        }
        Ok(())
    }
}

/// Depth-first preorder iterator over a subtree's node ids.
///
/// Created by [`Tree::iter_subtree`].
#[derive(Debug, Clone)]
pub struct IterSubtree<'a, T> {
    tree: &'a Tree<T>,
    stack: Vec<CacheId>,
}

impl<T> Iterator for IterSubtree<'_, T> {
    type Item = CacheId;

    fn next(&mut self) -> Option<CacheId> {
        let cur = self.stack.pop()?;
        for &child in self.tree.children(cur).iter().rev() {
            self.stack.push(child);
        }
        Some(cur)
    }
}

/// Iterator over a node's chain of ancestors, including the node itself.
///
/// Created by [`Tree::ancestors_inclusive`].
#[derive(Debug, Clone)]
pub struct AncestorsInclusive<'a, T> {
    tree: &'a Tree<T>,
    next: Option<CacheId>,
}

impl<T> Iterator for AncestorsInclusive<'_, T> {
    type Item = CacheId;

    fn next(&mut self) -> Option<CacheId> {
        let cur = self.next?;
        self.next = self.tree.parent(cur);
        Some(cur)
    }
}

/// Iterator over `(id, payload)` pairs of a [`Tree`] in insertion order.
///
/// Created by [`Tree::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a, T> {
    inner: std::iter::Enumerate<std::slice::Iter<'a, Node<T>>>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (CacheId, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner
            .next()
            .map(|(i, n)| (CacheId::from_index(i), &n.payload))
    }
}

impl<T> ExactSizeIterator for Iter<'_, T> {
    fn len(&self) -> usize {
        self.inner.len()
    }
}

impl<'a, T> IntoIterator for &'a Tree<T> {
    type Item = (CacheId, &'a T);
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (Tree<usize>, Vec<CacheId>) {
        let mut tree = Tree::new(0);
        let mut ids = vec![Tree::<usize>::ROOT];
        for i in 1..=n {
            let id = tree.add_leaf(*ids.last().unwrap(), i).unwrap();
            ids.push(id);
        }
        (tree, ids)
    }

    #[test]
    fn new_tree_has_single_root() {
        let tree = Tree::new("r");
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.payload(Tree::<&str>::ROOT), Some(&"r"));
        assert_eq!(tree.parent(Tree::<&str>::ROOT), None);
        assert!(tree.children(Tree::<&str>::ROOT).is_empty());
    }

    #[test]
    fn add_leaf_links_parent_and_child() {
        let mut tree = Tree::new(0);
        let a = tree.add_leaf(Tree::<i32>::ROOT, 1).unwrap();
        assert_eq!(tree.parent(a), Some(Tree::<i32>::ROOT));
        assert_eq!(tree.children(Tree::<i32>::ROOT), &[a]);
        assert_eq!(tree.payload(a), Some(&1));
    }

    #[test]
    fn add_leaf_to_unknown_parent_fails() {
        let mut tree = Tree::new(0);
        let bogus = CacheId::from_index(9);
        assert_eq!(tree.add_leaf(bogus, 1), Err(UnknownCacheId(bogus)));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn insert_between_reparents_all_children() {
        let mut tree = Tree::new(0);
        let a = tree.add_leaf(Tree::<i32>::ROOT, 1).unwrap();
        let b = tree.add_leaf(Tree::<i32>::ROOT, 2).unwrap();
        let mid = tree.insert_between(Tree::<i32>::ROOT, 10).unwrap();
        assert_eq!(tree.parent(mid), Some(Tree::<i32>::ROOT));
        assert_eq!(tree.parent(a), Some(mid));
        assert_eq!(tree.parent(b), Some(mid));
        assert_eq!(tree.children(Tree::<i32>::ROOT), &[mid]);
        assert_eq!(tree.children(mid), &[a, b]);
        tree.check_well_formed().unwrap();
    }

    #[test]
    fn insert_between_leaf_acts_as_add_leaf() {
        let mut tree = Tree::new(0);
        let a = tree.add_leaf(Tree::<i32>::ROOT, 1).unwrap();
        let c = tree.insert_between(a, 2).unwrap();
        assert_eq!(tree.parent(c), Some(a));
        assert!(tree.children(c).is_empty());
        tree.check_well_formed().unwrap();
    }

    #[test]
    fn strict_ancestor_on_chain() {
        let (tree, ids) = chain(5);
        assert!(tree.is_strict_ancestor(ids[0], ids[5]));
        assert!(tree.is_strict_ancestor(ids[2], ids[3]));
        assert!(!tree.is_strict_ancestor(ids[3], ids[2]));
        assert!(!tree.is_strict_ancestor(ids[3], ids[3]));
    }

    #[test]
    fn ancestor_of_unknown_id_is_false() {
        let tree = Tree::new(());
        let bogus = CacheId::from_index(3);
        assert!(!tree.is_strict_ancestor(Tree::<()>::ROOT, bogus));
        assert!(!tree.is_strict_ancestor(bogus, Tree::<()>::ROOT));
        assert!(!tree.is_ancestor_or_self(bogus, bogus));
    }

    #[test]
    fn same_branch_detects_forks() {
        let mut tree = Tree::new(0);
        let a = tree.add_leaf(Tree::<i32>::ROOT, 1).unwrap();
        let b = tree.add_leaf(a, 2).unwrap();
        let c = tree.add_leaf(a, 3).unwrap();
        assert!(tree.same_branch(a, b));
        assert!(tree.same_branch(b, a));
        assert!(!tree.same_branch(b, c));
    }

    #[test]
    fn nca_of_forked_nodes() {
        let mut tree = Tree::new(0);
        let a = tree.add_leaf(Tree::<i32>::ROOT, 1).unwrap();
        let b = tree.add_leaf(a, 2).unwrap();
        let c = tree.add_leaf(a, 3).unwrap();
        let d = tree.add_leaf(c, 4).unwrap();
        assert_eq!(tree.nearest_common_ancestor(b, d), Some(a));
        assert_eq!(tree.nearest_common_ancestor(c, d), Some(c));
        assert_eq!(tree.nearest_common_ancestor(d, d), Some(d));
        assert_eq!(
            tree.nearest_common_ancestor(Tree::<i32>::ROOT, d),
            Some(Tree::<i32>::ROOT)
        );
    }

    #[test]
    fn path_interior_excludes_endpoints() {
        let mut tree = Tree::new(0);
        let a = tree.add_leaf(Tree::<i32>::ROOT, 1).unwrap();
        let b = tree.add_leaf(a, 2).unwrap();
        let c = tree.add_leaf(b, 3).unwrap();
        let x = tree.add_leaf(a, 4).unwrap();
        let y = tree.add_leaf(x, 5).unwrap();
        // Path c - b - a - x - y; interior is {b, a, x}.
        let mut interior = tree.path_interior(c, y).unwrap();
        interior.sort();
        assert_eq!(interior, vec![a, b, x]);
        // Straight-line path root..c; interior is {a, b}.
        let mut interior = tree.path_interior(Tree::<i32>::ROOT, c).unwrap();
        interior.sort();
        assert_eq!(interior, vec![a, b]);
        // Adjacent nodes: empty interior.
        assert_eq!(tree.path_interior(a, b), Some(vec![]));
        // Same node: empty interior.
        assert_eq!(tree.path_interior(c, c), Some(vec![]));
    }

    #[test]
    fn path_interior_is_symmetric() {
        let mut tree = Tree::new(0);
        let a = tree.add_leaf(Tree::<i32>::ROOT, 1).unwrap();
        let b = tree.add_leaf(a, 2).unwrap();
        let c = tree.add_leaf(a, 3).unwrap();
        let mut p1 = tree.path_interior(b, c).unwrap();
        let mut p2 = tree.path_interior(c, b).unwrap();
        p1.sort();
        p2.sort();
        assert_eq!(p1, p2);
    }

    #[test]
    fn depth_counts_edges_to_root() {
        let (tree, ids) = chain(4);
        assert_eq!(tree.depth(ids[0]), Some(0));
        assert_eq!(tree.depth(ids[4]), Some(4));
        assert_eq!(tree.depth(CacheId::from_index(99)), None);
    }

    #[test]
    fn leaves_are_childless_nodes() {
        let mut tree = Tree::new(0);
        let a = tree.add_leaf(Tree::<i32>::ROOT, 1).unwrap();
        let b = tree.add_leaf(Tree::<i32>::ROOT, 2).unwrap();
        let c = tree.add_leaf(a, 3).unwrap();
        let leaves: Vec<_> = tree.leaves().collect();
        assert_eq!(leaves, vec![b, c]);
    }

    #[test]
    fn iter_yields_in_insertion_order() {
        let (tree, _) = chain(3);
        let payloads: Vec<usize> = tree.iter().map(|(_, p)| *p).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3]);
        assert_eq!(tree.iter().len(), 4);
    }

    #[test]
    fn prune_to_branch_keeps_branch_and_descendants() {
        let mut tree = Tree::new("root");
        let a = tree.add_leaf(Tree::<&str>::ROOT, "a").unwrap();
        let b = tree.add_leaf(a, "b").unwrap();
        let stale = tree.add_leaf(Tree::<&str>::ROOT, "stale").unwrap();
        let _stale2 = tree.add_leaf(stale, "stale2").unwrap();
        let below = tree.add_leaf(b, "below").unwrap();
        let map = tree.prune_to_branch(a).unwrap();
        assert_eq!(tree.len(), 4); // root, a, b, below
        tree.check_well_formed().unwrap();
        assert_eq!(tree.payload(map[&a]), Some(&"a"));
        assert_eq!(tree.payload(map[&below]), Some(&"below"));
        assert!(!map.contains_key(&stale));
    }

    #[test]
    fn well_formed_after_mixed_mutations() {
        let mut tree = Tree::new(0);
        let mut frontier = vec![Tree::<i32>::ROOT];
        for i in 0..50 {
            let parent = frontier[i % frontier.len()];
            let id = if i % 3 == 0 {
                tree.insert_between(parent, i as i32).unwrap()
            } else {
                tree.add_leaf(parent, i as i32).unwrap()
            };
            frontier.push(id);
        }
        tree.check_well_formed().unwrap();
    }

    #[test]
    fn subtree_iteration_is_preorder_and_sized() {
        let mut tree = Tree::new(0);
        let a = tree.add_leaf(Tree::<i32>::ROOT, 1).unwrap();
        let b = tree.add_leaf(a, 2).unwrap();
        let c = tree.add_leaf(a, 3).unwrap();
        let d = tree.add_leaf(b, 4).unwrap();
        let e = tree.add_leaf(Tree::<i32>::ROOT, 5).unwrap();
        assert_eq!(tree.iter_subtree(a).collect::<Vec<_>>(), vec![a, b, d, c]);
        assert_eq!(tree.subtree_size(a), 4);
        assert_eq!(tree.subtree_size(e), 1);
        assert_eq!(tree.subtree_size(Tree::<i32>::ROOT), 6);
        assert_eq!(tree.subtree_size(CacheId::from_index(99)), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CacheId::from_index(7).to_string(), "#7");
        let err = UnknownCacheId(CacheId::from_index(7));
        assert_eq!(err.to_string(), "cache id #7 is not present in the tree");
    }

    #[test]
    fn serde_round_trip() {
        let (tree, _) = chain(3);
        let json = serde_json::to_string(&tree).unwrap();
        let back: Tree<usize> = serde_json::from_str(&json).unwrap();
        assert_eq!(tree, back);
    }
}
