//! Bounded-exhaustive exploration of the *network-based* model.
//!
//! The counterpart of [`crate::explore`] for `adore_raft::NetState`: all
//! schedulable events (elections, invokes, reconfigurations, commit
//! broadcasts, and every pending delivery) are enumerated at each state.
//! Comparing its state counts against the ADORE explorer's at equal depth
//! is the quantitative form of the paper's §7 argument that protocol-level
//! reasoning on the cache tree is drastically cheaper than network-level
//! reasoning — here the network model's branching includes every message
//! interleaving that ADORE's atomic operations collapse.

use std::collections::{BTreeSet, VecDeque};
use std::time::{Duration, Instant};

use adore_core::{telemetry, Configuration, NodeId, ReconfigGuard};
use adore_obs::Metrics;
use adore_raft::{MsgId, NetEvent, NetState};
use adore_schemes::ReconfigSpace;

use crate::profile::ExploreProfile;

/// Parameters for [`explore_net`].
#[derive(Debug, Clone)]
pub struct NetExploreParams {
    /// Maximum number of events from the initial state.
    pub max_depth: usize,
    /// Hard cap on visited states.
    pub max_states: usize,
    /// The reconfiguration guard in force.
    pub guard: ReconfigGuard,
    /// Whether reconfiguration events are explored.
    pub with_reconfig: bool,
    /// Extra node ids beyond the initial members.
    pub spare_nodes: u32,
    /// Whether to collect an [`ExploreProfile`] (per-kind transition
    /// counters, log-safety evaluation count, quorum-check counts,
    /// states/sec). Off by default.
    pub profile: bool,
}

impl Default for NetExploreParams {
    fn default() -> Self {
        NetExploreParams {
            max_depth: 6,
            max_states: 500_000,
            guard: ReconfigGuard::all(),
            with_reconfig: true,
            spare_nodes: 1,
            profile: false,
        }
    }
}

/// Outcome of a network-level exploration.
#[derive(Debug, Clone)]
pub struct NetExploreReport {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken.
    pub transitions: u64,
    /// Deepest level reached.
    pub depth_reached: usize,
    /// Whether the state cap cut the exploration short.
    pub truncated: bool,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Whether some reachable state had disagreeing committed prefixes.
    pub log_safety_violated: bool,
    /// The run's profile, when [`NetExploreParams::profile`] was set.
    pub profile: Option<ExploreProfile>,
}

/// The canonical method symbol (see [`crate::explore::CANONICAL_METHOD`]).
const METHOD: u32 = 0;

fn net_successors<C: Configuration + ReconfigSpace>(
    st: &NetState<C, u32>,
    params: &NetExploreParams,
    universe: &adore_core::NodeSet,
) -> Vec<NetEvent<C, u32>> {
    let mut evs = Vec::new();
    for &nid in universe {
        evs.push(NetEvent::Elect { nid });
        evs.push(NetEvent::Invoke {
            nid,
            method: METHOD,
        });
        evs.push(NetEvent::Commit { nid });
        if params.with_reconfig {
            let current = st.config_of(nid).unwrap_or_else(|| st.conf0().clone());
            for cand in current.candidates(universe) {
                evs.push(NetEvent::Reconfig { nid, config: cand });
            }
        }
        for msg in 0..st.messages().len() {
            evs.push(NetEvent::Deliver {
                msg: MsgId(msg as u32),
                to: nid,
            });
        }
    }
    evs
}

/// Exhaustively explores the network-based system from `conf0`.
///
/// # Examples
///
/// ```
/// use adore_checker::{explore_net, NetExploreParams};
/// use adore_schemes::SingleNode;
///
/// let params = NetExploreParams {
///     max_depth: 3,
///     with_reconfig: false,
///     spare_nodes: 0,
///     ..NetExploreParams::default()
/// };
/// let report = explore_net(&SingleNode::new([1, 2]), &params);
/// assert!(!report.log_safety_violated);
/// ```
#[must_use]
pub fn explore_net<C: Configuration + ReconfigSpace>(
    conf0: &C,
    params: &NetExploreParams,
) -> NetExploreReport {
    // adore-lint: allow(L1, reason = "wall-clock timing reported in NetExploreReport::elapsed only; never affects exploration order or results")
    let start = Instant::now();
    let initial: NetState<C, u32> = NetState::new(conf0.clone(), params.guard);
    let mut universe = conf0.members();
    let max = universe.iter().map(|n| n.0).max().unwrap_or(0);
    for extra in 1..=params.spare_nodes {
        universe.insert(NodeId(max + extra));
    }

    let mut report = NetExploreReport {
        states: 1,
        transitions: 0,
        depth_reached: 0,
        truncated: false,
        elapsed: Duration::ZERO,
        log_safety_violated: false,
        profile: None,
    };

    // As in `explore`: the quorum counter is process-global, so profile
    // the delta over this run only.
    let mut metrics = if params.profile {
        Some(Metrics::new())
    } else {
        None
    };
    let quorum_base = telemetry::quorum_checks();

    // NetState is not `Hash`; dedup on its serialized relation + bags.
    let fingerprint = |st: &NetState<C, u32>| -> String {
        format!("{:?}|{:?}", st.net_relation(), st.messages())
    };

    // Ordered set so exploration is deterministic (L1); probed only,
    // never iterated, so the swap from hashing cannot change coverage.
    let mut visited: BTreeSet<String> = BTreeSet::new();
    visited.insert(fingerprint(&initial));
    let mut queue = VecDeque::new();
    queue.push_back((initial, 0usize));

    'bfs: while let Some((st, depth)) = queue.pop_front() {
        report.depth_reached = report.depth_reached.max(depth);
        if depth == params.max_depth {
            continue;
        }
        for ev in net_successors(&st, params, &universe) {
            let mut next = st.clone();
            if !next.step(&ev).applied() {
                continue;
            }
            report.transitions += 1;
            if let Some(m) = metrics.as_mut() {
                let kind = match &ev {
                    NetEvent::Elect { .. } => "elect",
                    NetEvent::Invoke { .. } => "invoke",
                    NetEvent::Reconfig { .. } => "reconfig",
                    NetEvent::Commit { .. } => "commit",
                    NetEvent::Deliver { .. } => "deliver",
                    NetEvent::Crash { .. } => "crash",
                    NetEvent::Recover { .. } => "recover",
                };
                m.inc(&format!("transition.{kind}"));
            }
            let fp = fingerprint(&next);
            if visited.contains(&fp) {
                continue;
            }
            visited.insert(fp);
            report.states += 1;
            if let Some(m) = metrics.as_mut() {
                m.inc("invariant.log-safety");
            }
            if next.check_log_safety().is_err() {
                report.log_safety_violated = true;
                break 'bfs;
            }
            if report.states >= params.max_states {
                report.truncated = true;
                break 'bfs;
            }
            queue.push_back((next, depth + 1));
        }
    }

    report.elapsed = start.elapsed();
    if let Some(mut m) = metrics {
        m.add("quorum.checks", telemetry::quorum_checks() - quorum_base);
        report.profile = Some(ExploreProfile::new(&m, report.states, report.elapsed));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use adore_schemes::SingleNode;

    #[test]
    fn two_node_network_is_safe_at_shallow_depth() {
        let params = NetExploreParams {
            max_depth: 4,
            with_reconfig: false,
            spare_nodes: 0,
            ..NetExploreParams::default()
        };
        let report = explore_net(&SingleNode::new([1, 2]), &params);
        assert!(!report.log_safety_violated);
        assert!(!report.truncated);
        assert!(report.states > 10);
    }

    #[test]
    fn net_profiling_counts_deliveries_and_quorum_checks() {
        let params = NetExploreParams {
            max_depth: 4,
            with_reconfig: false,
            spare_nodes: 0,
            profile: true,
            ..NetExploreParams::default()
        };
        let report = explore_net(&SingleNode::new([1, 2]), &params);
        let profile = report.profile.expect("profile requested");
        let kinds = profile.hottest_transitions();
        let total: u64 = kinds.iter().map(|(_, n)| n).sum();
        assert_eq!(total, report.transitions);
        assert!(kinds.iter().any(|(k, _)| *k == "deliver"));
        assert_eq!(profile.invariant_evals(), report.states as u64 - 1);
        assert!(profile.quorum_checks() > 0);
    }

    #[test]
    fn network_state_space_dominates_at_equal_protocol_progress() {
        use crate::explore::{explore, ExploreParams};
        // One committed command costs 3 ADORE operations (pull, invoke,
        // push) but 5 network events (elect, vote delivery, invoke, commit
        // broadcast, ack delivery) on a two-node cluster: comparing the
        // exhaustive state spaces at the one-commit horizon quantifies the
        // paper's §7 claim that protocol-level reasoning is cheaper. (At
        // the two-commit horizon the gap is ~12×: 4.9k vs 59k states.)
        let conf0 = SingleNode::new([1, 2]);
        let net = explore_net(
            &conf0,
            &NetExploreParams {
                max_depth: 5,
                with_reconfig: false,
                spare_nodes: 0,
                ..NetExploreParams::default()
            },
        );
        let adore = explore(
            &conf0,
            &ExploreParams {
                max_depth: 3,
                with_reconfig: false,
                spare_nodes: 0,
                ..ExploreParams::default()
            },
        );
        assert!(
            net.states > 2 * adore.states,
            "net {} vs adore {}",
            net.states,
            adore.states
        );
    }
}
