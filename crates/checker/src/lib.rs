//! Bounded-exhaustive model checking and randomized trace exploration for
//! the ADORE model.
//!
//! Rust has no proof assistant, so this crate is the reproduction's
//! *executable certification* layer: the safety theorems of the paper are
//! validated by visiting every reachable state of small instances
//! ([`explore()`]), probing deep adversarial schedules ([`random_walk`]),
//! and replaying directed scripts ([`Scenario`], including the exact
//! Fig. 4/Fig. 12 counterexample schedule as [`fig4_scenario`]). The
//! network-based model gets the same treatment ([`explore_net`]) so the
//! paper's protocol-level-vs-network-level cost argument can be measured.
//!
//! The checkers have teeth: dropping any of the R1⁺/R2/R3 guard bits makes
//! them *find* the corresponding safety violation, with a replayable,
//! JSON-serializable counterexample trace and an ASCII rendering of the
//! offending cache tree.
//!
//! # Examples
//!
//! ```
//! use adore_checker::{explore, ExploreParams};
//! use adore_core::ReconfigGuard;
//! use adore_schemes::SingleNode;
//!
//! // Exhaustively certify a 2-node cluster to depth 3 with reconfiguration.
//! let report = explore(&SingleNode::new([1, 2]), &ExploreParams {
//!     max_depth: 3,
//!     ..ExploreParams::default()
//! });
//! assert!(report.is_safe());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conform;
pub mod explore;
mod net_explore;
mod op;
mod profile;
mod scenario;
mod shrink;
mod walker;

pub use conform::{
    conform_corpus, mirror_state, replay_trace, to_net_event, CCmd, CEntry, CEvent, CMsg, CRole,
    CServer, CState, ConformCorpus, ConformParams, ConformSample,
};
pub use explore::{explore, ExploreParams, ExploreReport, InvariantSuite, CANONICAL_METHOD};
pub use net_explore::{explore_net, NetExploreParams, NetExploreReport};
pub use profile::ExploreProfile;
pub use op::CheckerOp;
pub use scenario::{fig4_scenario, Scenario, ScenarioOutcome};
pub use shrink::{ddmin_with, shrink_net_trace, shrink_sequence, shrink_trace};
pub use walker::{random_walk, WalkParams, WalkReport, WalkViolation};
