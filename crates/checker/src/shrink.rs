//! Counterexample minimization by greedy delta debugging.
//!
//! Random walks find safety violations with traces tens of operations
//! long; [`shrink_trace`] strips every operation whose removal preserves
//! the violation, typically reducing a 25–30-op walker trace to the 7–8
//! operation core of the Fig. 4 schedule.
//!
//! Push targets name cache ids, which shift when an earlier operation is
//! removed; the shrinker renumbers every later target by the number of
//! caches the removed operation created, so removals stay semantically
//! local. Operations whose targets become meaningless simply no-op during
//! replay, and the violation check decides whether the shrunk candidate
//! still fails.

use adore_core::invariants::{self, Violation};
use adore_core::{AdoreState, CacheId, Configuration, PushDecision, ReconfigGuard};

use crate::op::CheckerOp;

/// Replays `ops` from a fresh state and returns the first safety
/// violation, if any.
fn violates<C, M>(conf0: &C, guard: ReconfigGuard, ops: &[CheckerOp<C, M>]) -> Option<Violation>
where
    C: Configuration,
    M: Clone + Eq,
{
    let mut st: AdoreState<C, M> = AdoreState::new(conf0.clone());
    for op in ops {
        if op.apply(&mut st, guard) {
            if let Err(v) = invariants::check_safety(&st) {
                return Some(v);
            }
        }
    }
    None
}

/// Removes `ops[i]`, renumbering later push targets past the ids the
/// removed operation created.
fn remove_op<C, M>(
    conf0: &C,
    guard: ReconfigGuard,
    ops: &[CheckerOp<C, M>],
    i: usize,
) -> Vec<CheckerOp<C, M>>
where
    C: Configuration,
    M: Clone + Eq,
{
    let mut st: AdoreState<C, M> = AdoreState::new(conf0.clone());
    for op in &ops[..i] {
        op.apply(&mut st, guard);
    }
    let before = st.tree().len();
    ops[i].apply(&mut st, guard);
    let created = st.tree().len() - before;
    let mut out = ops.to_vec();
    out.remove(i);
    if created > 0 {
        for op in &mut out[i..] {
            if let CheckerOp::Push {
                decision: PushDecision::Ok { target, .. },
                ..
            } = op
            {
                let idx = target.index();
                if idx >= before {
                    *target = CacheId::from_index(idx.saturating_sub(created));
                }
            }
        }
    }
    out
}

/// Greedily minimizes a violating trace: repeatedly removes single
/// operations (and then pairs) while the replay still violates replicated
/// state safety. Returns the minimized trace and its violation.
///
/// # Panics
///
/// Panics if `ops` does not violate safety to begin with — shrinking a
/// passing trace is a caller bug.
///
/// # Examples
///
/// ```
/// use adore_checker::{fig4_scenario, shrink_trace};
/// use adore_core::ReconfigGuard;
///
/// let scenario = fig4_scenario(ReconfigGuard::all().without_r3());
/// let (minimal, _violation) =
///     shrink_trace(&scenario.conf0, scenario.guard, &scenario.ops);
/// // The paper's schedule is already minimal: nothing can be removed.
/// assert_eq!(minimal.len(), scenario.ops.len());
/// ```
#[must_use]
pub fn shrink_trace<C, M>(
    conf0: &C,
    guard: ReconfigGuard,
    ops: &[CheckerOp<C, M>],
) -> (Vec<CheckerOp<C, M>>, Violation)
where
    C: Configuration,
    M: Clone + Eq,
{
    assert!(
        violates(conf0, guard, ops).is_some(),
        "shrink_trace requires a violating trace"
    );
    let mut current = ops.to_vec();
    loop {
        let mut progressed = false;
        // Single removals, scanning from the end (later ops are more
        // often redundant retries).
        let mut i = current.len();
        while i > 0 {
            i -= 1;
            let candidate = remove_op(conf0, guard, &current, i);
            if violates(conf0, guard, &candidate).is_some() {
                current = candidate;
                progressed = true;
            }
        }
        // Pair removals: catches ops that are only jointly removable
        // (e.g. an election and the invoke depending on it).
        let mut i = current.len();
        while i > 1 {
            i -= 1;
            for j in (0..i).rev() {
                let candidate = remove_op(conf0, guard, &current, i);
                let candidate = remove_op(conf0, guard, &candidate, j);
                if violates(conf0, guard, &candidate).is_some() {
                    current = candidate;
                    progressed = true;
                    break;
                }
            }
            i = i.min(current.len());
        }
        if !progressed {
            break;
        }
    }
    let violation = violates(conf0, guard, &current).expect("still violating");
    (current, violation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{ExploreParams, InvariantSuite};
    use crate::walker::{random_walk, WalkParams};
    use adore_schemes::SingleNode;

    #[test]
    fn walker_traces_shrink_to_the_fig4_core() {
        let guard = ReconfigGuard::all().without_r3();
        let params = WalkParams {
            walks: 400,
            steps_per_walk: 30,
            explore: ExploreParams {
                guard,
                suite: InvariantSuite::SafetyOnly,
                spare_nodes: 0,
                ..ExploreParams::default()
            },
        };
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let report = random_walk(&conf0, &params, 9);
        let (_, trace, _) = report.violation.expect("walker finds the bug");
        let before = trace.len();
        let (minimal, violation) = shrink_trace(&conf0, guard, &trace);
        assert!(minimal.len() <= before);
        // The Fig. 4 core is 8 operations; anything close is fully shrunk.
        assert!(
            minimal.len() <= 10,
            "shrunk trace still has {} ops",
            minimal.len()
        );
        assert!(matches!(violation, Violation::CommitsDiverge { .. }));
        // A minimal trace must contain at least one reconfiguration and
        // two pushes (the two diverging commits).
        let reconfigs = minimal
            .iter()
            .filter(|op| matches!(op, CheckerOp::Reconfig { .. }))
            .count();
        let pushes = minimal
            .iter()
            .filter(|op| matches!(op, CheckerOp::Push { .. }))
            .count();
        assert!(reconfigs >= 1);
        assert!(pushes >= 2);
    }

    #[test]
    #[should_panic(expected = "requires a violating trace")]
    fn shrinking_a_passing_trace_panics() {
        let conf0 = SingleNode::new([1, 2, 3]);
        let ops: Vec<CheckerOp<SingleNode, &str>> = Vec::new();
        let _ = shrink_trace(&conf0, ReconfigGuard::all(), &ops);
    }
}
