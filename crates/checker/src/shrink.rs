//! Counterexample minimization by greedy delta debugging.
//!
//! Random walks find safety violations with traces tens of operations
//! long; [`shrink_trace`] strips every operation whose removal preserves
//! the violation, typically reducing a 25–30-op walker trace to the 7–8
//! operation core of the Fig. 4 schedule.
//!
//! The greedy core ([`ddmin_with`]) is generic over the item type and the
//! removal rule, so other layers reuse it: [`shrink_sequence`] minimizes
//! any sequence against a caller-supplied failure predicate (the
//! fault-injection engine shrinks `FaultSchedule`s with it), and
//! [`shrink_net_trace`] minimizes network-event traces with `MsgId`
//! renumbering.
//!
//! Push targets name cache ids, which shift when an earlier operation is
//! removed; the trace shrinker renumbers every later target by the number
//! of caches the removed operation created, so removals stay semantically
//! local. Operations whose targets become meaningless simply no-op during
//! replay, and the violation check decides whether the shrunk candidate
//! still fails.

use adore_core::invariants::{self, Violation};
use adore_core::{AdoreState, CacheId, Configuration, NodeId, PushDecision, ReconfigGuard};
use adore_raft::{MsgId, NetEvent, NetState};

use crate::op::CheckerOp;

/// Greedy delta debugging over an arbitrary sequence with a custom
/// removal rule.
///
/// Repeatedly removes single items (scanning from the end, where
/// redundant retries cluster) and then pairs (catching items only jointly
/// removable) for as long as `fails` still holds on the candidate,
/// iterating to a fixpoint. `remove(items, i)` builds the candidate with
/// item `i` removed — the hook where domain-specific fixups (cache-id or
/// message-id renumbering) happen; plain removal is `shrink_sequence`.
///
/// `fails` must hold on `initial`; the result is the minimized sequence,
/// on which `fails` still holds.
pub fn ddmin_with<T: Clone>(
    initial: &[T],
    remove: &dyn Fn(&[T], usize) -> Vec<T>,
    fails: &mut dyn FnMut(&[T]) -> bool,
) -> Vec<T> {
    assert!(fails(initial), "ddmin requires a failing sequence");
    let mut current = initial.to_vec();
    loop {
        let mut progressed = false;
        let mut i = current.len();
        while i > 0 {
            i -= 1;
            let candidate = remove(&current, i);
            if fails(&candidate) {
                current = candidate;
                progressed = true;
            }
        }
        let mut i = current.len();
        while i > 1 {
            i -= 1;
            for j in (0..i).rev() {
                let candidate = remove(&current, i);
                let candidate = remove(&candidate, j);
                if fails(&candidate) {
                    current = candidate;
                    progressed = true;
                    break;
                }
            }
            i = i.min(current.len());
        }
        if !progressed {
            return current;
        }
    }
}

/// [`ddmin_with`] with plain positional removal: minimizes any sequence
/// whose items are independent of their indices. This is the entry point
/// the fault-injection engine uses to shrink fault schedules.
///
/// # Panics
///
/// Panics if `fails` does not hold on `initial`.
///
/// # Examples
///
/// ```
/// use adore_checker::shrink_sequence;
///
/// // Minimal failing core of a noisy sequence: needs a 2 and a 5.
/// let noisy = vec![1, 2, 3, 4, 5, 6, 2, 7];
/// let minimal = shrink_sequence(&noisy, &mut |xs: &[i32]| {
///     xs.contains(&2) && xs.contains(&5)
/// });
/// assert_eq!(minimal, vec![2, 5]);
/// ```
pub fn shrink_sequence<T: Clone>(initial: &[T], fails: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    ddmin_with(
        initial,
        &|items, i| {
            let mut out = items.to_vec();
            out.remove(i);
            out
        },
        fails,
    )
}

/// Replays `ops` from a fresh state and returns the first safety
/// violation, if any.
fn violates<C, M>(conf0: &C, guard: ReconfigGuard, ops: &[CheckerOp<C, M>]) -> Option<Violation>
where
    C: Configuration,
    M: Clone + Eq,
{
    let mut st: AdoreState<C, M> = AdoreState::new(conf0.clone());
    for op in ops {
        if op.apply(&mut st, guard) {
            if let Err(v) = invariants::check_safety(&st) {
                return Some(v);
            }
        }
    }
    None
}

/// Removes `ops[i]`, renumbering later push targets past the ids the
/// removed operation created.
fn remove_op<C, M>(
    conf0: &C,
    guard: ReconfigGuard,
    ops: &[CheckerOp<C, M>],
    i: usize,
) -> Vec<CheckerOp<C, M>>
where
    C: Configuration,
    M: Clone + Eq,
{
    let mut st: AdoreState<C, M> = AdoreState::new(conf0.clone());
    for op in &ops[..i] {
        op.apply(&mut st, guard);
    }
    let before = st.tree().len();
    ops[i].apply(&mut st, guard);
    let created = st.tree().len() - before;
    let mut out = ops.to_vec();
    out.remove(i);
    if created > 0 {
        for op in &mut out[i..] {
            if let CheckerOp::Push {
                decision: PushDecision::Ok { target, .. },
                ..
            } = op
            {
                let idx = target.index();
                if idx >= before {
                    *target = CacheId::from_index(idx.saturating_sub(created));
                }
            }
        }
    }
    out
}

/// Greedily minimizes a violating trace: repeatedly removes single
/// operations (and then pairs) while the replay still violates replicated
/// state safety. Returns the minimized trace and its violation.
///
/// # Panics
///
/// Panics if `ops` does not violate safety to begin with — shrinking a
/// passing trace is a caller bug.
///
/// # Examples
///
/// ```
/// use adore_checker::{fig4_scenario, shrink_trace};
/// use adore_core::ReconfigGuard;
///
/// let scenario = fig4_scenario(ReconfigGuard::all().without_r3());
/// let (minimal, _violation) =
///     shrink_trace(&scenario.conf0, scenario.guard, &scenario.ops);
/// // The paper's schedule is already minimal: nothing can be removed.
/// assert_eq!(minimal.len(), scenario.ops.len());
/// ```
pub fn shrink_trace<C, M>(
    conf0: &C,
    guard: ReconfigGuard,
    ops: &[CheckerOp<C, M>],
) -> (Vec<CheckerOp<C, M>>, Violation)
where
    C: Configuration,
    M: Clone + Eq,
{
    assert!(
        violates(conf0, guard, ops).is_some(),
        "shrink_trace requires a violating trace"
    );
    let current = ddmin_with(
        ops,
        &|current, i| remove_op(conf0, guard, current, i),
        &mut |candidate| violates(conf0, guard, candidate).is_some(),
    );
    let violation = violates(conf0, guard, &current).expect("still violating");
    (current, violation)
}

/// Replays a network-event trace from a fresh [`NetState`] and returns
/// the first log-safety violation, if any.
fn net_violates<C, M>(
    conf0: &C,
    guard: ReconfigGuard,
    events: &[NetEvent<C, M>],
) -> Option<(NodeId, NodeId)>
where
    C: Configuration,
    M: Clone + Eq,
{
    let mut st: NetState<C, M> = NetState::new(conf0.clone(), guard);
    for ev in events {
        let _ = st.step(ev);
        if let Err(pair) = st.check_log_safety() {
            return Some(pair);
        }
    }
    None
}

/// Removes `events[i]`, repairing later `Deliver` references: deliveries
/// of messages the removed event created are dropped, and later message
/// ids are renumbered down past them (only `Elect` and `Commit` create
/// messages, so `created` is 0 or 1).
fn remove_net_event<C, M>(
    conf0: &C,
    guard: ReconfigGuard,
    events: &[NetEvent<C, M>],
    i: usize,
) -> Vec<NetEvent<C, M>>
where
    C: Configuration,
    M: Clone + Eq,
{
    let mut st: NetState<C, M> = NetState::new(conf0.clone(), guard);
    for ev in &events[..i] {
        let _ = st.step(ev);
    }
    let before = st.messages().len() as u32;
    let _ = st.step(&events[i]);
    let created = st.messages().len() as u32 - before;
    let mut out: Vec<NetEvent<C, M>> = Vec::with_capacity(events.len() - 1);
    out.extend_from_slice(&events[..i]);
    for ev in &events[i + 1..] {
        match ev {
            NetEvent::Deliver { msg, to } if created > 0 => {
                if msg.0 >= before && msg.0 < before + created {
                    continue; // delivery of a message that no longer exists
                }
                let msg = if msg.0 >= before + created {
                    MsgId(msg.0 - created)
                } else {
                    *msg
                };
                out.push(NetEvent::Deliver { msg, to: *to });
            }
            _ => out.push(ev.clone()),
        }
    }
    out
}

/// Greedily minimizes a network-event trace that violates log safety,
/// renumbering `Deliver` message ids as creating events are removed.
/// Returns the minimized trace and the offending server pair.
///
/// # Panics
///
/// Panics if `events` does not violate log safety to begin with.
#[must_use]
pub fn shrink_net_trace<C, M>(
    conf0: &C,
    guard: ReconfigGuard,
    events: &[NetEvent<C, M>],
) -> (Vec<NetEvent<C, M>>, (NodeId, NodeId))
where
    C: Configuration,
    M: Clone + Eq,
{
    assert!(
        net_violates(conf0, guard, events).is_some(),
        "shrink_net_trace requires a violating trace"
    );
    let current = ddmin_with(
        events,
        &|current, i| remove_net_event(conf0, guard, current, i),
        &mut |candidate| net_violates(conf0, guard, candidate).is_some(),
    );
    let pair = net_violates(conf0, guard, &current).expect("still violating");
    (current, pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{ExploreParams, InvariantSuite};
    use crate::walker::{random_walk, WalkParams};
    use adore_schemes::SingleNode;

    #[test]
    fn walker_traces_shrink_to_the_fig4_core() {
        let guard = ReconfigGuard::all().without_r3();
        let params = WalkParams {
            walks: 400,
            steps_per_walk: 30,
            explore: ExploreParams {
                guard,
                suite: InvariantSuite::SafetyOnly,
                spare_nodes: 0,
                ..ExploreParams::default()
            },
        };
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let report = random_walk(&conf0, &params, 9);
        let (_, trace, _) = report.violation.expect("walker finds the bug");
        let before = trace.len();
        let (minimal, violation) = shrink_trace(&conf0, guard, &trace);
        assert!(minimal.len() <= before);
        // The Fig. 4 core is 8 operations; anything close is fully shrunk.
        assert!(
            minimal.len() <= 10,
            "shrunk trace still has {} ops",
            minimal.len()
        );
        assert!(matches!(violation, Violation::CommitsDiverge { .. }));
        // A minimal trace must contain at least one reconfiguration and
        // two pushes (the two diverging commits).
        let reconfigs = minimal
            .iter()
            .filter(|op| matches!(op, CheckerOp::Reconfig { .. }))
            .count();
        let pushes = minimal
            .iter()
            .filter(|op| matches!(op, CheckerOp::Push { .. }))
            .count();
        assert!(reconfigs >= 1);
        assert!(pushes >= 2);
    }

    #[test]
    #[should_panic(expected = "requires a violating trace")]
    fn shrinking_a_passing_trace_panics() {
        let conf0 = SingleNode::new([1, 2, 3]);
        let ops: Vec<CheckerOp<SingleNode, &str>> = Vec::new();
        let _ = shrink_trace(&conf0, ReconfigGuard::all(), &ops);
    }

    #[test]
    fn sequences_shrink_to_their_failing_core() {
        let noisy: Vec<u32> = (0..30).collect();
        let minimal = shrink_sequence(&noisy, &mut |xs: &[u32]| {
            xs.contains(&7) && xs.contains(&21) && xs.iter().sum::<u32>() >= 28
        });
        assert_eq!(minimal, vec![7, 21]);
    }

    #[test]
    fn paired_steps_survive_shrinking_only_together() {
        // The shape of a disk-fault counterexample: a crash step is
        // meaningless without its recover step (and vice versa), so the
        // pair-removal pass must strip both or neither — a single-step
        // pass alone would be stuck, since removing either one of the
        // pair "heals" the candidate.
        #[derive(Clone, PartialEq, Debug)]
        enum Step {
            CrashDisk(u32),
            Recover(u32),
            Burst,
            Noise,
        }
        let noisy = vec![
            Step::Noise,
            Step::CrashDisk(2),
            Step::Noise,
            Step::Recover(2),
            Step::CrashDisk(3),
            Step::Recover(3),
            Step::Burst,
            Step::Noise,
        ];
        // "Fails" iff it has a burst and every crash is balanced by its
        // recover — an unbalanced candidate is an invalid schedule.
        let mut fails = |xs: &[Step]| {
            let balanced = |n: u32| {
                xs.contains(&Step::CrashDisk(n)) == xs.contains(&Step::Recover(n))
            };
            xs.contains(&Step::Burst)
                && xs.contains(&Step::CrashDisk(2))
                && balanced(2)
                && balanced(3)
        };
        let minimal = shrink_sequence(&noisy, &mut fails);
        assert_eq!(
            minimal,
            vec![Step::CrashDisk(2), Step::Recover(2), Step::Burst],
            "the required pair stays, the removable pair and the noise go"
        );
    }

    #[test]
    fn net_traces_shrink_with_msg_id_renumbering() {
        use adore_core::NodeId;
        use adore_raft::{MsgId, NetEvent};

        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let guard = ReconfigGuard::all().without_r3();
        let e = |nid: u32| NetEvent::<SingleNode, &str>::Elect { nid: NodeId(nid) };
        let d = |msg: u32, to: u32| NetEvent::<SingleNode, &str>::Deliver {
            msg: MsgId(msg),
            to: NodeId(to),
        };
        let r = |nid: u32, members: [u32; 3]| NetEvent::<SingleNode, &str>::Reconfig {
            nid: NodeId(nid),
            config: SingleNode::new(members),
        };
        // The Fig. 4 schedule at the network level, padded with noise
        // (redundant deliveries, an unrelated invoke+commit) that the
        // shrinker must strip. Message ids: m0 = S1's first election,
        // m1 = the noise commit, m2 = S2's election, m3 = S2's commit,
        // m4/m5 = S1's re-elections, m6 = S1's final commit.
        let events = vec![
            e(1),                                                       // m0
            d(0, 2),
            d(0, 3),
            d(0, 3),                                                    // noise: duplicate delivery
            NetEvent::Invoke { nid: NodeId(1), method: "noise" },       // noise
            NetEvent::Commit { nid: NodeId(1) },                        // noise: m1
            d(1, 2),                                                    // noise
            d(1, 3),                                                    // noise
            r(1, [1, 2, 3]),
            e(2),                                                       // m2
            d(2, 3),
            d(2, 4),
            r(2, [1, 2, 4]),
            NetEvent::Commit { nid: NodeId(2) },                        // m3
            d(3, 4),
            e(1),                                                       // m4
            e(1),                                                       // m5
            d(5, 3),
            NetEvent::Invoke { nid: NodeId(1), method: "overwrite" },
            NetEvent::Commit { nid: NodeId(1) },                        // m6
            d(6, 3),
        ];
        assert!(net_violates(&conf0, guard, &events).is_some());
        let before = events.len();
        let (minimal, (a, b)) = shrink_net_trace(&conf0, guard, &events);
        assert!(minimal.len() < before, "nothing was shrunk");
        // The noise invoke is strippable; the violating replay still
        // diverges between a quorum member of each side.
        assert!(!minimal
            .iter()
            .any(|ev| matches!(ev, NetEvent::Invoke { method, .. } if *method == "noise")));
        assert_ne!(a, b);
        // The shrunk trace replays to the same violation from scratch —
        // i.e. the renumbered Deliver ids are self-consistent.
        assert!(net_violates(&conf0, guard, &minimal).is_some());
    }
}
