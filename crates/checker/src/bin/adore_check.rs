//! `adore-check`: command-line front end to the model checker.
//!
//! ```text
//! adore_check explore [--nodes N] [--depth D] [--guard r1r2r3|r1r2|r1|none] [--no-reconfig]
//! adore_check walk    [--nodes N] [--walks W] [--steps S] [--seed X] [--guard ...] [--shrink]
//! adore_check replay  <scenario.json> [--dot]
//! adore_check fig4    [--guard ...] [--json] [--dot]
//! ```
//!
//! All subcommands use the Raft single-node scheme. Exit status is 0 when
//! the checked property holds (or a requested counterexample was found),
//! 1 on a surprise, 2 on usage errors.

use std::process::ExitCode;

use adore_checker::{
    explore, fig4_scenario, random_walk, shrink_trace, ExploreParams, InvariantSuite, Scenario,
    WalkParams,
};
use adore_core::{render, ReconfigGuard};
use adore_schemes::SingleNode;

fn parse_guard(s: &str) -> Option<ReconfigGuard> {
    match s {
        "r1r2r3" | "all" => Some(ReconfigGuard::all()),
        "r1r2" => Some(ReconfigGuard::all().without_r3()),
        "r1" => Some(ReconfigGuard::all().without_r2().without_r3()),
        "none" => Some(ReconfigGuard::all().without_r1().without_r2().without_r3()),
        _ => None,
    }
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .inspect(|_| {
                        it.next();
                    });
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn num(&self, name: &str, default: usize) -> usize {
        self.value(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: adore_check <explore|walk|replay|fig4> [options]\n\
         \n\
         explore [--nodes N] [--depth D] [--guard all|r1r2|r1|none] [--no-reconfig]\n\
         walk    [--nodes N] [--walks W] [--steps S] [--seed X] [--guard ...] [--shrink]\n\
         replay  <scenario.json> [--dot]\n\
         fig4    [--guard ...] [--json] [--dot]"
    );
    ExitCode::from(2)
}

fn conf(nodes: usize) -> SingleNode {
    SingleNode::new(1..=(nodes as u32))
}

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1).collect());
    let Some(cmd) = args.positional.first().map(String::as_str) else {
        return usage();
    };
    let guard = match args.value("guard").map(parse_guard) {
        Some(Some(g)) => g,
        Some(None) => return usage(),
        None => ReconfigGuard::all(),
    };

    match cmd {
        "explore" => {
            let params = ExploreParams {
                max_depth: args.num("depth", 5),
                guard,
                with_reconfig: !args.flag("no-reconfig"),
                spare_nodes: 1,
                suite: InvariantSuite::Full,
                ..ExploreParams::default()
            };
            let report = explore(&conf(args.num("nodes", 3)), &params);
            println!(
                "explored {} states / {} transitions in {:?}{}",
                report.states,
                report.transitions,
                report.elapsed,
                if report.truncated { " (truncated)" } else { "" }
            );
            match report.violation {
                None => {
                    println!("verdict: SAFE under guard {guard}");
                    ExitCode::SUCCESS
                }
                Some((v, trace)) => {
                    println!("verdict: VIOLATION under guard {guard}: {v}");
                    for op in trace {
                        println!("  {}", op.summary());
                    }
                    // Finding a violation is the expected outcome for
                    // flawed guards; report success so scripts can assert.
                    ExitCode::SUCCESS
                }
            }
        }
        "walk" => {
            let conf0 = conf(args.num("nodes", 4));
            let params = WalkParams {
                walks: args.num("walks", 1000),
                steps_per_walk: args.num("steps", 30),
                explore: ExploreParams {
                    guard,
                    spare_nodes: 0,
                    suite: InvariantSuite::SafetyOnly,
                    ..ExploreParams::default()
                },
            };
            let report = random_walk(&conf0, &params, args.num("seed", 2026) as u64);
            println!(
                "{} ops across {} walks under guard {guard}",
                report.ops_applied, params.walks
            );
            match report.violation {
                None => {
                    println!("verdict: no violation found");
                    ExitCode::SUCCESS
                }
                Some((v, trace, tree)) => {
                    println!("verdict: VIOLATION: {v}");
                    let trace = if args.flag("shrink") {
                        let (minimal, _) = shrink_trace(&conf0, guard, &trace);
                        println!("shrunk {} ops -> {}", trace.len(), minimal.len());
                        minimal
                    } else {
                        trace
                    };
                    for op in &trace {
                        println!("  {}", op.summary());
                    }
                    println!("{tree}");
                    ExitCode::SUCCESS
                }
            }
        }
        "replay" => {
            let Some(path) = args.positional.get(1) else {
                return usage();
            };
            let json = match std::fs::read_to_string(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let scenario: Scenario<SingleNode, String> = match Scenario::from_json(&json) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (outcome, st) = scenario.run();
            println!(
                "scenario '{}': {} ops applied; first rejection: {:?}; violation: {:?}",
                scenario.name, outcome.applied, outcome.first_noop, outcome.violation
            );
            if args.flag("dot") {
                println!("{}", render::to_dot(&st));
            } else {
                println!("{}", outcome.final_tree);
            }
            ExitCode::SUCCESS
        }
        "fig4" => {
            let scenario = fig4_scenario(guard);
            if args.flag("json") {
                println!("{}", scenario.to_json());
                return ExitCode::SUCCESS;
            }
            let (outcome, st) = scenario.run();
            println!(
                "fig4 under guard {guard}: {} ops applied; first rejection: {:?}",
                outcome.applied, outcome.first_noop
            );
            match &outcome.violation {
                Some((step, v)) => println!("violation after op {step}: {v}"),
                None => println!("no violation"),
            }
            if args.flag("dot") {
                println!("{}", render::to_dot(&st));
            } else {
                println!("{}", outcome.final_tree);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
