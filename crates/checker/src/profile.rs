//! Per-run profiling for the explorers: which invariants burned the
//! evaluations, which transition kinds dominated the frontier, and how
//! fast states were visited.
//!
//! Built on the [`adore_obs`] metrics registry so the numbers share one
//! schema with the rest of the stack: counters named `invariant.<lemma>`
//! count evaluations per lemma, `transition.<kind>` counts applied
//! transitions per operation kind, and `quorum.checks` records how many
//! quorum-membership tests the run performed (the paper's cost model for
//! protocol- vs network-level reasoning counts exactly these).

use std::time::Duration;

use adore_obs::{Metrics, MetricsSnapshot};

/// A profile of one exploration run (requested via the `profile` flag on
/// [`crate::ExploreParams`] / [`crate::NetExploreParams`]).
#[derive(Debug, Clone)]
pub struct ExploreProfile {
    /// The raw registry snapshot: `invariant.*` evaluation counters,
    /// `transition.*` applied-transition counters, `quorum.checks`.
    pub metrics: MetricsSnapshot,
    /// Distinct states visited per wall-clock second (0 when the run was
    /// too fast to time).
    pub states_per_sec: u64,
}

impl ExploreProfile {
    /// Builds a profile from a run's registry, visit count, and elapsed
    /// wall-clock time.
    #[must_use]
    pub fn new(metrics: &Metrics, states: usize, elapsed: Duration) -> Self {
        let secs = elapsed.as_secs_f64();
        let states_per_sec = if secs > 0.0 {
            (states as f64 / secs) as u64
        } else {
            0
        };
        ExploreProfile {
            metrics: metrics.snapshot(),
            states_per_sec,
        }
    }

    /// Invariant-evaluation counters, hottest first, with the
    /// `invariant.` prefix stripped.
    #[must_use]
    pub fn hottest_invariants(&self) -> Vec<(&str, u64)> {
        strip_prefix(self.metrics.hottest("invariant."), "invariant.")
    }

    /// Applied-transition counters, hottest first, with the
    /// `transition.` prefix stripped.
    #[must_use]
    pub fn hottest_transitions(&self) -> Vec<(&str, u64)> {
        strip_prefix(self.metrics.hottest("transition."), "transition.")
    }

    /// How many quorum-membership checks the run performed.
    #[must_use]
    pub fn quorum_checks(&self) -> u64 {
        self.metrics.counter("quorum.checks")
    }

    /// Total invariant evaluations across all lemmas.
    #[must_use]
    pub fn invariant_evals(&self) -> u64 {
        self.metrics.hottest("invariant.").iter().map(|(_, n)| n).sum()
    }
}

fn strip_prefix<'a>(rows: Vec<(&'a str, u64)>, prefix: &str) -> Vec<(&'a str, u64)> {
    rows.into_iter()
        .map(|(k, v)| (k.strip_prefix(prefix).unwrap_or(k), v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hottest_helpers_strip_their_prefixes() {
        let mut m = Metrics::new();
        m.add("invariant.safety", 10);
        m.add("invariant.structure", 4);
        m.add("transition.pull", 7);
        m.add("quorum.checks", 3);
        let p = ExploreProfile::new(&m, 100, Duration::from_millis(50));
        assert_eq!(
            p.hottest_invariants(),
            vec![("safety", 10), ("structure", 4)]
        );
        assert_eq!(p.hottest_transitions(), vec![("pull", 7)]);
        assert_eq!(p.quorum_checks(), 3);
        assert_eq!(p.invariant_evals(), 14);
        assert_eq!(p.states_per_sec, 2000);
    }
}
