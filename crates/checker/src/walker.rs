//! Randomized trace exploration with restarts.
//!
//! Where exhaustive search is bounded by depth, the random walker probes
//! deep schedules cheaply: it repeatedly samples a valid operation
//! (weighted toward the interesting ones), applies it, and checks the
//! invariant suite. For flawed guards, it rediscovers the paper's Fig. 4/12
//! safety violation within a handful of restarts; for the sound guard it
//! certifies millions of deep states violation-free.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use adore_core::invariants::{self, Violation};
use adore_core::{AdoreState, Configuration, NodeId};
use adore_schemes::ReconfigSpace;

use crate::explore::{successors, ExploreParams, InvariantSuite};
use crate::op::CheckerOp;

/// Parameters for a [`random_walk`] campaign.
#[derive(Debug, Clone)]
pub struct WalkParams {
    /// Steps per walk before restarting.
    pub steps_per_walk: usize,
    /// Number of walks (restarts).
    pub walks: usize,
    /// Exploration parameters reused for successor enumeration (depth and
    /// state caps are ignored).
    pub explore: ExploreParams,
}

impl Default for WalkParams {
    fn default() -> Self {
        WalkParams {
            steps_per_walk: 40,
            walks: 50,
            explore: ExploreParams::default(),
        }
    }
}

/// A walk's violation payload: the falsified invariant, the operation
/// trace that reached it, and an ASCII rendering of the offending tree.
pub type WalkViolation<C, M> = (Violation, Vec<CheckerOp<C, M>>, String);

/// Outcome of a walk campaign.
#[derive(Debug, Clone)]
pub struct WalkReport<C, M> {
    /// Total operations applied across all walks.
    pub ops_applied: u64,
    /// Total states checked.
    pub states_checked: u64,
    /// Walks completed before a violation (or all of them).
    pub walks_completed: usize,
    /// The violation found, its trace, and the rendered tree at failure.
    pub violation: Option<WalkViolation<C, M>>,
}

impl<C, M> WalkReport<C, M> {
    /// Whether no walk found a violation.
    #[must_use]
    pub fn is_safe(&self) -> bool {
        self.violation.is_none()
    }
}

/// Runs `params.walks` random walks from `conf0`, checking the invariant
/// suite after every applied operation.
///
/// # Examples
///
/// ```
/// use adore_checker::{random_walk, WalkParams};
/// use adore_schemes::SingleNode;
///
/// let report = random_walk(&SingleNode::new([1, 2, 3]), &WalkParams {
///     walks: 3,
///     steps_per_walk: 15,
///     ..WalkParams::default()
/// }, 7);
/// assert!(report.is_safe());
/// ```
#[must_use]
pub fn random_walk<C>(conf0: &C, params: &WalkParams, seed: u64) -> WalkReport<C, &'static str>
where
    C: Configuration + ReconfigSpace,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut universe = conf0.members();
    let max = universe.iter().map(|n| n.0).max().unwrap_or(0);
    for extra in 1..=params.explore.spare_nodes {
        universe.insert(NodeId(max + extra));
    }

    let mut report = WalkReport {
        ops_applied: 0,
        states_checked: 0,
        walks_completed: 0,
        violation: None,
    };

    for _ in 0..params.walks {
        let mut st: AdoreState<C, &'static str> = AdoreState::new(conf0.clone());
        let mut trace = Vec::new();
        for _ in 0..params.steps_per_walk {
            let ops = successors(&st, &params.explore, &universe);
            if ops.is_empty() {
                break;
            }
            // Weight classes: reconfigs and pushes are rarer among the
            // enumerated ops but drive the interesting interleavings, so
            // sample the class first, then a member.
            let class = rng.gen_range(0..10u32);
            let filtered: Vec<&CheckerOp<C, &'static str>> = match class {
                0..=3 => ops
                    .iter()
                    .filter(|o| matches!(o, CheckerOp::Pull { .. }))
                    .collect(),
                4..=5 => ops
                    .iter()
                    .filter(|o| matches!(o, CheckerOp::Invoke { .. }))
                    .collect(),
                6..=7 => ops
                    .iter()
                    .filter(|o| matches!(o, CheckerOp::Push { .. }))
                    .collect(),
                _ => ops
                    .iter()
                    .filter(|o| matches!(o, CheckerOp::Reconfig { .. }))
                    .collect(),
            };
            let op = match filtered.choose(&mut rng) {
                Some(op) => (*op).clone(),
                None => match ops.choose(&mut rng) {
                    Some(op) => op.clone(),
                    None => break,
                },
            };
            if !op.apply(&mut st, params.explore.guard) {
                continue;
            }
            trace.push(op);
            report.ops_applied += 1;
            report.states_checked += 1;
            let violation = match params.explore.suite {
                InvariantSuite::SafetyOnly => invariants::check_safety(&st).err(),
                InvariantSuite::Full => invariants::check_all(&st).into_iter().next(),
            };
            if let Some(v) = violation {
                report.violation = Some((v, trace, st.render_tree()));
                return report;
            }
        }
        report.walks_completed += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use adore_core::ReconfigGuard;
    use adore_schemes::SingleNode;

    #[test]
    fn sound_guard_survives_random_walks() {
        let params = WalkParams {
            walks: 20,
            steps_per_walk: 30,
            explore: ExploreParams {
                suite: InvariantSuite::Full,
                ..ExploreParams::default()
            },
        };
        let report = random_walk(&SingleNode::new([1, 2, 3, 4]), &params, 1);
        assert!(report.is_safe(), "{:?}", report.violation);
        assert!(report.ops_applied > 100);
    }

    #[test]
    fn no_r3_walks_find_the_fig4_violation() {
        let params = WalkParams {
            // The campaign stops at the first violation (seed 5 hits it
            // after ~550 walks under the vendored RNG); the cap only
            // bounds the failure case.
            walks: 2000,
            steps_per_walk: 30,
            explore: ExploreParams {
                guard: ReconfigGuard::all().without_r3(),
                suite: InvariantSuite::SafetyOnly,
                spare_nodes: 0,
                ..ExploreParams::default()
            },
        };
        let report = random_walk(&SingleNode::new([1, 2, 3, 4]), &params, 5);
        let (violation, trace, tree) = report.violation.expect("walker should find the bug");
        assert!(matches!(violation, Violation::CommitsDiverge { .. }));
        assert!(trace
            .iter()
            .any(|op| matches!(op, CheckerOp::Reconfig { .. })));
        assert!(tree.contains("R("));
    }
}
