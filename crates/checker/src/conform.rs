//! Conformance corpus: the checker-side hook for differential
//! spec-drift detection (adore-lint rule L13).
//!
//! The corpus is every `(state, event, post-state)` transition attempt
//! the bounded explorer visits from the initial cluster, re-expressed
//! in a plain *mirror* representation (`CState`/`CEvent`) that carries
//! no generics and no private fields. adore-lint's micro-interpreter
//! executes a guarded-command IR — extracted from the *source text* of
//! `raft/src/net.rs` — against every sample and diffs guard verdicts
//! and post-states against what the compiled transition function
//! actually did. Any mismatch is spec drift between the code and the
//! certified model, reported with a replayable event-trace witness.
//!
//! The corpus instantiates the configuration scheme with
//! [`SingleNode`] (majority quorums, one-node-at-a-time `R1⁺`) and the
//! full [`ReconfigGuard`]; the mirror semantics in
//! [`CState::is_quorum`]/[`CState::r1_plus`] reproduce exactly that
//! instantiation. Drift in *other* scheme instantiations is out of
//! scope for L13 (see DESIGN §15 for the soundness caveats).

use std::collections::{BTreeMap, BTreeSet};

use adore_core::{Configuration, NodeId, ReconfigGuard};
use adore_raft::{Command, Entry, EventOutcome, MsgId, NetEvent, NetState, Request, Role};
use adore_schemes::{ReconfigSpace, SingleNode};

/// Mirror of a replicated command over the corpus instantiation
/// (`SingleNode` configs, `u32` methods).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CCmd {
    /// An application method.
    Method(u32),
    /// A configuration change to the given member set.
    Config(BTreeSet<u32>),
}

/// Mirror of one log slot.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CEntry {
    /// Leader term under which the entry was created.
    pub time: u64,
    /// The replicated command.
    pub cmd: CCmd,
}

/// Mirror of a replica role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum CRole {
    /// Passive replica.
    #[default]
    Follower,
    /// Election in progress.
    Candidate,
    /// Commit phase.
    Leader,
}

/// Mirror of one replica's full state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct CServer {
    /// Largest observed term.
    pub time: u64,
    /// Local command log.
    pub log: Vec<CEntry>,
    /// Number of entries known committed.
    pub commit_len: usize,
    /// Current role.
    pub role: CRole,
    /// Votes received while a candidate.
    pub votes: BTreeSet<u32>,
    /// Commit acks per acked log length.
    pub acks: BTreeMap<usize, BTreeSet<u32>>,
    /// Whether the replica is crashed.
    pub crashed: bool,
    /// Whether the replica has renounced voting.
    pub abstaining: bool,
}

impl CServer {
    /// Whether this server is indistinguishable from a never-touched
    /// one. Pristine servers are dropped by the state projection so
    /// that materializing a default entry (as `ensure_server` does on
    /// rejected paths) is not reported as a state change — mirroring
    /// how `NetState::net_relation` filters its summary.
    #[must_use]
    pub fn pristine(&self) -> bool {
        self == &CServer::default()
    }
}

/// Mirror of a broadcast request.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CMsg {
    /// An election request.
    Elect {
        /// The candidate.
        from: u32,
        /// The candidate's new term.
        time: u64,
        /// The candidate's log at broadcast time.
        log: Vec<CEntry>,
    },
    /// A commit request.
    Commit {
        /// The leader.
        from: u32,
        /// The leader's term.
        time: u64,
        /// The leader's log at broadcast time.
        log: Vec<CEntry>,
        /// The leader's commit index at broadcast time.
        commit_len: usize,
    },
}

/// Mirror of a schedulable network event, over the corpus
/// instantiation. Crash/recover events are not enumerated by the
/// bounded explorer and so do not appear here.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CEvent {
    /// `elect(nid)`.
    Elect {
        /// The candidate.
        nid: u32,
    },
    /// `invoke(nid, m)`.
    Invoke {
        /// The leader.
        nid: u32,
        /// The method.
        method: u32,
    },
    /// `reconfig(nid, cf)`.
    Reconfig {
        /// The leader.
        nid: u32,
        /// The proposed member set.
        members: BTreeSet<u32>,
    },
    /// `commit(nid)`.
    Commit {
        /// The leader.
        nid: u32,
    },
    /// `deliver(msg, to)`.
    Deliver {
        /// Index of the request in the sent bag.
        msg: u32,
        /// The recipient.
        to: u32,
    },
}

impl CEvent {
    /// Compact single-token rendering (`Elect(1)`, `Deliver(0,2)`, …)
    /// used in L13 witness messages.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            CEvent::Elect { nid } => format!("Elect({nid})"),
            CEvent::Invoke { nid, method } => format!("Invoke({nid},m{method})"),
            CEvent::Reconfig { nid, members } => {
                let ms: Vec<String> = members.iter().map(u32::to_string).collect();
                format!("Reconfig({nid},{{{}}})", ms.join(","))
            }
            CEvent::Commit { nid } => format!("Commit({nid})"),
            CEvent::Deliver { msg, to } => format!("Deliver(m{msg},{to})"),
        }
    }
}

/// Mirror of the full network state: everything the differential
/// comparison looks at. The `delivered` audit trail is deliberately
/// excluded (it is bookkeeping, not protocol state), and pristine
/// servers are dropped (see [`CServer::pristine`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct CState {
    /// The genesis member set.
    pub conf0: BTreeSet<u32>,
    /// Non-pristine replicas.
    pub servers: BTreeMap<u32, CServer>,
    /// The sent-request bag.
    pub messages: Vec<CMsg>,
}

impl CState {
    /// The member set in effect at the end of `log`: last config entry
    /// wins, else `conf0` — the hot-reconfiguration rule.
    #[must_use]
    pub fn effective_members(&self, log: &[CEntry]) -> BTreeSet<u32> {
        log.iter()
            .rev()
            .find_map(|e| match &e.cmd {
                CCmd::Config(m) => Some(m.clone()),
                CCmd::Method(_) => None,
            })
            .unwrap_or_else(|| self.conf0.clone())
    }

    /// `SingleNode` majority quorum: strictly more than half of
    /// `members` appear in `s`.
    #[must_use]
    pub fn is_quorum(members: &BTreeSet<u32>, s: &BTreeSet<u32>) -> bool {
        members.len() < 2 * s.intersection(members).count()
    }

    /// `SingleNode` `R1⁺`: the next member set differs from the
    /// current one by at most one node in total.
    #[must_use]
    pub fn r1_plus(current: &BTreeSet<u32>, next: &BTreeSet<u32>) -> bool {
        let added = next.difference(current).count();
        let removed = current.difference(next).count();
        added + removed <= 1
    }

    /// Lexicographic log up-to-dateness: compare the last entries'
    /// timestamps, then the lengths.
    #[must_use]
    pub fn log_up_to_date(candidate: &[CEntry], voter: &[CEntry]) -> bool {
        let key = |log: &[CEntry]| (log.last().map_or(0, |e| e.time), log.len());
        key(candidate) >= key(voter)
    }

    /// The committed-prefix agreement invariant, mirrored from
    /// `NetState::check_log_safety`: no dangling commit watermark, and
    /// no two committed prefixes that disagree on a shared slot.
    /// Returns the offending pair on violation.
    ///
    /// # Errors
    ///
    /// `Err((a, b))` names the two replicas whose committed prefixes
    /// conflict (`a == b` for a dangling watermark).
    pub fn check_log_safety(&self) -> Result<(), (u32, u32)> {
        for (&a, sa) in &self.servers {
            if sa.commit_len > sa.log.len() {
                return Err((a, a));
            }
            for (&b, sb) in &self.servers {
                if b <= a {
                    continue;
                }
                let shared = sa.commit_len.min(sb.commit_len);
                if sa.log[..shared] != sb.log[..shared] {
                    return Err((a, b));
                }
            }
        }
        Ok(())
    }
}

/// One differential sample: a transition attempt the explorer made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformSample {
    /// The pre-state (projected).
    pub state: CState,
    /// The event attempted.
    pub event: CEvent,
    /// The post-state the compiled transition function produced
    /// (projected).
    pub post: CState,
    /// Whether the compiled step reported `EventOutcome::Applied`.
    pub applied: bool,
    /// The applied-event trace that reaches `state` from the initial
    /// cluster — the replayable witness prefix.
    pub trace: Vec<CEvent>,
}

/// Parameters for [`conform_corpus`].
#[derive(Debug, Clone)]
pub struct ConformParams {
    /// Genesis member ids.
    pub members: Vec<u32>,
    /// Extra never-member node ids added to the event universe.
    pub spare_nodes: u32,
    /// Maximum applied-trace length explored.
    pub depth: usize,
    /// Whether reconfiguration events are enumerated.
    pub with_reconfig: bool,
    /// Hard cap on recorded samples.
    pub max_samples: usize,
}

impl Default for ConformParams {
    fn default() -> Self {
        ConformParams {
            members: vec![1, 2],
            spare_nodes: 1,
            depth: 4,
            with_reconfig: true,
            max_samples: 60_000,
        }
    }
}

/// The generated corpus plus the universe it was enumerated over.
#[derive(Debug, Clone)]
pub struct ConformCorpus {
    /// Genesis member ids.
    pub members: Vec<u32>,
    /// Full event universe (members plus spares).
    pub universe: Vec<u32>,
    /// Horizon the samples were collected at.
    pub depth: usize,
    /// Whether the sample cap truncated collection.
    pub truncated: bool,
    /// The transition samples, in deterministic BFS order.
    pub samples: Vec<ConformSample>,
}

fn mirror_log(log: &[Entry<SingleNode, u32>]) -> Vec<CEntry> {
    log.iter()
        .map(|e| CEntry {
            time: e.time.0,
            cmd: match &e.cmd {
                Command::Method(m) => CCmd::Method(*m),
                Command::Config(c) => {
                    CCmd::Config(c.members().iter().map(|n| n.0).collect())
                }
            },
        })
        .collect()
}

/// Projects a live `NetState` into its mirror, dropping pristine
/// servers and the delivered audit trail.
#[must_use]
pub fn mirror_state(st: &NetState<SingleNode, u32>) -> CState {
    let mut servers = BTreeMap::new();
    for (nid, s) in st.servers() {
        let cs = CServer {
            time: s.time.0,
            log: mirror_log(&s.log),
            commit_len: s.commit_len,
            role: match s.role {
                Role::Follower => CRole::Follower,
                Role::Candidate => CRole::Candidate,
                Role::Leader => CRole::Leader,
            },
            votes: s.votes.iter().map(|n| n.0).collect(),
            acks: s
                .acks
                .iter()
                .map(|(&len, who)| (len, who.iter().map(|n| n.0).collect()))
                .collect(),
            crashed: s.crashed,
            abstaining: s.abstaining,
        };
        if !cs.pristine() {
            servers.insert(nid.0, cs);
        }
    }
    CState {
        conf0: st.conf0().members().iter().map(|n| n.0).collect(),
        servers,
        messages: st
            .messages()
            .iter()
            .map(|m| match m {
                Request::Elect { from, time, log } => CMsg::Elect {
                    from: from.0,
                    time: time.0,
                    log: mirror_log(log),
                },
                Request::Commit {
                    from,
                    time,
                    log,
                    commit_len,
                } => CMsg::Commit {
                    from: from.0,
                    time: time.0,
                    log: mirror_log(log),
                    commit_len: *commit_len,
                },
            })
            .collect(),
    }
}

/// Converts a mirror event back into a live `NetEvent`, for replaying
/// witnesses through the compiled transition function.
#[must_use]
pub fn to_net_event(ev: &CEvent) -> NetEvent<SingleNode, u32> {
    match ev {
        CEvent::Elect { nid } => NetEvent::Elect { nid: NodeId(*nid) },
        CEvent::Invoke { nid, method } => NetEvent::Invoke {
            nid: NodeId(*nid),
            method: *method,
        },
        CEvent::Reconfig { nid, members } => NetEvent::Reconfig {
            nid: NodeId(*nid),
            config: SingleNode::new(members.iter().copied()),
        },
        CEvent::Commit { nid } => NetEvent::Commit { nid: NodeId(*nid) },
        CEvent::Deliver { msg, to } => NetEvent::Deliver {
            msg: MsgId(*msg),
            to: NodeId(*to),
        },
    }
}

fn to_cevent(ev: &NetEvent<SingleNode, u32>) -> CEvent {
    match ev {
        NetEvent::Elect { nid } => CEvent::Elect { nid: nid.0 },
        NetEvent::Invoke { nid, method } => CEvent::Invoke {
            nid: nid.0,
            method: *method,
        },
        NetEvent::Reconfig { nid, config } => CEvent::Reconfig {
            nid: nid.0,
            members: config.members().iter().map(|n| n.0).collect(),
        },
        NetEvent::Commit { nid } => CEvent::Commit { nid: nid.0 },
        NetEvent::Deliver { msg, to } => CEvent::Deliver {
            msg: msg.0,
            to: to.0,
        },
        // The corpus enumeration never emits crash/recover events
        // (matching `explore_net`); see the `CEvent` docs.
        NetEvent::Crash { .. } | NetEvent::Recover { .. } => {
            unreachable!("crash/recover are not enumerated by the conformance corpus")
        }
    }
}

/// Replays a mirror-event trace from the initial cluster over
/// `members` through the *compiled* transition function, returning
/// the resulting live state. This is how an L13 witness is validated
/// against the real code.
#[must_use]
pub fn replay_trace(members: &[u32], trace: &[CEvent]) -> NetState<SingleNode, u32> {
    let mut st: NetState<SingleNode, u32> =
        NetState::new(SingleNode::new(members.iter().copied()), ReconfigGuard::all());
    for ev in trace {
        let _ = st.step(&to_net_event(ev));
    }
    st
}

/// Generates the differential corpus: a BFS over applied transitions
/// (mirroring `explore_net`'s enumeration exactly — every member and
/// spare node attempts elect/invoke/commit, reconfig over the
/// one-step candidate space, and delivery of every sent message),
/// recording *every* transition attempt, applied or rejected,
/// together with the applied trace that reaches its pre-state.
#[must_use]
pub fn conform_corpus(params: &ConformParams) -> ConformCorpus {
    let conf0 = SingleNode::new(params.members.iter().copied());
    let initial: NetState<SingleNode, u32> = NetState::new(conf0.clone(), ReconfigGuard::all());
    let mut universe = conf0.members();
    let max = universe.iter().map(|n| n.0).max().unwrap_or(0);
    for extra in 1..=params.spare_nodes {
        universe.insert(NodeId(max + extra));
    }

    let fingerprint = |st: &NetState<SingleNode, u32>| {
        format!("{:?}|{:?}", st.net_relation(), st.messages())
    };

    let mut samples = Vec::new();
    let mut truncated = false;
    let mut visited = BTreeSet::new();
    visited.insert(fingerprint(&initial));
    let mut frontier: Vec<(NetState<SingleNode, u32>, Vec<CEvent>)> =
        vec![(initial, Vec::new())];

    'bfs: for d in 0..params.depth {
        let mut next = Vec::new();
        for (st, trace) in &frontier {
            let pre = mirror_state(st);
            for ev in successors(st, params.with_reconfig, &universe) {
                if samples.len() >= params.max_samples {
                    truncated = true;
                    break 'bfs;
                }
                let mut post = st.clone();
                let outcome = post.step(&ev);
                let cev = to_cevent(&ev);
                samples.push(ConformSample {
                    state: pre.clone(),
                    event: cev.clone(),
                    post: mirror_state(&post),
                    applied: outcome.applied(),
                    trace: trace.clone(),
                });
                if outcome == EventOutcome::Applied
                    && d + 1 < params.depth
                    && visited.insert(fingerprint(&post))
                {
                    let mut t = trace.clone();
                    t.push(cev);
                    next.push((post, t));
                }
            }
        }
        frontier = next;
    }

    ConformCorpus {
        members: params.members.clone(),
        universe: universe.iter().map(|n| n.0).collect(),
        depth: params.depth,
        truncated,
        samples,
    }
}

fn successors(
    st: &NetState<SingleNode, u32>,
    with_reconfig: bool,
    universe: &adore_core::NodeSet,
) -> Vec<NetEvent<SingleNode, u32>> {
    let mut evs = Vec::new();
    for &nid in universe {
        evs.push(NetEvent::Elect { nid });
        evs.push(NetEvent::Invoke { nid, method: 0 });
        evs.push(NetEvent::Commit { nid });
        if with_reconfig {
            let current = st.config_of(nid).unwrap_or_else(|| st.conf0().clone());
            for cand in current.candidates(universe) {
                evs.push(NetEvent::Reconfig { nid, config: cand });
            }
        }
        for msg in 0..st.messages().len() {
            evs.push(NetEvent::Deliver {
                msg: MsgId(msg as u32),
                to: nid,
            });
        }
    }
    evs
}

/// A sanity bound used by tests and the IR dump: the default corpus
/// must contain the quorum-drift witness prefix
/// `[Elect(1), Deliver(m0,2), Invoke(1,m0)]` with a `Commit(1)`
/// attempt recorded from its post-state.
#[must_use]
pub fn default_corpus() -> ConformCorpus {
    conform_corpus(&ConformParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_records_rejections_and_applies() {
        let c = conform_corpus(&ConformParams {
            members: vec![1, 2],
            spare_nodes: 0,
            depth: 2,
            with_reconfig: false,
            max_samples: 10_000,
        });
        assert!(!c.truncated);
        assert!(c.samples.iter().any(|s| s.applied));
        assert!(c.samples.iter().any(|s| !s.applied));
        // Rejected attempts must not change the projected state.
        for s in &c.samples {
            if !s.applied {
                assert_eq!(s.state, s.post, "rejected event changed state: {:?}", s.event);
            }
        }
    }

    #[test]
    fn traces_replay_to_their_prestates() {
        let c = conform_corpus(&ConformParams {
            members: vec![1, 2],
            spare_nodes: 1,
            depth: 3,
            with_reconfig: true,
            max_samples: 60_000,
        });
        for s in c.samples.iter().step_by(97) {
            let live = replay_trace(&c.members, &s.trace);
            assert_eq!(mirror_state(&live), s.state);
        }
    }

    #[test]
    fn default_corpus_contains_commit_after_leader_append() {
        let c = default_corpus();
        let want = [
            CEvent::Elect { nid: 1 },
            CEvent::Deliver { msg: 0, to: 2 },
            CEvent::Invoke { nid: 1, method: 0 },
        ];
        assert!(
            c.samples
                .iter()
                .any(|s| s.trace == want && s.event == (CEvent::Commit { nid: 1 })),
            "quorum-drift witness prefix missing from default corpus"
        );
    }

    #[test]
    fn mirror_safety_check_matches_live() {
        let c = conform_corpus(&ConformParams {
            members: vec![1, 2],
            spare_nodes: 0,
            depth: 3,
            with_reconfig: false,
            max_samples: 60_000,
        });
        for s in c.samples.iter().step_by(53) {
            let mut live = replay_trace(&c.members, &s.trace);
            let _ = live.step(&to_net_event(&s.event));
            assert_eq!(
                live.check_log_safety().is_ok(),
                s.post.check_log_safety().is_ok()
            );
        }
    }
}
