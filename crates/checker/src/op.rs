//! A uniform operation alphabet over the ADORE transition system.

use serde::{Deserialize, Serialize};

use adore_core::{
    AdoreState, CacheId, Configuration, NodeId, PullDecision, PullOutcome, PushDecision,
    PushOutcome, ReconfigGuard,
};

/// One transition of the ADORE system: an operation plus the oracle
/// decision that resolves its nondeterminism.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CheckerOp<C, M> {
    /// `pull` with a concrete oracle decision.
    Pull {
        /// The candidate.
        caller: NodeId,
        /// The oracle decision.
        decision: PullDecision,
    },
    /// `invoke`.
    Invoke {
        /// The leader.
        caller: NodeId,
        /// The method.
        method: M,
    },
    /// `reconfig`.
    Reconfig {
        /// The leader.
        caller: NodeId,
        /// The proposed configuration.
        new_config: C,
    },
    /// `push` with a concrete oracle decision.
    Push {
        /// The leader.
        caller: NodeId,
        /// The oracle decision.
        decision: PushDecision,
    },
}

impl<C: Configuration, M: Clone> CheckerOp<C, M> {
    /// Applies the operation to `st` under `guard`, returning whether it
    /// changed the state.
    ///
    /// Invalid oracle decisions and no-ops both report `false`; the
    /// enumerators in [`crate::explore()`] only produce valid decisions, so
    /// `false` there means a semantic no-op.
    pub fn apply(&self, st: &mut AdoreState<C, M>, guard: ReconfigGuard) -> bool {
        match self {
            CheckerOp::Pull { caller, decision } => match st.pull(*caller, decision) {
                Ok(PullOutcome::Elected(_) | PullOutcome::NoQuorum) => true,
                Ok(PullOutcome::Failed) | Err(_) => false,
            },
            CheckerOp::Invoke { caller, method } => {
                st.invoke(*caller, method.clone()).applied().is_some()
            }
            CheckerOp::Reconfig { caller, new_config } => st
                .reconfig(*caller, new_config.clone(), guard)
                .applied()
                .is_some(),
            CheckerOp::Push { caller, decision } => match st.push(*caller, decision) {
                Ok(PushOutcome::Committed(_) | PushOutcome::NoQuorum) => true,
                Ok(PushOutcome::Failed) | Err(_) => false,
            },
        }
    }

    /// A short machine-readable name for the operation kind, used by the
    /// profiler's per-kind transition counters.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            CheckerOp::Pull { .. } => "pull",
            CheckerOp::Invoke { .. } => "invoke",
            CheckerOp::Reconfig { .. } => "reconfig",
            CheckerOp::Push { .. } => "push",
        }
    }

    /// The id of the cache a successful `Push` targets, if any.
    #[must_use]
    pub fn push_target(&self) -> Option<CacheId> {
        match self {
            CheckerOp::Push {
                decision: PushDecision::Ok { target, .. },
                ..
            } => Some(*target),
            _ => None,
        }
    }

    /// A compact rendering for counterexample listings.
    #[must_use]
    pub fn summary(&self) -> String
    where
        C: std::fmt::Debug,
        M: std::fmt::Debug,
    {
        match self {
            CheckerOp::Pull { caller, decision } => match decision {
                PullDecision::Ok { supporters, time } => {
                    let q: Vec<String> = supporters.iter().map(ToString::to_string).collect();
                    format!("pull({caller}) Q={{{}}} {time}", q.join(","))
                }
                PullDecision::Fail => format!("pull({caller}) fail"),
            },
            CheckerOp::Invoke { caller, method } => format!("invoke({caller}, {method:?})"),
            CheckerOp::Reconfig { caller, new_config } => {
                format!("reconfig({caller}, {new_config:?})")
            }
            CheckerOp::Push { caller, decision } => match decision {
                PushDecision::Ok { supporters, target } => {
                    let q: Vec<String> = supporters.iter().map(ToString::to_string).collect();
                    format!("push({caller}) Q={{{}}} target {target}", q.join(","))
                }
                PushDecision::Fail => format!("push({caller}) fail"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adore_core::majority::Majority;
    use adore_core::{node_set, Timestamp};

    type Op = CheckerOp<Majority, &'static str>;

    #[test]
    fn apply_reports_state_changes() {
        let mut st = AdoreState::new(Majority::new([1, 2, 3]));
        let pull = Op::Pull {
            caller: NodeId(1),
            decision: PullDecision::Ok {
                supporters: node_set([1, 2]),
                time: Timestamp(1),
            },
        };
        assert!(pull.apply(&mut st, ReconfigGuard::all()));
        let invoke = Op::Invoke {
            caller: NodeId(1),
            method: "m",
        };
        assert!(invoke.apply(&mut st, ReconfigGuard::all()));
        // A non-leader invoke is a no-op.
        let bad = Op::Invoke {
            caller: NodeId(2),
            method: "m",
        };
        assert!(!bad.apply(&mut st, ReconfigGuard::all()));
    }

    #[test]
    fn summaries_are_compact() {
        let op = Op::Pull {
            caller: NodeId(1),
            decision: PullDecision::Ok {
                supporters: node_set([1, 2]),
                time: Timestamp(3),
            },
        };
        assert_eq!(op.summary(), "pull(S1) Q={S1,S2} t3");
    }
}
