//! Scripted scenario replay with serializable counterexample artifacts.
//!
//! A [`Scenario`] is a named, directed operation sequence — e.g. the exact
//! Fig. 4/Fig. 12 schedule — replayed step by step with invariant checks.
//! Scenarios and their outcomes serialize to JSON so counterexamples can be
//! stored, diffed, and replayed (`Scenario::to_json`/`from_json`).

use serde::{Deserialize, Serialize};

use adore_core::invariants::{self, Violation};
use adore_core::{AdoreState, Configuration, ReconfigGuard};

use crate::op::CheckerOp;

/// A named, scripted operation sequence over a fresh ADORE state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario<C, M> {
    /// Human-readable name (e.g. `"fig4-single-server-bug"`).
    pub name: String,
    /// The initial configuration.
    pub conf0: C,
    /// The guard in force during replay.
    pub guard: ReconfigGuard,
    /// The operations, in order.
    pub ops: Vec<CheckerOp<C, M>>,
}

/// The result of replaying a [`Scenario`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Operations that actually changed the state.
    pub applied: usize,
    /// Index of the first operation that was a no-op (guard rejection or
    /// invalid oracle decision), if any.
    pub first_noop: Option<usize>,
    /// The first safety violation, and the step after which it appeared.
    pub violation: Option<(usize, Violation)>,
    /// Rendering of the final cache tree.
    pub final_tree: String,
}

impl ScenarioOutcome {
    /// Whether the whole script applied with no violation.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.first_noop.is_none() && self.violation.is_none()
    }
}

impl<C, M> Scenario<C, M>
where
    C: Configuration + std::fmt::Debug,
    M: Clone + Eq + std::fmt::Debug,
{
    /// Replays the scenario, checking replicated state safety after every
    /// applied operation, and returns the outcome together with the final
    /// state.
    #[must_use]
    pub fn run(&self) -> (ScenarioOutcome, AdoreState<C, M>) {
        let mut st: AdoreState<C, M> = AdoreState::new(self.conf0.clone());
        let mut outcome = ScenarioOutcome {
            applied: 0,
            first_noop: None,
            violation: None,
            final_tree: String::new(),
        };
        for (i, op) in self.ops.iter().enumerate() {
            if op.apply(&mut st, self.guard) {
                outcome.applied += 1;
                if outcome.violation.is_none() {
                    if let Err(v) = invariants::check_safety(&st) {
                        outcome.violation = Some((i, v));
                    }
                }
            } else if outcome.first_noop.is_none() {
                outcome.first_noop = Some(i);
            }
        }
        outcome.final_tree = st.render_tree();
        (outcome, st)
    }
}

impl<C, M> Scenario<C, M>
where
    C: Configuration + Serialize + serde::de::DeserializeOwned,
    M: Clone + Eq + Serialize + serde::de::DeserializeOwned,
{
    /// Serializes the scenario to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics only if the configuration/method serializers fail, which the
    /// derive-based implementations used here never do.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialization is infallible")
    }

    /// Parses a scenario from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// The paper's Fig. 4 / Fig. 12 schedule, parameterized by the guard:
/// S1 removes S4 but fails to replicate; S2 (elected by S3, S4) removes S3
/// and commits with {S2, S4}; S1 is re-elected by {S1, S3} under its own
/// configuration and commits independently.
///
/// Under `ReconfigGuard::all().without_r3()` the replay ends in a
/// `CommitsDiverge` violation; under the full guard the first
/// reconfiguration is rejected (`first_noop` points at it).
///
/// # Examples
///
/// ```
/// use adore_checker::fig4_scenario;
/// use adore_core::ReconfigGuard;
///
/// let (outcome, _) = fig4_scenario(ReconfigGuard::all().without_r3()).run();
/// assert!(outcome.violation.is_some());
///
/// let (outcome, _) = fig4_scenario(ReconfigGuard::all()).run();
/// assert!(outcome.violation.is_none());
/// assert!(outcome.first_noop.is_some());
/// ```
#[must_use]
pub fn fig4_scenario(guard: ReconfigGuard) -> Scenario<adore_schemes::SingleNode, String> {
    use adore_core::{node_set, NodeId, PullDecision, PushDecision, Timestamp};
    use adore_schemes::SingleNode;
    use adore_tree::CacheId;

    // Cache ids under this exact schedule: genesis #0, e1 #1, r1 #2,
    // e2 #3, r2 #4, c2 #5, e3 #6, m #7.
    let ops = vec![
        CheckerOp::Pull {
            caller: NodeId(1),
            decision: PullDecision::Ok {
                supporters: node_set([1, 2, 3]),
                time: Timestamp(1),
            },
        },
        CheckerOp::Reconfig {
            caller: NodeId(1),
            new_config: SingleNode::new([1, 2, 3]),
        },
        CheckerOp::Pull {
            caller: NodeId(2),
            decision: PullDecision::Ok {
                supporters: node_set([2, 3, 4]),
                time: Timestamp(2),
            },
        },
        CheckerOp::Reconfig {
            caller: NodeId(2),
            new_config: SingleNode::new([1, 2, 4]),
        },
        CheckerOp::Push {
            caller: NodeId(2),
            decision: PushDecision::Ok {
                supporters: node_set([2, 4]),
                target: CacheId::from_index(4),
            },
        },
        CheckerOp::Pull {
            caller: NodeId(1),
            decision: PullDecision::Ok {
                supporters: node_set([1, 3]),
                time: Timestamp(3),
            },
        },
        CheckerOp::Invoke {
            caller: NodeId(1),
            method: "overwrite".to_string(),
        },
        CheckerOp::Push {
            caller: NodeId(1),
            decision: PushDecision::Ok {
                supporters: node_set([1, 3]),
                target: CacheId::from_index(7),
            },
        },
    ];
    Scenario {
        name: "fig4-single-server-membership-change".to_string(),
        conf0: SingleNode::new([1, 2, 3, 4]),
        guard,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adore_core::ReconfigGuard;

    #[test]
    fn fig4_violates_without_r3() {
        let (outcome, st) = fig4_scenario(ReconfigGuard::all().without_r3()).run();
        let (step, violation) = outcome.violation.expect("flawed guard must violate");
        assert_eq!(step, 7); // the final push
        assert!(matches!(violation, Violation::CommitsDiverge { .. }));
        assert!(invariants::check_safety(&st).is_err());
        assert!(outcome.final_tree.contains("C("));
    }

    #[test]
    fn fig4_is_blocked_by_the_full_guard() {
        let (outcome, st) = fig4_scenario(ReconfigGuard::all()).run();
        assert!(outcome.violation.is_none());
        // The very first reconfiguration is the rejected step.
        assert_eq!(outcome.first_noop, Some(1));
        assert!(invariants::check_all(&st).is_empty());
    }

    #[test]
    fn scenarios_round_trip_through_json() {
        let scenario = fig4_scenario(ReconfigGuard::all().without_r3());
        let json = scenario.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(scenario, back);
        // And the replay of the parsed scenario agrees.
        assert_eq!(scenario.run().0, back.run().0);
    }

    #[test]
    fn r2_violation_is_also_discoverable_by_script() {
        use adore_core::{node_set, NodeId, PullDecision, Timestamp};
        use adore_schemes::SingleNode;
        // Stacked reconfigs under no-R2 diverge configurations by two.
        let guard = ReconfigGuard::all().without_r2().without_r3();
        let scenario: Scenario<SingleNode, &'static str> = Scenario {
            name: "stacked-reconfigs".to_string(),
            conf0: SingleNode::new([1, 2, 3, 4]),
            guard,
            ops: vec![
                CheckerOp::Pull {
                    caller: NodeId(1),
                    decision: PullDecision::Ok {
                        supporters: node_set([1, 2, 3]),
                        time: Timestamp(1),
                    },
                },
                CheckerOp::Reconfig {
                    caller: NodeId(1),
                    new_config: SingleNode::new([1, 2, 3]),
                },
                CheckerOp::Reconfig {
                    caller: NodeId(1),
                    new_config: SingleNode::new([1, 2]),
                },
            ],
        };
        let (outcome, st) = scenario.run();
        assert!(outcome.clean());
        // Two uncommitted reconfigurations stacked: configurations now
        // differ from the original by two nodes — the R2 hazard is armed
        // (the full guard would have stopped the second one).
        assert_eq!(outcome.applied, 3);
        let sound = fig4_scenario(ReconfigGuard::all());
        let _ = sound; // the guard comparison lives in fig4 tests
        assert!(st.render_tree().matches("R(").count() == 2);
    }
}
