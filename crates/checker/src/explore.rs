//! Bounded-exhaustive exploration of the ADORE transition system.
//!
//! Every reachable state within a depth bound is visited (breadth-first,
//! with hash-based deduplication), enumerating **all** valid oracle
//! decisions at each state via [`adore_core::enumerate`]. Each state is
//! checked against a configurable invariant suite; a violation yields the
//! shortest counterexample trace.
//!
//! This is the executable counterpart of the mechanized safety theorem for
//! small instances: the paper's own counterexamples (Figs. 4/12) need only
//! four replicas and seven operations, comfortably within exhaustive
//! range, and the checker *finds them* the moment a guard bit is dropped.

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use adore_core::invariants::{self, Violation};
use adore_core::{telemetry, AdoreState, Configuration, NodeId, ReconfigGuard};
use adore_obs::Metrics;
use adore_schemes::ReconfigSpace;

use crate::op::CheckerOp;
use crate::profile::ExploreProfile;

/// Which invariants to evaluate at each visited state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantSuite {
    /// Replicated state safety only (Def. 4.1) — the headline theorem.
    SafetyOnly,
    /// The full suite of `adore_core::invariants::check_all` (safety plus
    /// the supporting lemmas B.1–B.8 and structural invariants).
    Full,
}

impl InvariantSuite {
    fn check<C: Configuration, M: Clone>(self, st: &AdoreState<C, M>) -> Option<Violation> {
        match self {
            InvariantSuite::SafetyOnly => invariants::check_safety(st).err(),
            InvariantSuite::Full => invariants::check_all(st).into_iter().next(),
        }
    }

    /// [`InvariantSuite::check`] with per-lemma evaluation counters — the
    /// profiler's "hottest invariants" source. Counts every lemma the
    /// suite evaluates, whether or not it fires.
    fn check_counted<C: Configuration, M: Clone>(
        self,
        st: &AdoreState<C, M>,
        metrics: &mut Metrics,
    ) -> Option<Violation> {
        match self {
            InvariantSuite::SafetyOnly => {
                metrics.inc("invariant.safety");
                invariants::check_safety(st).err()
            }
            InvariantSuite::Full => {
                let mut first = None;
                for (name, res) in invariants::check_all_named(st) {
                    metrics.inc(&format!("invariant.{name}"));
                    if first.is_none() {
                        first = res.err();
                    }
                }
                first
            }
        }
    }
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreParams {
    /// Maximum number of operations from the initial state.
    pub max_depth: usize,
    /// Hard cap on visited states (exploration stops cleanly at the cap).
    pub max_states: usize,
    /// The reconfiguration guard in force.
    pub guard: ReconfigGuard,
    /// Whether `reconfig` transitions are explored at all (`false` yields
    /// the CADO system).
    pub with_reconfig: bool,
    /// Extra node ids beyond the initial members (candidates for addition).
    pub spare_nodes: u32,
    /// Invariants evaluated per state.
    pub suite: InvariantSuite,
    /// Whether to collect an [`ExploreProfile`] (per-lemma evaluation
    /// counters, per-kind transition counters, quorum-check counts,
    /// states/sec). Off by default: profiling costs one counter bump per
    /// evaluation and transition.
    pub profile: bool,
}

impl Default for ExploreParams {
    fn default() -> Self {
        ExploreParams {
            max_depth: 6,
            max_states: 200_000,
            guard: ReconfigGuard::all(),
            with_reconfig: true,
            spare_nodes: 1,
            suite: InvariantSuite::SafetyOnly,
            profile: false,
        }
    }
}

/// Outcome of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport<C, M> {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (including ones leading to known states).
    pub transitions: u64,
    /// Deepest level completely explored.
    pub depth_reached: usize,
    /// Whether the state cap cut the exploration short.
    pub truncated: bool,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// The first violation found, with its shortest trace.
    pub violation: Option<(Violation, Vec<CheckerOp<C, M>>)>,
    /// The run's profile, when [`ExploreParams::profile`] was set.
    pub profile: Option<ExploreProfile>,
}

impl<C, M> ExploreReport<C, M> {
    /// Whether every visited state satisfied the invariant suite.
    #[must_use]
    pub fn is_safe(&self) -> bool {
        self.violation.is_none()
    }
}

/// The canonical method symbol used for `invoke` transitions.
///
/// Methods are opaque identifiers with no bearing on safety (§3), so
/// exploring a single symbol covers every behavior up to method renaming —
/// an exponential reduction with no loss for the properties checked.
pub const CANONICAL_METHOD: &str = "m";

/// All valid transitions out of `st`.
#[must_use]
pub fn successors<C>(
    st: &AdoreState<C, &'static str>,
    params: &ExploreParams,
    universe: &adore_core::NodeSet,
) -> Vec<CheckerOp<C, &'static str>>
where
    C: Configuration + ReconfigSpace,
{
    let mut ops = Vec::new();
    for &caller in universe {
        for decision in adore_core::enumerate::pull_decisions(st, caller) {
            ops.push(CheckerOp::Pull { caller, decision });
        }
        for decision in adore_core::enumerate::push_decisions(st, caller) {
            ops.push(CheckerOp::Push { caller, decision });
        }
        // Invoke/reconfig are only enabled for current leaders; apply()
        // filters, but pre-filtering here keeps the branching factor low.
        if let Some(active) = st.active_cache(caller) {
            if st.is_leader(caller, st.cache(active).time()) {
                ops.push(CheckerOp::Invoke {
                    caller,
                    method: CANONICAL_METHOD,
                });
                if params.with_reconfig {
                    let current = st.cache(active).config().clone();
                    for cand in current.candidates(universe) {
                        ops.push(CheckerOp::Reconfig {
                            caller,
                            new_config: cand,
                        });
                    }
                }
            }
        }
    }
    ops
}

/// Exhaustively explores the system from `conf0`, checking invariants at
/// every state.
///
/// # Examples
///
/// ```
/// use adore_checker::{explore, ExploreParams, InvariantSuite};
/// use adore_core::ReconfigGuard;
/// use adore_schemes::SingleNode;
///
/// let params = ExploreParams {
///     max_depth: 3,
///     with_reconfig: false,
///     ..ExploreParams::default()
/// };
/// let report = explore(&SingleNode::new([1, 2]), &params);
/// assert!(report.is_safe());
/// assert!(report.states > 1);
/// ```
#[must_use]
pub fn explore<C>(conf0: &C, params: &ExploreParams) -> ExploreReport<C, &'static str>
where
    C: Configuration + ReconfigSpace,
{
    // adore-lint: allow(L1, reason = "wall-clock timing reported in ExploreReport::elapsed only; never affects exploration order or results")
    let start = Instant::now();
    let initial: AdoreState<C, &'static str> = AdoreState::new(conf0.clone());
    let mut universe = conf0.members();
    let max = universe.iter().map(|n| n.0).max().unwrap_or(0);
    for extra in 1..=params.spare_nodes {
        universe.insert(NodeId(max + extra));
    }

    // Visited states -> index into `trace_info` for counterexample
    // reconstruction. Ordered map so exploration is deterministic (L1);
    // it is only probed, never iterated, so the swap from hashing cannot
    // change which states are visited.
    let mut visited: BTreeMap<AdoreState<C, &'static str>, usize> = BTreeMap::new();
    // (parent index, op leading here); the initial state has no parent.
    let mut trace_info: Vec<Option<(usize, CheckerOp<C, &'static str>)>> = vec![None];
    let mut queue: VecDeque<(AdoreState<C, &'static str>, usize, usize)> = VecDeque::new();

    let mut report = ExploreReport {
        states: 1,
        transitions: 0,
        depth_reached: 0,
        truncated: false,
        elapsed: Duration::ZERO,
        violation: None,
        profile: None,
    };

    // The profiler's quorum counter is process-global (the telemetry
    // module in adore-core), so record the delta over this run only.
    let mut metrics = if params.profile {
        Some(Metrics::new())
    } else {
        None
    };
    let quorum_base = telemetry::quorum_checks();
    let check = |st: &AdoreState<C, &'static str>, metrics: &mut Option<Metrics>| match metrics {
        Some(m) => params.suite.check_counted(st, m),
        None => params.suite.check(st),
    };

    if let Some(v) = check(&initial, &mut metrics) {
        report.violation = Some((v, Vec::new()));
        report.elapsed = start.elapsed();
        if let Some(mut m) = metrics {
            m.add("quorum.checks", telemetry::quorum_checks() - quorum_base);
            report.profile = Some(ExploreProfile::new(&m, report.states, report.elapsed));
        }
        return report;
    }
    visited.insert(initial.clone(), 0);
    queue.push_back((initial, 0, 0));

    'bfs: while let Some((st, depth, index)) = queue.pop_front() {
        report.depth_reached = report.depth_reached.max(depth);
        if depth == params.max_depth {
            continue;
        }
        for op in successors(&st, params, &universe) {
            let mut next = st.clone();
            if !op.apply(&mut next, params.guard) {
                continue;
            }
            report.transitions += 1;
            if let Some(m) = metrics.as_mut() {
                m.inc(&format!("transition.{}", op.kind_name()));
            }
            if visited.contains_key(&next) {
                continue;
            }
            let next_index = trace_info.len();
            trace_info.push(Some((index, op.clone())));
            if let Some(v) = check(&next, &mut metrics) {
                // Reconstruct the shortest trace to the violation.
                let mut ops = Vec::new();
                let mut cur = next_index;
                while let Some((parent, op)) = &trace_info[cur] {
                    ops.push(op.clone());
                    cur = *parent;
                }
                ops.reverse();
                report.violation = Some((v, ops));
                break 'bfs;
            }
            visited.insert(next.clone(), next_index);
            report.states += 1;
            if report.states >= params.max_states {
                report.truncated = true;
                break 'bfs;
            }
            queue.push_back((next, depth + 1, next_index));
        }
    }

    report.elapsed = start.elapsed();
    if let Some(mut m) = metrics {
        m.add("quorum.checks", telemetry::quorum_checks() - quorum_base);
        report.profile = Some(ExploreProfile::new(&m, report.states, report.elapsed));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use adore_schemes::SingleNode;

    #[test]
    fn cado_two_nodes_is_safe_and_finite_per_depth() {
        let params = ExploreParams {
            max_depth: 4,
            with_reconfig: false,
            spare_nodes: 0,
            suite: InvariantSuite::Full,
            ..ExploreParams::default()
        };
        let report = explore(&SingleNode::new([1, 2]), &params);
        assert!(report.is_safe(), "{:?}", report.violation);
        assert!(!report.truncated);
        assert!(report.states > 10);
    }

    #[test]
    fn sound_guard_three_nodes_with_reconfig_is_safe() {
        let params = ExploreParams {
            max_depth: 4,
            spare_nodes: 1,
            suite: InvariantSuite::Full,
            ..ExploreParams::default()
        };
        let report = explore(&SingleNode::new([1, 2, 3]), &params);
        assert!(report.is_safe(), "{:?}", report.violation);
    }

    #[test]
    fn reconfig_increases_the_state_space() {
        let base = ExploreParams {
            max_depth: 4,
            spare_nodes: 1,
            ..ExploreParams::default()
        };
        let cado = explore(
            &SingleNode::new([1, 2]),
            &ExploreParams {
                with_reconfig: false,
                ..base.clone()
            },
        );
        let adore = explore(&SingleNode::new([1, 2]), &base);
        assert!(adore.states > cado.states);
    }

    #[test]
    fn profiling_reports_hottest_invariants_and_transitions() {
        let params = ExploreParams {
            max_depth: 4,
            spare_nodes: 1,
            suite: InvariantSuite::Full,
            profile: true,
            ..ExploreParams::default()
        };
        let report = explore(&SingleNode::new([1, 2, 3]), &params);
        let profile = report.profile.expect("profile requested");
        // Every lemma of the full suite was evaluated at every state.
        let hot = profile.hottest_invariants();
        assert_eq!(hot.len(), adore_core::invariants::LEMMA_NAMES.len());
        assert!(hot.iter().all(|(_, n)| *n as usize == report.states));
        // The transition mix covers the whole alphabet, pulls hottest
        // (every node can always campaign).
        let kinds = profile.hottest_transitions();
        assert_eq!(kinds.first().map(|(k, _)| *k), Some("pull"));
        let total: u64 = kinds.iter().map(|(_, n)| n).sum();
        assert_eq!(total, report.transitions);
        assert!(profile.quorum_checks() > 0);
        // Unprofiled runs carry no registry.
        let plain = explore(
            &SingleNode::new([1, 2, 3]),
            &ExploreParams {
                profile: false,
                ..params
            },
        );
        assert!(plain.profile.is_none());
        assert_eq!(plain.states, report.states);
    }

    #[test]
    fn exploration_respects_the_state_cap() {
        let params = ExploreParams {
            max_depth: 10,
            max_states: 500,
            ..ExploreParams::default()
        };
        let report = explore(&SingleNode::new([1, 2, 3]), &params);
        assert!(report.truncated);
        assert!(report.states <= 500);
    }
}
