//! The online auditor: live T1–T7 certification over streaming
//! journals.
//!
//! The batch auditor ([`crate::audit_events`]) certifies a run from a
//! merged journal on disk, after the fact. This module runs the *same*
//! audit engine ([`crate::AuditEngine`] — one state machine, two
//! drivers) against event streams as they arrive from a live cluster:
//!
//! - [`StreamMerger`] deterministically merges per-node streams on
//!   virtual-clock order under a watermark: an event is released only
//!   once every open stream has advanced past its stamp, so the merged
//!   order is independent of network interleaving. For clock-monotone
//!   streams the fully drained merge is exactly
//!   [`crate::merge_journals`]'s order (stable sort by stamp, stream
//!   index breaking ties), which is what makes online ≡ batch provable
//!   rather than aspirational.
//! - [`OnlineAuditor`] ingests the merged stream one event at a time
//!   and answers with a [`Verdict`] after every event. Because the
//!   engine evaluates T1–T5 on arrival, a divergence verdict is raised
//!   on the exact merged event that completes its evidence — the
//!   detection lag is bounded by the watermark buffer (events still
//!   in flight from slower streams), never by journal length.
//!
//! Export loss is part of the model, not an exception: a
//! [`EventKind::TraceDropped`] marker in a stream is counted into
//! [`OnlineAuditor::dropped`], so a consumer can always distinguish "no
//! divergence in everything exported" from "no divergence, and nothing
//! was left unexported".

use std::collections::VecDeque;

use crate::audit::{AuditEngine, AuditReport, Divergence};
use crate::event::{EventKind, TraceEvent};

/// The online auditor's answer after ingesting one event.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use]
pub enum Verdict {
    /// Every invariant evaluated so far holds.
    Clean,
    /// A structural invariant (T1/T2/T4/T5/T7) failed; the first error
    /// is carried verbatim.
    Flagged {
        /// The first structural error, as the engine recorded it.
        error: String,
    },
    /// Committed-prefix agreement (T3) failed — the certified-safety
    /// claim itself. Subsumes `Flagged` when both hold.
    Diverged(Divergence),
}

impl Verdict {
    /// Whether the stream is still fully certified.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        matches!(self, Verdict::Clean)
    }
}

/// Streaming T1–T7 auditor over a merged event stream.
///
/// Feed merged events (from a [`StreamMerger`] or any single journal)
/// through [`OnlineAuditor::ingest`]; every call answers with the
/// current [`Verdict`]. [`OnlineAuditor::finish`] closes the audit with
/// the same [`AuditReport`] the batch auditor would produce over the
/// identical event sequence.
#[derive(Debug, Default)]
pub struct OnlineAuditor {
    engine: AuditEngine,
    dropped: u64,
    flagged_at: Option<u64>,
}

impl OnlineAuditor {
    /// A fresh auditor with nothing ingested.
    #[must_use]
    pub fn new() -> Self {
        OnlineAuditor::default()
    }

    /// Ingest the next merged event and report the stream's verdict.
    pub fn ingest(&mut self, ev: &TraceEvent) -> Verdict {
        if let EventKind::TraceDropped { count, .. } = &ev.kind {
            self.dropped += count;
        }
        self.engine.ingest(ev);
        let v = self.verdict();
        if self.flagged_at.is_none() && !v.is_clean() {
            self.flagged_at = Some(self.engine.events_ingested() - 1);
        }
        v
    }

    /// The verdict over everything ingested so far.
    pub fn verdict(&self) -> Verdict {
        if let Some(d) = self.engine.divergence() {
            Verdict::Diverged(d)
        } else if let Some(e) = self.engine.first_error() {
            Verdict::Flagged { error: e.to_string() }
        } else {
            Verdict::Clean
        }
    }

    /// Total events the exporters shed, summed from
    /// [`EventKind::TraceDropped`] markers. Zero means the audited
    /// stream is complete — nothing was silently unexported.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Merged position of the first event whose ingestion left the
    /// verdict non-clean, if any.
    #[must_use]
    pub fn flagged_at(&self) -> Option<u64> {
        self.flagged_at
    }

    /// Events ingested so far.
    #[must_use]
    pub fn events_ingested(&self) -> u64 {
        self.engine.events_ingested()
    }

    /// Close the audit and produce the full report (T7 sweep + T6
    /// consistency), exactly as the batch auditor would.
    pub fn finish(self) -> AuditReport {
        self.engine.finish()
    }
}

/// One input stream of the merger.
#[derive(Debug, Default)]
struct StreamBuf {
    /// Events not yet released, with their effective stamps.
    buf: VecDeque<(u64, TraceEvent)>,
    /// Running max of stamps seen — the stream's watermark
    /// contribution. Also the lower bound on every future effective
    /// stamp, which is what makes early release safe.
    vtime: u64,
    /// An open stream holds the watermark down; a closed one releases
    /// it.
    open: bool,
}

/// Deterministic watermark merge of per-node event streams.
///
/// Push events per stream as they arrive off the wire; [`poll`]
/// releases, in a deterministic total order, every event whose
/// effective stamp every other open stream has already advanced past.
/// The order is `(stamp, stream index, per-stream arrival order)` —
/// for streams whose stamps are monotone (every journal's are, per
/// T1), a full drain reproduces exactly [`crate::merge_journals`]'s
/// order over the same lines. Released events are renumbered densely
/// from 0 with parents cleared, again mirroring `merge_journals`, so
/// the output is a well-formed T1 journal for the auditor.
///
/// Non-monotone stamps (a buggy exporter) are clamped up to the
/// stream's running max rather than rejected: determinism of the merge
/// must not depend on the streams being well formed. A silent stream
/// stalls the watermark by design — that is the price of determinism —
/// so bounded runs end with [`close`] / [`drain`], which release
/// everything.
///
/// [`poll`]: StreamMerger::poll
/// [`close`]: StreamMerger::close
/// [`drain`]: StreamMerger::drain
#[derive(Debug)]
pub struct StreamMerger {
    streams: Vec<StreamBuf>,
    /// Next output sequence number (dense from 0).
    next_seq: u64,
}

impl StreamMerger {
    /// A merger over `streams` open input streams.
    #[must_use]
    pub fn new(streams: usize) -> Self {
        StreamMerger {
            streams: (0..streams)
                .map(|_| StreamBuf {
                    buf: VecDeque::new(),
                    vtime: 0,
                    open: true,
                })
                .collect(),
            next_seq: 0,
        }
    }

    /// Buffer the next event of stream `idx`. Out-of-range streams are
    /// ignored (a consumer bug must not poison the merge).
    pub fn push(&mut self, idx: usize, ev: TraceEvent) {
        let Some(s) = self.streams.get_mut(idx) else {
            return;
        };
        let stamp = ev.at_us.max(s.vtime);
        s.vtime = stamp;
        s.buf.push_back((stamp, ev));
    }

    /// Mark stream `idx` finished: it no longer holds the watermark
    /// down, and its buffered tail becomes releasable.
    pub fn close(&mut self, idx: usize) {
        if let Some(s) = self.streams.get_mut(idx) {
            s.open = false;
        }
    }

    /// The current watermark: the least virtual time some open stream
    /// might still emit below, or `None` once every stream is closed
    /// (everything is releasable).
    #[must_use]
    pub fn watermark(&self) -> Option<u64> {
        self.streams
            .iter()
            .filter(|s| s.open)
            .map(|s| s.vtime)
            .min()
    }

    /// Release every event strictly below the watermark, in the
    /// deterministic merged order, renumbered densely.
    pub fn poll(&mut self) -> Vec<TraceEvent> {
        let bound = self.watermark();
        self.release(bound)
    }

    /// Close every stream and release everything still buffered.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        for s in &mut self.streams {
            s.open = false;
        }
        self.release(None)
    }

    /// Events buffered awaiting the watermark.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.streams.iter().map(|s| s.buf.len()).sum()
    }

    fn release(&mut self, below: Option<u64>) -> Vec<TraceEvent> {
        // (stamp, stream index, arrival order) — arrival order within a
        // stream is its buffer order, so popping front-first and
        // sorting stably by (stamp, stream) preserves it.
        let mut ready: Vec<(u64, usize, TraceEvent)> = Vec::new();
        for (idx, s) in self.streams.iter_mut().enumerate() {
            while let Some((stamp, _)) = s.buf.front() {
                let releasable = match below {
                    Some(w) => *stamp < w,
                    None => true,
                };
                if !releasable {
                    break;
                }
                let (stamp, ev) = s.buf.pop_front().expect("front checked");
                ready.push((stamp, idx, ev));
            }
        }
        ready.sort_by_key(|(stamp, idx, _)| (*stamp, *idx));
        ready
            .into_iter()
            .map(|(stamp, _, mut ev)| {
                ev.seq = self.next_seq;
                self.next_seq += 1;
                ev.at_us = stamp;
                ev.parent = None;
                ev
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit_events;

    fn ev(at_us: u64, nid: u32) -> TraceEvent {
        TraceEvent::root(at_us, EventKind::WalSync { nid })
    }

    #[test]
    fn watermark_holds_events_until_every_stream_passes_them() {
        let mut m = StreamMerger::new(2);
        m.push(0, ev(10, 1));
        m.push(0, ev(20, 1));
        assert!(m.poll().is_empty(), "stream 1 has not spoken yet");
        m.push(1, ev(15, 2));
        let out = m.poll();
        // Watermark is min(20, 15) = 15: only the event at 10 clears.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].at_us, 10);
        let rest = m.drain();
        assert_eq!(
            rest.iter().map(|e| e.at_us).collect::<Vec<_>>(),
            vec![15, 20]
        );
    }

    #[test]
    fn released_order_is_stamp_then_stream_then_arrival() {
        let mut m = StreamMerger::new(2);
        m.push(1, ev(5, 2));
        m.push(1, ev(5, 2));
        m.push(0, ev(5, 1));
        let out = m.drain();
        let nids: Vec<u32> = out
            .iter()
            .map(|e| match e.kind {
                EventKind::WalSync { nid } => nid,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nids, vec![1, 2, 2], "stream index breaks stamp ties");
        assert_eq!(
            out.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "released events are renumbered densely"
        );
    }

    #[test]
    fn closing_a_stream_releases_the_watermark() {
        let mut m = StreamMerger::new(2);
        m.push(0, ev(10, 1));
        assert!(m.poll().is_empty());
        m.close(1);
        m.close(0);
        assert_eq!(m.poll().len(), 1, "no open stream holds it back");
    }

    #[test]
    fn non_monotone_stamps_are_clamped_not_reordered() {
        let mut m = StreamMerger::new(1);
        m.push(0, ev(100, 1));
        m.push(0, ev(40, 1)); // buggy exporter: clock ran backwards
        let out = m.drain();
        assert_eq!(
            out.iter().map(|e| e.at_us).collect::<Vec<_>>(),
            vec![100, 100],
            "clamped up to the stream's running max, order preserved"
        );
    }

    #[test]
    fn online_auditor_flags_divergence_on_the_completing_event() {
        let mut a = OnlineAuditor::new();
        let mk = |seq: u64, nid: u32, entry: &str| TraceEvent {
            seq,
            at_us: seq * 10,
            parent: None,
            kind: EventKind::StateDelta {
                nid,
                term: None,
                truncate: None,
                append: vec![entry.to_string()],
                commit_len: Some(1),
            },
        };
        assert!(a.ingest(&mk(0, 1, "x")).is_clean());
        let v = a.ingest(&mk(1, 2, "y"));
        let Verdict::Diverged(d) = v else {
            panic!("expected divergence, got {v:?}");
        };
        assert_eq!((d.a, d.b, d.seq), (1, 2, 1));
        assert_eq!(a.flagged_at(), Some(1), "raised on the completing event");
    }

    #[test]
    fn trace_dropped_markers_are_accounted_not_silent() {
        let mut a = OnlineAuditor::new();
        let mut e = TraceEvent::root(5, EventKind::TraceDropped { nid: 1, count: 3 });
        e.seq = 0;
        let _ = a.ingest(&e);
        assert_eq!(a.dropped(), 3);
    }

    /// The keystone: driving the engine event-by-event (online) and
    /// over the whole slice (batch) is the same computation.
    #[test]
    fn online_finish_equals_batch_report() {
        let entry =
            r#"{"time":1,"cmd":{"Method":{"client":7,"seq":3,"op":{"Put":{"key":"k","value":"v"}}}}}"#;
        let events = vec![
            TraceEvent {
                seq: 0,
                at_us: 0,
                parent: None,
                kind: EventKind::StateDelta {
                    nid: 1,
                    term: Some(1),
                    truncate: None,
                    append: vec![entry.to_string()],
                    commit_len: Some(1),
                },
            },
            TraceEvent {
                seq: 1,
                at_us: 10,
                parent: None,
                kind: EventKind::SessionAck {
                    client: 7,
                    seq: 3,
                    dup: false,
                },
            },
            TraceEvent {
                seq: 2,
                at_us: 20,
                parent: None,
                kind: EventKind::Verdict {
                    safe: true,
                    kind: None,
                    detail: None,
                    phase: 0,
                },
            },
        ];
        let batch = audit_events(&events);
        let mut online = OnlineAuditor::new();
        for e in &events {
            let _ = online.ingest(e);
        }
        let live = online.finish();
        assert_eq!(live.consistent, batch.consistent);
        assert_eq!(live.events, batch.events);
        assert_eq!(live.errors, batch.errors);
        assert_eq!(live.divergence, batch.divergence);
        assert_eq!(live.acked, batch.acked);
        assert_eq!(live.checks, batch.checks);
    }
}
