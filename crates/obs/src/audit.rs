//! The trace auditor: re-certifies a run from its journal alone.
//!
//! The live run's verdict ("safe" / "violation") is computed by code
//! holding the actual protocol state. The auditor trusts none of that:
//! it reconstructs every replica's `(term, log, commit_len)` purely
//! from the trace's [`EventKind::StateDelta`] and
//! [`EventKind::WalRecover`] events and re-evaluates committed-prefix
//! agreement (the paper's Def. 4.1, network form) over the
//! reconstruction. A trace is *certified* when the journal is
//! structurally sound (dense, causal, monotone) **and** the audit's
//! independent verdict matches the live run's recorded one — including
//! reproducing a violation verdict on an unsafe run.
//!
//! Trace invariants checked:
//!
//! - **T1 completeness/order** — sequence numbers dense from 0, the
//!   virtual clock never runs backwards.
//! - **T2 causality** — every receive links to an earlier send of the
//!   same message to the same recipient.
//! - **T3 committed-prefix agreement** — after every reconstructed
//!   state change, all pairs of replicas agree slot-by-slot on their
//!   common committed prefix (and no watermark dangles past its log).
//! - **T4 commit monotonicity** — a replica's watermark never regresses
//!   except through crash recovery.
//! - **T5 recovery faithfulness** — a clean-crash (`lose-tail`)
//!   recovery installs exactly the durable state the trace last synced;
//!   a wiped disk recovers to nothing.
//! - **T6 verdict consistency** — the audit's divergence verdict agrees
//!   with the live run's recorded [`EventKind::Verdict`].
//! - **T7 session exactly-once** — every acknowledged `(client, seq)`
//!   session pair ([`EventKind::SessionAck`]) appears in some replica's
//!   final committed prefix (zero acked-write loss), and no replica's
//!   committed prefix applies the same pair twice (zero duplicate
//!   applies). Session pairs are extracted generically from the
//!   canonical-JSON committed entries, so the auditor needs no protocol
//!   types.

use crate::event::{EventKind, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};

/// How many structural errors the auditor collects before truncating
/// (a mangled journal would otherwise report every line).
const MAX_ERRORS: usize = 20;

/// A committed-prefix disagreement found by the audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// First replica of the disagreeing pair (== `b` for a dangling
    /// watermark).
    pub a: u32,
    /// Second replica of the disagreeing pair.
    pub b: u32,
    /// Sequence number of the event after which the disagreement first
    /// held.
    pub seq: u64,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.a == self.b {
            write!(
                f,
                "S{} commit watermark dangles past its log (event {})",
                self.a, self.seq
            )
        } else {
            write!(
                f,
                "S{} and S{} disagree on a committed slot (event {})",
                self.a, self.b, self.seq
            )
        }
    }
}

/// The auditor's findings over one trace journal.
#[derive(Debug, Clone)]
#[must_use]
pub struct AuditReport {
    /// Events audited.
    pub events: usize,
    /// Distinct replicas reconstructed.
    pub nodes: usize,
    /// Evaluation counts per trace invariant, in invariant order.
    pub checks: Vec<(String, u64)>,
    /// Structural failures (T1/T2/T4/T5), truncated at [`MAX_ERRORS`].
    pub errors: Vec<String>,
    /// The live run's final verdict, if the trace recorded one.
    pub live_safe: Option<bool>,
    /// The live violation's machine tag, when unsafe.
    pub live_kind: Option<String>,
    /// The audit's own committed-prefix verdict.
    pub divergence: Option<Divergence>,
    /// Distinct `(client, seq)` session pairs the trace acknowledged.
    pub acked: usize,
    /// Wire frames the trace recorded as rejected
    /// ([`EventKind::BadFrame`]): checksum, length-cap, or payload
    /// failures. A fault campaign that injects corruption asserts this
    /// is nonzero to prove the rejection path actually ran.
    pub bad_frames: u64,
    /// Whether the audit certifies the trace (see [`audit_events`]).
    pub consistent: bool,
}

impl AuditReport {
    /// One-line human summary of the audit outcome.
    #[must_use]
    pub fn summary(&self) -> String {
        let live = match self.live_safe {
            Some(true) => "safe".to_string(),
            Some(false) => format!(
                "violation ({})",
                self.live_kind.as_deref().unwrap_or("unknown")
            ),
            None => "unrecorded".to_string(),
        };
        let audit = match &self.divergence {
            Some(d) => format!("divergence: {d}"),
            None => "no divergence".to_string(),
        };
        let wire = if self.bad_frames > 0 || self.acked > 0 {
            format!(
                " | {} acked sessions, {} rejected frames",
                self.acked, self.bad_frames
            )
        } else {
            String::new()
        };
        format!(
            "{} events, {} nodes | live verdict: {live} | audit: {audit} | {} structural errors{wire} | {}",
            self.events,
            self.nodes,
            self.errors.len(),
            if self.consistent { "CERTIFIED" } else { "NOT CONSISTENT" },
        )
    }
}

/// One reconstructed replica.
#[derive(Debug, Clone, Default)]
struct Node {
    term: u64,
    log: Vec<String>,
    commit_len: usize,
    /// State as of the last `WalSync` (what a clean crash preserves).
    synced_term: u64,
    synced_log: Vec<String>,
    synced_commit: usize,
    /// Disk fault of the most recent crash, if any.
    last_disk: Option<String>,
}

/// The incremental T1–T7 audit engine.
///
/// One event at a time via [`AuditEngine::ingest`], then
/// [`AuditEngine::finish`] for the final report. The batch entry point
/// [`audit_events`] is a thin driver over this same engine, so the
/// batch and online auditors *cannot* disagree on any event sequence:
/// they are one state machine with two drivers.
///
/// Per-event work is bounded by the reconstruction size (T3 compares
/// prefixes), never by journal length: the engine retains no event
/// history beyond a position-indexed map of sends for T2.
#[derive(Debug, Default)]
pub struct AuditEngine {
    nodes: BTreeMap<u32, Node>,
    checks: BTreeMap<&'static str, u64>,
    errors: Vec<String>,
    divergence: Option<Divergence>,
    live_safe: Option<bool>,
    live_kind: Option<String>,
    /// `(client, seq)` pairs the trace acknowledged to clients.
    acks: BTreeSet<(u64, u64)>,
    /// Rejected wire frames counted from [`EventKind::BadFrame`].
    bad_frames: u64,
    /// `(send.seq, msg, to)` of every `MsgSend`, keyed by journal
    /// position, for T2 parent lookups without the event history.
    sends: BTreeMap<u64, (u64, u32, u32)>,
    /// Events ingested so far (== the next event's expected position).
    pos: u64,
    /// Stamp of the previously ingested event (T1 clock monotonicity).
    last_at: u64,
}

impl AuditEngine {
    /// A fresh engine with nothing ingested.
    #[must_use]
    pub fn new() -> Self {
        AuditEngine::default()
    }

    /// Feed the next journal event through every streaming invariant.
    ///
    /// T1 (density, clock monotonicity), T2 (causality), T3 (committed-
    /// prefix agreement), T4 (commit monotonicity) and T5 (recovery
    /// faithfulness) are all evaluated here, on arrival; only T7's
    /// final sweep and the T6 consistency verdict wait for
    /// [`AuditEngine::finish`]. A divergence is therefore raised on the
    /// *exact* event that completes its evidence — the online auditor's
    /// bounded-window claim rests on this.
    pub fn ingest(&mut self, ev: &TraceEvent) {
        let i = self.pos;
        self.pos += 1;
        self.bump("T1.order");
        if ev.seq != i {
            self.error(format!(
                "event at position {i} has sequence {} (journal incomplete?)",
                ev.seq
            ));
        }
        if ev.at_us < self.last_at {
            self.error(format!(
                "event {}: virtual clock ran backwards ({} < {})",
                ev.seq, ev.at_us, self.last_at
            ));
        }
        self.last_at = ev.at_us;
        if let EventKind::MsgSend { msg, to, .. } = &ev.kind {
            self.sends.insert(i, (ev.seq, *msg, *to));
        }
        self.apply(ev);
    }

    /// Events ingested so far.
    #[must_use]
    pub fn events_ingested(&self) -> u64 {
        self.pos
    }

    /// The first committed-prefix disagreement found, if any.
    #[must_use]
    pub fn divergence(&self) -> Option<Divergence> {
        self.divergence
    }

    /// The first structural (T1/T2/T4/T5/T7) error found, if any.
    #[must_use]
    pub fn first_error(&self) -> Option<&str> {
        self.errors.first().map(String::as_str)
    }

    fn error(&mut self, msg: String) {
        if self.errors.len() < MAX_ERRORS {
            self.errors.push(msg);
        }
    }

    fn bump(&mut self, check: &'static str) {
        *self.checks.entry(check).or_insert(0) += 1;
    }

    /// T3: after `changed` moved, compare it against every other
    /// replica's committed prefix (and against its own log length).
    fn track_agreement(&mut self, changed: u32, seq: u64) {
        if self.divergence.is_some() {
            return; // first divergence is the verdict; keep it
        }
        self.bump("T3.prefix-agreement");
        let Some(n) = self.nodes.get(&changed) else {
            return;
        };
        if n.commit_len > n.log.len() {
            self.divergence = Some(Divergence {
                a: changed,
                b: changed,
                seq,
            });
            return;
        }
        for (&other, o) in &self.nodes {
            if other == changed {
                continue;
            }
            let common = n.commit_len.min(o.commit_len).min(o.log.len());
            if n.log[..common.min(n.log.len())] != o.log[..common] {
                let (a, b) = if changed < other {
                    (changed, other)
                } else {
                    (other, changed)
                };
                self.divergence = Some(Divergence { a, b, seq });
                return;
            }
        }
    }

    fn apply(&mut self, ev: &TraceEvent) {
        match &ev.kind {
            EventKind::MsgRecv { msg, to, .. } => {
                self.bump("T2.causality");
                let linked = ev
                    .parent
                    .and_then(|p| self.sends.get(&p))
                    .is_some_and(|&(send_seq, m, t)| {
                        send_seq < ev.seq && m == *msg && t == *to
                    });
                if !linked {
                    self.error(format!(
                        "event {}: receive of msg {msg} at S{to} has no matching send (parent {:?})",
                        ev.seq, ev.parent
                    ));
                }
            }
            EventKind::StateDelta {
                nid,
                term,
                truncate,
                append,
                commit_len,
            } => {
                let mut regressed = false;
                let node = self.nodes.entry(*nid).or_default();
                if let Some(t) = term {
                    node.term = *t;
                }
                if let Some(l) = truncate {
                    node.log.truncate(*l as usize);
                }
                node.log.extend(append.iter().cloned());
                if let Some(c) = commit_len {
                    let c = *c as usize;
                    regressed = c < node.commit_len;
                    node.commit_len = c;
                }
                if commit_len.is_some() {
                    self.bump("T4.commit-monotone");
                    if regressed {
                        self.error(format!(
                            "event {}: S{nid} commit watermark regressed outside recovery",
                            ev.seq
                        ));
                    }
                }
                self.track_agreement(*nid, ev.seq);
            }
            EventKind::WalSync { nid } => {
                let node = self.nodes.entry(*nid).or_default();
                node.synced_term = node.term;
                node.synced_log = node.log.clone();
                node.synced_commit = node.commit_len;
            }
            EventKind::Crash { nid, disk } => {
                let node = self.nodes.entry(*nid).or_default();
                node.last_disk = Some(disk.clone());
            }
            EventKind::WalRecover {
                nid,
                outcome,
                term,
                log,
                commit_len,
            } => {
                self.bump("T5.recovery-faithful");
                let seq = ev.seq;
                let mut fault: Option<String> = None;
                let node = self.nodes.entry(*nid).or_default();
                let disk = node.last_disk.clone();
                match outcome.as_str() {
                    "intact" => {
                        if disk.as_deref() == Some("lose-tail") {
                            let want_commit = node.synced_commit.min(node.synced_log.len());
                            let faithful = *term == node.synced_term
                                && *log == node.synced_log
                                && (*commit_len as usize == node.synced_commit
                                    || *commit_len as usize == want_commit);
                            if !faithful {
                                fault = Some(format!(
                                    "event {seq}: S{nid} clean-crash recovery does not match its last synced state"
                                ));
                            }
                        }
                        node.term = *term;
                        node.log = log.clone();
                        node.commit_len = *commit_len as usize;
                    }
                    "data-loss" => {
                        if !log.is_empty() || *commit_len != 0 {
                            fault = Some(format!(
                                "event {seq}: S{nid} data-loss recovery installed non-empty state"
                            ));
                        }
                        node.term = 0;
                        node.log.clear();
                        node.commit_len = 0;
                        node.synced_term = 0;
                        node.synced_log.clear();
                        node.synced_commit = 0;
                    }
                    "corrupt" => {} // fail-stop: nothing installed
                    other => {
                        fault = Some(format!(
                            "event {seq}: S{nid} unknown recovery outcome `{other}`"
                        ));
                    }
                }
                if let Some(msg) = fault {
                    self.error(msg);
                }
                self.track_agreement(*nid, ev.seq);
            }
            EventKind::Verdict { safe, kind, .. } => {
                self.bump("T6.verdict-consistency");
                self.live_safe = Some(*safe);
                if !safe {
                    self.live_kind = kind.clone();
                }
            }
            EventKind::SessionAck { client, seq, .. } => {
                self.acks.insert((*client, *seq));
            }
            EventKind::BadFrame { .. } => {
                self.bad_frames += 1;
            }
            _ => {}
        }
    }

    /// T7: exactly-once session certification over the final
    /// reconstruction. Every acknowledged `(client, seq)` must survive
    /// in some replica's committed prefix, and no replica may have
    /// applied a pair twice.
    fn certify_sessions(&mut self) {
        let mut applied: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut dupes: Vec<String> = Vec::new();
        let mut scanned = 0u64;
        for (&nid, node) in &self.nodes {
            let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
            let commit = node.commit_len.min(node.log.len());
            for raw in node.log.iter().take(commit) {
                let Some((client, seq)) = session_pair(raw) else {
                    continue;
                };
                scanned += 1;
                if !seen.insert((client, seq)) {
                    dupes.push(format!(
                        "S{nid}: session (client {client}, seq {seq}) applied twice in the committed prefix"
                    ));
                }
                applied.insert((client, seq));
            }
        }
        let checked = scanned + self.acks.len() as u64;
        if checked > 0 {
            *self.checks.entry("T7.session-exactly-once").or_insert(0) += checked;
        }
        for msg in dupes {
            self.error(msg);
        }
        let lost: Vec<(u64, u64)> = self
            .acks
            .iter()
            .filter(|pair| !applied.contains(pair))
            .copied()
            .collect();
        for (client, seq) in lost {
            self.error(format!(
                "acked write (client {client}, seq {seq}) is in no replica's committed prefix"
            ));
        }
    }

    /// Close out the audit: run T7's final sweep over the
    /// reconstruction, settle T6 verdict consistency, and produce the
    /// report. Certification semantics are documented on
    /// [`audit_events`], which is exactly this engine driven over a
    /// whole journal.
    pub fn finish(mut self) -> AuditReport {
        if self.pos == 0 {
            self.error("empty trace".to_string());
        }

        // T7: acked sessions must survive, committed prefixes must
        // apply each at most once — evaluated over the final
        // reconstruction.
        // adore-lint: allow(L4, reason = "returns unit; its verdicts accumulate into self.errors which T6 consumes below")
        self.certify_sessions();

        // T6: does the audit's independent verdict agree with the live
        // one?
        let consistent = match self.live_safe {
            Some(true) | None => self.divergence.is_none() && self.errors.is_empty(),
            Some(false) => {
                if self.live_kind.as_deref() == Some("LogDivergence") {
                    // The trace must exhibit the divergence on its own.
                    self.divergence.is_some()
                } else {
                    // Other violation kinds (lost writes, stale reads,
                    // durability breaches) are found by checkers whose
                    // evidence (client ghost state, WAL mirrors) is
                    // beyond the protocol-state reconstruction; the
                    // trace is consistent as long as it does not
                    // *contradict* the verdict.
                    true
                }
            }
        };

        AuditReport {
            events: self.pos as usize,
            nodes: self.nodes.len(),
            checks: self
                .checks
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            errors: self.errors,
            live_safe: self.live_safe,
            live_kind: self.live_kind,
            divergence: self.divergence,
            acked: self.acks.len(),
            bad_frames: self.bad_frames,
            consistent,
        }
    }
}

/// Extracts the exactly-once session pair from a committed entry's
/// canonical JSON, if the entry carries a client operation. Stays
/// protocol-agnostic: any nested object with integer `client` and `seq`
/// fields and a non-null `op` counts; config entries and no-op barrier
/// entries (`op: null`) do not.
fn session_pair(raw: &str) -> Option<(u64, u64)> {
    let v: serde_json::JsonValue = serde_json::from_str(raw).ok()?;
    find_session(&v)
}

/// Depth-first search for a session envelope inside a JSON value.
fn find_session(v: &serde_json::JsonValue) -> Option<(u64, u64)> {
    use serde_json::JsonValue as V;
    match v {
        V::Object(pairs) => {
            let field = |name: &str| pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            if let (Some(V::UInt(client)), Some(V::UInt(seq)), Some(op)) =
                (field("client"), field("seq"), field("op"))
            {
                if !matches!(op, V::Null) {
                    return Some((*client, *seq));
                }
            }
            pairs.iter().find_map(|(_, inner)| find_session(inner))
        }
        V::Array(items) => items.iter().find_map(find_session),
        _ => None,
    }
}

/// Audits a parsed trace journal.
///
/// Certification (`consistent == true`) means:
///
/// - the journal is non-empty, dense, clock-monotone, and causally
///   linked (T1/T2), with no T4/T5 structural errors, **when** the live
///   run recorded itself safe — an unsafe run is past the protocol's
///   guarantees, so only its divergence must be reproduced; and
/// - the audit's independent committed-prefix verdict matches the live
///   one: a live `LogDivergence` verdict is reproduced from the
///   reconstruction alone, and a live safe verdict is confirmed by
///   finding no divergence.
pub fn audit_events(events: &[TraceEvent]) -> AuditReport {
    let mut engine = AuditEngine::new();
    for ev in events {
        engine.ingest(ev);
    }
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, at_us: u64, parent: Option<u64>, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            at_us,
            parent,
            kind,
        }
    }

    fn delta(
        seq: u64,
        nid: u32,
        append: &[&str],
        commit_len: Option<u64>,
    ) -> TraceEvent {
        ev(
            seq,
            seq * 10,
            None,
            EventKind::StateDelta {
                nid,
                term: None,
                truncate: None,
                append: append.iter().map(|s| (*s).to_string()).collect(),
                commit_len,
            },
        )
    }

    fn verdict(seq: u64, safe: bool, kind: Option<&str>) -> TraceEvent {
        ev(
            seq,
            seq * 10,
            None,
            EventKind::Verdict {
                safe,
                kind: kind.map(str::to_string),
                detail: None,
                phase: 0,
            },
        )
    }

    #[test]
    fn clean_agreeing_trace_certifies() {
        let events = vec![
            delta(0, 1, &["x"], Some(1)),
            delta(1, 2, &["x"], Some(1)),
            verdict(2, true, None),
        ];
        let report = audit_events(&events);
        assert!(report.consistent, "{:?}", report.errors);
        assert_eq!(report.divergence, None);
        assert_eq!(report.nodes, 2);
    }

    #[test]
    fn committed_prefix_disagreement_is_found_and_matches_live_verdict() {
        let events = vec![
            delta(0, 1, &["x"], Some(1)),
            delta(1, 2, &["y"], Some(1)),
            verdict(2, false, Some("LogDivergence")),
        ];
        let report = audit_events(&events);
        let d = report.divergence.expect("audit finds the divergence");
        assert_eq!((d.a, d.b, d.seq), (1, 2, 1));
        assert!(report.consistent, "divergence verdict reproduced");
    }

    #[test]
    fn divergent_trace_claiming_safe_is_inconsistent() {
        let events = vec![
            delta(0, 1, &["x"], Some(1)),
            delta(1, 2, &["y"], Some(1)),
            verdict(2, true, None),
        ];
        assert!(!audit_events(&events).consistent);
    }

    #[test]
    fn live_divergence_verdict_without_trace_evidence_is_inconsistent() {
        let events = vec![
            delta(0, 1, &["x"], Some(1)),
            verdict(1, false, Some("LogDivergence")),
        ];
        assert!(!audit_events(&events).consistent);
    }

    #[test]
    fn dangling_watermark_is_a_self_divergence() {
        let events = vec![
            delta(0, 1, &["x"], Some(5)),
            verdict(1, false, Some("LogDivergence")),
        ];
        let report = audit_events(&events);
        let d = report.divergence.unwrap();
        assert_eq!((d.a, d.b), (1, 1));
        assert!(report.consistent);
    }

    #[test]
    fn sequence_gap_and_clock_regression_are_structural_errors() {
        let mut events = vec![delta(0, 1, &["x"], Some(1)), delta(2, 1, &[], Some(1))];
        events[1].at_us = 3; // before event 0's stamp of 0*10=0? make regression explicit
        events[0].at_us = 100;
        let report = audit_events(&events);
        assert!(!report.consistent);
        assert_eq!(report.errors.len(), 2, "{:?}", report.errors);
    }

    #[test]
    fn receive_without_matching_send_is_a_causality_error() {
        let events = vec![
            ev(
                0,
                0,
                None,
                EventKind::MsgSend {
                    msg: 7,
                    from: 1,
                    to: 2,
                    kind: "commit".into(),
                    dup: false,
                },
            ),
            ev(
                1,
                5,
                Some(0),
                EventKind::MsgRecv {
                    msg: 7,
                    to: 3, // wrong recipient: send was addressed to 2
                    applied: true,
                },
            ),
        ];
        let report = audit_events(&events);
        assert!(!report.consistent);
        assert!(report.errors[0].contains("no matching send"));
    }

    #[test]
    fn clean_crash_recovery_must_restore_the_synced_state() {
        let mut events = vec![
            delta(0, 1, &["x"], Some(1)),
            ev(1, 20, None, EventKind::WalSync { nid: 1 }),
            ev(
                2,
                30,
                None,
                EventKind::Crash {
                    nid: 1,
                    disk: "lose-tail".into(),
                },
            ),
            ev(
                3,
                40,
                None,
                EventKind::WalRecover {
                    nid: 1,
                    outcome: "intact".into(),
                    term: 0,
                    log: vec!["x".into()],
                    commit_len: 1,
                },
            ),
        ];
        assert!(audit_events(&events).consistent);
        // Tamper: claim a different recovered log.
        if let EventKind::WalRecover { log, .. } = &mut events[3].kind {
            *log = vec!["forged".into()];
        }
        let report = audit_events(&events);
        assert!(!report.consistent);
        assert!(report.errors[0].contains("does not match its last synced state"));
    }

    #[test]
    fn wiped_disk_must_recover_to_nothing() {
        let events = vec![
            delta(0, 1, &["x"], Some(1)),
            ev(1, 10, None, EventKind::WalSync { nid: 1 }),
            ev(
                2,
                20,
                None,
                EventKind::Crash {
                    nid: 1,
                    disk: "wipe-all".into(),
                },
            ),
            ev(
                3,
                30,
                None,
                EventKind::WalRecover {
                    nid: 1,
                    outcome: "data-loss".into(),
                    term: 0,
                    log: vec!["x".into()],
                    commit_len: 0,
                },
            ),
        ];
        let report = audit_events(&events);
        assert!(!report.consistent);
        assert!(report.errors[0].contains("non-empty state"));
    }

    #[test]
    fn empty_trace_does_not_certify() {
        assert!(!audit_events(&[]).consistent);
    }

    #[test]
    fn non_divergence_violations_do_not_require_trace_evidence() {
        let events = vec![
            delta(0, 1, &["x"], Some(1)),
            verdict(1, false, Some("LostWrite")),
        ];
        assert!(audit_events(&events).consistent);
    }

    /// A committed entry carrying the session envelope, in the wire
    /// runtime's canonical shape.
    fn entry(client: u64, seq: u64) -> String {
        format!(
            r#"{{"time":1,"cmd":{{"Method":{{"client":{client},"seq":{seq},"op":{{"Put":{{"key":"k","value":"v"}}}}}}}}}}"#
        )
    }

    fn ack(seq: u64, at: u64, client: u64, s: u64) -> TraceEvent {
        ev(
            seq,
            at,
            None,
            EventKind::SessionAck {
                client,
                seq: s,
                dup: false,
            },
        )
    }

    #[test]
    fn acked_session_in_the_committed_prefix_certifies() {
        let e = entry(7, 3);
        let events = vec![
            delta(0, 1, &[e.as_str()], Some(1)),
            ack(1, 20, 7, 3),
            verdict(2, true, None),
        ];
        let report = audit_events(&events);
        assert!(report.consistent, "{:?}", report.errors);
        assert_eq!(report.acked, 1);
    }

    #[test]
    fn acked_session_missing_from_every_prefix_is_a_lost_write() {
        let events = vec![
            delta(0, 1, &["\"x\""], Some(1)),
            ack(1, 20, 7, 3),
            verdict(2, true, None),
        ];
        let report = audit_events(&events);
        assert!(!report.consistent);
        assert!(
            report.errors.iter().any(|e| e.contains("no replica's committed prefix")),
            "{:?}",
            report.errors
        );
    }

    #[test]
    fn the_same_session_applied_twice_is_a_duplicate_apply() {
        let e = entry(7, 3);
        let events = vec![
            delta(0, 1, &[e.as_str(), e.as_str()], Some(2)),
            verdict(1, true, None),
        ];
        let report = audit_events(&events);
        assert!(!report.consistent);
        assert!(
            report.errors.iter().any(|e| e.contains("applied twice")),
            "{:?}",
            report.errors
        );
    }

    /// Uncommitted tail entries and no-op barriers (`op: null`) are
    /// outside T7's scope: only the committed prefix is certified.
    #[test]
    fn noops_and_uncommitted_entries_are_outside_session_scope() {
        let noop = r#"{"time":2,"cmd":{"Method":{"client":0,"seq":0,"op":null}}}"#;
        let e = entry(7, 3);
        let events = vec![
            delta(0, 1, &[noop, &e, &e], Some(2)), // second copy of `e` is uncommitted
            verdict(1, true, None),
        ];
        let report = audit_events(&events);
        assert!(report.consistent, "{:?}", report.errors);
    }

    #[test]
    fn bad_frames_are_counted_into_the_report() {
        let events = vec![
            ev(
                0,
                0,
                None,
                EventKind::BadFrame {
                    nid: 2,
                    reason: "corrupt".into(),
                },
            ),
            ev(
                1,
                5,
                None,
                EventKind::BadFrame {
                    nid: 3,
                    reason: "bad-payload".into(),
                },
            ),
            verdict(2, true, None),
        ];
        let report = audit_events(&events);
        assert!(report.consistent, "{:?}", report.errors);
        assert_eq!(report.bad_frames, 2);
    }
}
