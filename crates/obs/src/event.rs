//! The structured trace event model.
//!
//! Every observable action of a run — a message send, a WAL sync, an
//! invariant evaluation — is one [`TraceEvent`]: a sequence number, a
//! virtual-clock stamp, an optional causal parent, and an [`EventKind`]
//! payload. Events are append-only and serialized one-per-line as JSON
//! (JSONL), so a trace journal can be streamed, grepped, and audited
//! without loading a run's whole history into a structured store.
//!
//! Determinism: events carry *virtual* microseconds only. Nothing in
//! this module reads a wall clock, so two runs from the same seed emit
//! byte-identical journals.

use serde::{Deserialize, Serialize};

/// One entry of a trace journal.
///
/// `seq` is assigned densely from 0 by the [`crate::Tracer`]; the
/// auditor's completeness check (T1) rejects journals with gaps.
/// `parent` is the `seq` of the event that causally produced this one
/// (a receive points at its send, a state delta at the delivery that
/// caused it); `None` for roots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Dense journal position, starting at 0.
    pub seq: u64,
    /// Virtual-clock stamp in microseconds (never wall clock).
    pub at_us: u64,
    /// Causal parent event, if any.
    pub parent: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of a [`TraceEvent`].
///
/// Protocol payloads that the auditor must replay exactly (log entries,
/// fault descriptions) are embedded as their canonical compact-JSON
/// strings rather than as typed fields: the observability crate stays
/// protocol-agnostic, and string equality of canonical JSON coincides
/// with equality of the underlying values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A run began (a nemesis schedule, an experiment, a bench phase).
    RunStart {
        /// Human-readable run name (e.g. the schedule name).
        name: String,
        /// Initial configuration members.
        members: Vec<u32>,
    },
    /// A new phase of the run began (e.g. one fault of a schedule).
    PhaseStart {
        /// Phase index, from 0.
        index: u32,
        /// Human-readable phase label.
        label: String,
    },
    /// A message copy was put in flight from `from` to `to`.
    MsgSend {
        /// Protocol message id.
        msg: u32,
        /// Sender.
        from: u32,
        /// Recipient of this copy.
        to: u32,
        /// Message kind ("elect" or "commit").
        kind: String,
        /// Whether this copy is a network-injected duplicate.
        dup: bool,
    },
    /// A message copy was lost before delivery.
    MsgDrop {
        /// Protocol message id.
        msg: u32,
        /// Sender.
        from: u32,
        /// Intended recipient.
        to: u32,
        /// Why it was lost ("cut" or "loss").
        reason: String,
    },
    /// A message copy arrived and was offered to the protocol.
    /// `parent` links to the matching [`EventKind::MsgSend`].
    MsgRecv {
        /// Protocol message id.
        msg: u32,
        /// Recipient.
        to: u32,
        /// Whether the protocol applied it (vs. rejected/ignored).
        applied: bool,
    },
    /// A local protocol step was attempted (election start, commit
    /// round, client invoke, reconfiguration proposal).
    LocalStep {
        /// Operation kind ("elect", "commit", "invoke", "reconfig").
        op: String,
        /// The stepping replica.
        nid: u32,
        /// Whether the protocol applied it.
        applied: bool,
    },
    /// A candidate won its election.
    LeaderElected {
        /// The new leader.
        nid: u32,
        /// Its term (logical timestamp).
        term: u64,
    },
    /// A configuration-change entry committed.
    ReconfigCommitted {
        /// The leader that drove the change.
        nid: u32,
        /// The new membership.
        members: Vec<u32>,
    },
    /// A replica's durable projection changed: the same diff that is
    /// journaled to its WAL, in order (term adoption, truncation of a
    /// divergent suffix, appended entries, watermark advance). The
    /// auditor replays exactly these deltas to reconstruct per-node
    /// state.
    StateDelta {
        /// The replica whose state changed.
        nid: u32,
        /// New term, if adopted.
        term: Option<u64>,
        /// Log length truncated to, if a divergent suffix was dropped.
        truncate: Option<u64>,
        /// Appended entries, as canonical compact-JSON strings.
        append: Vec<String>,
        /// New commit watermark, if advanced (or regressed).
        commit_len: Option<u64>,
    },
    /// Records were appended to a replica's WAL (volatile tail).
    WalAppend {
        /// The replica.
        nid: u32,
        /// Number of records appended.
        records: u64,
        /// Framed bytes written.
        bytes: u64,
    },
    /// A replica's WAL was synced (one modeled `fsync`).
    WalSync {
        /// The replica.
        nid: u32,
    },
    /// A replica crashed, its disk suffering the given fault.
    Crash {
        /// The replica.
        nid: u32,
        /// Crash-time disk fault kind ("lose-tail", "torn-tail",
        /// "corrupt-record", "wipe-all").
        disk: String,
    },
    /// A crashed replica recovered by WAL replay, installing the given
    /// state. The log is embedded (as canonical JSON strings) so the
    /// auditor's reconstruction stays exact across recoveries.
    WalRecover {
        /// The replica.
        nid: u32,
        /// Replay outcome ("intact", "data-loss", "corrupt").
        outcome: String,
        /// Installed term.
        term: u64,
        /// Installed log, entries as canonical compact-JSON strings.
        log: Vec<String>,
        /// Installed commit watermark.
        commit_len: u64,
    },
    /// The fault engine injected a fault.
    FaultInject {
        /// The fault, as its canonical compact-JSON string.
        fault: String,
    },
    /// The fault engine healed all standing network faults.
    Heal,
    /// A client operation completed (or definitively failed).
    ClientOp {
        /// Operation kind ("put", "get").
        op: String,
        /// Key touched.
        key: String,
        /// Outcome ("acked", "timed-out", "no-leader", "rejected").
        outcome: String,
        /// Request latency in virtual microseconds, when acked.
        latency_us: Option<u64>,
    },
    /// A sessioned write was acknowledged to a client. The auditor's
    /// session certification (T7) demands that every acknowledged
    /// `(client, seq)` pair appears in the reconstructed cluster-wide
    /// committed prefix — the journal-level form of "zero acked-write
    /// loss" — and at most once per replica ("zero duplicate applies").
    SessionAck {
        /// The acknowledged session's client id.
        client: u64,
        /// The acknowledged sequence number.
        seq: u64,
        /// Whether the ack deduplicated a retry (the write was already
        /// applied; exactly-once showing itself).
        dup: bool,
    },
    /// One window of the availability monitor's per-window ledger:
    /// how many operations were attempted, acknowledged, definitively
    /// refused (guard/session refusals), or lost (attempts exhausted
    /// with no definitive reply) during the window.
    AvailabilityWindow {
        /// Window index, from 0.
        index: u32,
        /// Operations attempted in the window.
        attempted: u32,
        /// Operations acknowledged.
        acked: u32,
        /// Operations definitively refused.
        refused: u32,
        /// Operations with no definitive outcome (ambiguous).
        lost: u32,
    },
    /// A node rejected an inbound wire frame: checksum mismatch,
    /// oversized length prefix, or a crc-valid payload that failed to
    /// parse (protocol-version confusion). The connection is dropped;
    /// the event is the end-to-end proof that the rejection path ran.
    BadFrame {
        /// The rejecting node.
        nid: u32,
        /// Why ("corrupt", "oversized", "bad-payload").
        reason: String,
    },
    /// A thread found a mutex poisoned (a peer thread panicked while
    /// holding it) and *adopted* the value instead of propagating the
    /// panic. Safe only for locks whose critical sections are atomic
    /// with respect to the protected invariant (e.g. single-map-op
    /// sections); the event makes the adoption auditable rather than
    /// silent.
    LockPoisoned {
        /// The recovering node.
        nid: u32,
        /// The lock's name (e.g. "clients").
        lock: String,
    },
    /// The live run evaluated an invariant.
    InvariantEval {
        /// Invariant name (e.g. "log-safety").
        name: String,
        /// Whether it held.
        ok: bool,
    },
    /// The live run's safety verdict at a checkpoint.
    Verdict {
        /// Whether the run was safe at this point.
        safe: bool,
        /// Machine-readable violation tag when unsafe (e.g.
        /// "LogDivergence").
        kind: Option<String>,
        /// Human-readable violation description when unsafe.
        detail: Option<String>,
        /// Phase index the verdict was taken after.
        phase: u32,
    },
    /// The run ended.
    RunEnd {
        /// Entries committed over the run.
        committed: u64,
    },
    /// The streaming trace exporter shed `count` events under
    /// backpressure (its bounded queue was full). The marker makes
    /// export loss *visible in the stream itself*: an online consumer
    /// can account for every missing event, so silent trace loss is
    /// impossible by construction. The marker carries the stamp of the
    /// event whose arrival flushed it, preserving per-stream clock
    /// monotonicity.
    TraceDropped {
        /// The exporting node.
        nid: u32,
        /// Events shed since the previous marker (or stream start).
        count: u64,
    },
    /// A read-only `/metrics` scrape was served by a node's endpoint.
    /// Journaled through the node's single-writer event loop so the
    /// scrape layer (the only place wall clocks are allowed) never
    /// writes the journal itself.
    MetricsScrape {
        /// The scraped node.
        nid: u32,
        /// Number of series (counters + gauges + histograms) rendered.
        series: u32,
    },
}

impl EventKind {
    /// A short machine-readable tag for the event kind (used by
    /// metrics and summaries).
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::RunStart { .. } => "run-start",
            EventKind::PhaseStart { .. } => "phase-start",
            EventKind::MsgSend { .. } => "msg-send",
            EventKind::MsgDrop { .. } => "msg-drop",
            EventKind::MsgRecv { .. } => "msg-recv",
            EventKind::LocalStep { .. } => "local-step",
            EventKind::LeaderElected { .. } => "leader-elected",
            EventKind::ReconfigCommitted { .. } => "reconfig-committed",
            EventKind::StateDelta { .. } => "state-delta",
            EventKind::WalAppend { .. } => "wal-append",
            EventKind::WalSync { .. } => "wal-sync",
            EventKind::Crash { .. } => "crash",
            EventKind::WalRecover { .. } => "wal-recover",
            EventKind::FaultInject { .. } => "fault-inject",
            EventKind::Heal => "heal",
            EventKind::ClientOp { .. } => "client-op",
            EventKind::SessionAck { .. } => "session-ack",
            EventKind::AvailabilityWindow { .. } => "availability-window",
            EventKind::BadFrame { .. } => "bad-frame",
            EventKind::LockPoisoned { .. } => "lock-poisoned",
            EventKind::InvariantEval { .. } => "invariant-eval",
            EventKind::Verdict { .. } => "verdict",
            EventKind::RunEnd { .. } => "run-end",
            EventKind::TraceDropped { .. } => "trace-dropped",
            EventKind::MetricsScrape { .. } => "metrics-scrape",
        }
    }
}

impl TraceEvent {
    /// Construct a parentless event at the given stamp with `seq` 0.
    ///
    /// For events that live outside a [`crate::Tracer`]'s dense journal
    /// — synthesized stream markers such as
    /// [`EventKind::TraceDropped`], or locally teed copies fed to a
    /// stream merger that renumbers on release. Journal events should
    /// keep coming from the tracer, which owns dense numbering and
    /// causal parents.
    #[must_use]
    pub fn root(at_us: u64, kind: EventKind) -> Self {
        TraceEvent { seq: 0, at_us, parent: None, kind }
    }
}
