//! The shared results writer: one code path for every machine-readable
//! artifact the benches and fault campaigns leave behind.
//!
//! Every writer in the workspace that persists a results file
//! (`results/BENCH_net.json`, `results/BENCH_netmesis.json`,
//! counterexample artifacts) goes through [`write_json_report`], so the
//! repo-root trajectory files share one format: pretty-printed JSON
//! with a trailing newline, parent directories created on demand. A
//! tool that trends the perf/robustness numbers can parse every file
//! the same way.

use serde::Serialize;
use std::path::Path;

/// Serializes `report` as pretty JSON (plus trailing newline) to
/// `path`, creating parent directories as needed.
///
/// # Errors
///
/// An [`std::io::Error`] if serialization fails (reported as
/// `InvalidData`) or the file cannot be written.
pub fn write_json_report<T: Serialize + ?Sized>(
    path: &Path,
    report: &T,
) -> std::io::Result<()> {
    let body = serde_json::to_string_pretty(report).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    })?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, format!("{body}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Probe {
        name: String,
        runs: u64,
    }

    #[test]
    fn writes_pretty_json_with_trailing_newline_and_creates_dirs() {
        let dir = std::env::temp_dir().join(format!(
            "adore-results-writer-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("report.json");
        let probe = Probe {
            name: "bench".into(),
            runs: 3,
        };
        write_json_report(&path, &probe).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        assert!(text.contains('\n'), "pretty form is multi-line");
        let back: Probe = serde_json::from_str(&text).unwrap();
        assert_eq!(back, probe);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
