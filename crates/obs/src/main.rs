//! CLI entry point: `cargo run -p adore-obs -- --audit trace.jsonl`.
//!
//! Audits a trace journal: reconstructs protocol state from the events
//! alone and re-certifies committed-prefix agreement against the live
//! run's recorded verdict. Exits 0 when the trace is certified
//! (structurally sound and verdict-consistent — including reproducing a
//! violation verdict), 1 when not, 2 on usage or IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut audit_path: Option<PathBuf> = None;
    let mut format = "text".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--audit" => match args.next() {
                Some(p) => audit_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("adore-obs: --audit expects a trace file path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                other => {
                    eprintln!("adore-obs: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "adore-obs: audit a deterministic trace journal\n\
                     \n\
                     USAGE: adore-obs --audit TRACE.jsonl [--format text|json]\n\
                     \n\
                     Reconstructs every replica's (term, log, commit_len) purely\n\
                     from the journal's state-delta and recovery events, re-checks\n\
                     committed-prefix agreement over the reconstruction, and\n\
                     verifies journal structure (dense sequence, monotone virtual\n\
                     clock, causal send/recv links, faithful recoveries). Exit 0\n\
                     means the trace is certified: its independent verdict matches\n\
                     the live run's recorded one."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("adore-obs: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let Some(path) = audit_path else {
        eprintln!("adore-obs: nothing to do (try --audit TRACE.jsonl or --help)");
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("adore-obs: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };

    let report = match adore_obs::audit_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("adore-obs: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };

    match format.as_str() {
        "json" => {
            // A small stable JSON rendering for scripting.
            let checks: Vec<(String, u64)> = report.checks.clone();
            let payload = (
                report.events as u64,
                report.nodes as u64,
                checks,
                report.errors.clone(),
                report.consistent,
            );
            match serde_json::to_string(&payload) {
                Ok(s) => println!("{s}"),
                Err(e) => eprintln!("adore-obs: render failed: {e}"),
            }
        }
        _ => {
            println!("audit of {}:", path.display());
            println!("  {}", report.summary());
            for (name, count) in &report.checks {
                println!("  {name}: {count} evaluations");
            }
            for err in &report.errors {
                println!("  error: {err}");
            }
            if let Some(d) = &report.divergence {
                println!("  reproduced violation: {d}");
            }
        }
    }

    if report.consistent {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
