//! Deterministic observability for the ADORE reproduction.
//!
//! The paper's evaluation (§7) reasons from *observed* runs: latency
//! under live reconfiguration, checking effort, counterexample traces.
//! This crate makes every run of this workspace produce first-class
//! evidence of the same kind:
//!
//! - [`Tracer`] — an append-only structured event journal stamped with
//!   the simulation's **virtual** clocks (never wall clock, never RNG:
//!   a traced run is bit-identical to an untraced one), serialized as
//!   JSONL with causal parent links.
//! - [`Metrics`] — a registry of counters, gauges, and fixed-bucket
//!   [`Histogram`]s for the quantities the experiments report:
//!   explorer states/sec, invariant evaluations per lemma, quorum
//!   checks, message and WAL traffic, per-request latency.
//! - [`audit_events`] — the trace auditor: reconstructs protocol state
//!   purely from the journal and re-certifies committed-prefix
//!   agreement over the reconstruction, confirming (or independently
//!   reproducing) the live run's verdict. `adore-obs --audit
//!   trace.jsonl` is the CLI form, wired into CI.
//! - [`OnlineAuditor`] / [`StreamMerger`] — the same audit engine
//!   driven incrementally over live exported streams, merged
//!   deterministically under a virtual-clock watermark; and
//!   [`render_prometheus`] — the pure text-exposition renderer behind
//!   each node's `/metrics` endpoint.
//!
//! The crate deliberately depends on nothing but the vendored serde
//! stand-ins: instrumented crates (`adore-kv`, `adore-nemesis`,
//! `adore-checker`) depend on it, never the reverse, and the auditor
//! treats protocol payloads as opaque canonical-JSON strings.

mod audit;
mod event;
mod metrics;
mod online;
mod prom;
mod results;
mod trace;

pub use audit::{audit_events, AuditEngine, AuditReport, Divergence};
pub use event::{EventKind, TraceEvent};
pub use metrics::{
    Histogram, HistogramSnapshot, Metrics, MetricsSnapshot, LATENCY_BOUNDS_US,
};
pub use online::{OnlineAuditor, StreamMerger, Verdict};
pub use prom::{render_prometheus, series_count};
pub use results::write_json_report;
pub use trace::{merge_journals, parse_jsonl, to_jsonl, TraceError, Tracer};

/// Parses a JSONL journal and audits it in one step.
///
/// # Errors
///
/// A [`TraceError`] if any line fails to parse (the audit never runs
/// over a partially parsed journal).
pub fn audit_jsonl(text: &str) -> Result<AuditReport, TraceError> {
    Ok(audit_events(&parse_jsonl(text)?))
}
