//! Prometheus text-format rendering of a metrics snapshot.
//!
//! A pure function from [`MetricsSnapshot`] to the Prometheus text
//! exposition format (version 0.0.4): counters and gauges as single
//! samples, histograms as cumulative `_bucket{le="..."}` series plus
//! `_sum` and `_count`. No clock, no I/O, no printing — the scrape
//! *endpoint* (the only layer allowed a wall clock) lives in the
//! `adored` runtime; this module only formats, so it stays inside the
//! deterministic perimeter and its output can be byte-pinned.

use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Metric names are sanitized to the Prometheus charset (anything
/// outside `[A-Za-z0-9_:]` becomes `_`, so `node.commit_index` scrapes
/// as `node_commit_index`). Output order is the registry's
/// deterministic order: counters, then gauges, then histograms, each
/// name-sorted.
#[must_use]
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &snap.histograms {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

/// Number of time series the snapshot renders to (counters + gauges +
/// one per histogram) — reported in the endpoint's `MetricsScrape`
/// journal event.
#[must_use]
pub fn series_count(snap: &MetricsSnapshot) -> u32 {
    let n = snap.counters.len() + snap.gauges.len() + snap.histograms.len();
    u32::try_from(n).unwrap_or(u32::MAX)
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, Metrics, MetricsSnapshot};

    /// The exposition format is part of the observable surface: pin it
    /// byte-for-byte so a format drift is a deliberate, reviewed
    /// change.
    #[test]
    fn exposition_format_is_pinned() {
        let snap = MetricsSnapshot {
            counters: vec![("wire.frames_in".to_string(), 2)],
            gauges: vec![("node.commit_index".to_string(), 7)],
            histograms: vec![(
                "request_latency_us".to_string(),
                HistogramSnapshot {
                    count: 3,
                    sum: 1199,
                    min: 50,
                    max: 999,
                    bounds: vec![100, 200],
                    counts: vec![1, 1, 1],
                },
            )],
        };
        let text = render_prometheus(&snap);
        let want = "\
# TYPE wire_frames_in counter
wire_frames_in 2
# TYPE node_commit_index gauge
node_commit_index 7
# TYPE request_latency_us histogram
request_latency_us_bucket{le=\"100\"} 1
request_latency_us_bucket{le=\"200\"} 2
request_latency_us_bucket{le=\"+Inf\"} 3
request_latency_us_sum 1199
request_latency_us_count 3
";
        assert_eq!(text, want);
        assert_eq!(series_count(&snap), 3);
    }

    #[test]
    fn registry_round_trip_renders_live_values() {
        let mut m = Metrics::default();
        m.inc("wire.frames_in");
        m.set_gauge("node.commit_index", 7);
        m.observe("request_latency_us", 150);
        let text = render_prometheus(&m.snapshot());
        assert!(text.contains("wire_frames_in 1"));
        assert!(text.contains("node_commit_index 7"));
        assert!(text.contains("request_latency_us_count 1"));
        assert!(text.contains("request_latency_us_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_prometheus(&Metrics::default().snapshot()), "");
    }
}
