//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Everything is deterministic and allocation-light: names are plain
//! strings in ordered maps (no hash iteration — the registry's
//! serialized form must be stable across runs for the schema tests),
//! histograms use fixed bucket bounds chosen at construction, and no
//! wall clock is ever read.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default histogram bucket upper bounds for virtual-microsecond
/// latencies: fine-grained (50µs steps) through the sub-millisecond
/// range where steady-state request latencies live, then roughly
/// geometric up to ~3.2s, with an implicit overflow bucket above the
/// last bound.
pub const LATENCY_BOUNDS_US: [u64; 24] = [
    50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600, 700, 800, 1_000, 1_600, 3_200,
    6_400, 12_800, 25_600, 51_200, 204_800, 819_200, 3_276_800,
];

/// A fixed-bucket histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>, // bounds.len() + 1 (overflow bucket)
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_bounds(&LATENCY_BOUNDS_US)
    }
}

impl Histogram {
    /// Creates a histogram with the given (sorted, inclusive) upper
    /// bucket bounds; samples above the last bound land in an overflow
    /// bucket.
    #[must_use]
    pub fn with_bounds(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample, or 0 with no samples.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest sample, or 0 with no samples.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean sample, or 0 with no samples.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (0.0..=1.0), resolved to the upper bound of the
    /// bucket holding that rank — except the overflow bucket and
    /// `q = 1.0`, which report the exact maximum. 0 with no samples.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        snapshot_quantile(&self.bounds, &self.counts, self.count, self.max, q)
    }

    /// A serializable copy of the histogram's state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
        }
    }
}

/// Quantile over bucket counts shared by [`Histogram`] and
/// [`HistogramSnapshot`].
fn snapshot_quantile(bounds: &[u64], counts: &[u64], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    if q >= 1.0 {
        return max;
    }
    let rank = (q * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bounds.get(i).copied().unwrap_or(max);
        }
    }
    max
}

/// The serialized form of a [`Histogram`] (pinned by the schema tests).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 with no samples).
    pub min: u64,
    /// Largest sample (0 with no samples).
    pub max: u64,
    /// Inclusive upper bucket bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow last).
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// The `q`-quantile, as for [`Histogram::quantile`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        snapshot_quantile(&self.bounds, &self.counts, self.count, self.max, q)
    }

    /// Mean sample, or 0 with no samples.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds another snapshot with identical bucket bounds into this
    /// one (per-bucket counts add; min/max/sum/count combine), for
    /// aggregating the same measurement across seeded runs.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "mismatched histogram bounds");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.min = match (self.count, other.count) {
            (_, 0) => self.min,
            (0, _) => other.min,
            _ => self.min.min(other.min),
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
    }
}

/// A registry of named counters, gauges, and histograms.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increments counter `name` by 1.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments counter `name` by `n`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Reads counter `name` (0 if never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name`.
    pub fn set_gauge(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Reads gauge `name` (0 if never set).
    #[must_use]
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into histogram `name` (created with the default
    /// latency bounds on first use).
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Reads histogram `name`, if any samples were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Removes and returns histogram `name` — the per-phase hook: an
    /// experiment snapshots a phase's latencies and starts the next
    /// phase fresh.
    pub fn take_histogram(&mut self, name: &str) -> Option<Histogram> {
        self.histograms.remove(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// A serializable copy of the whole registry.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// The serialized form of a [`Metrics`] registry (name-ordered, so
/// byte-stable across identical runs; pinned by the schema tests).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, in name order.
    pub counters: Vec<(String, u64)>,
    /// Gauges, in name order.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, in name order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Reads counter `name` (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Reads histogram `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Counters whose names start with `prefix`, hottest first — the
    /// profiling helper behind "hottest invariants / transitions".
    #[must_use]
    pub fn hottest(&self, prefix: &str) -> Vec<(&str, u64)> {
        let mut out: Vec<(&str, u64)> = self
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = Metrics::new();
        m.inc("a");
        m.add("a", 4);
        m.set_gauge("g", -2);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), -2);
    }

    #[test]
    fn histogram_quantiles_cover_the_buckets() {
        let mut h = Histogram::with_bounds(&[10, 20, 40]);
        for v in [1, 9, 11, 19, 21, 39, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(0.5), 20);
        assert_eq!(h.quantile(1.0), 100);
        // Overflow bucket resolves to the exact max.
        assert_eq!(h.quantile(0.99), 100);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(
            (h.count(), h.min(), h.max(), h.mean(), h.quantile(0.5)),
            (0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn snapshot_quantiles_match_live_quantiles() {
        let mut m = Metrics::new();
        for v in [50, 150, 450, 90_000] {
            m.observe("lat", v);
        }
        let snap = m.snapshot();
        let live = m.histogram("lat").unwrap();
        let hist = snap.histogram("lat").unwrap();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(hist.quantile(q), live.quantile(q));
        }
        assert_eq!(hist.mean(), live.mean());
    }

    #[test]
    fn hottest_sorts_by_count_then_name() {
        let mut m = Metrics::new();
        m.add("inv.a", 3);
        m.add("inv.b", 7);
        m.add("inv.c", 7);
        m.add("other", 99);
        let snap = m.snapshot();
        assert_eq!(
            snap.hottest("inv."),
            vec![("inv.b", 7), ("inv.c", 7), ("inv.a", 3)]
        );
    }

    #[test]
    fn merged_snapshots_aggregate_like_one_histogram() {
        let mut a = Histogram::with_bounds(&[10, 20, 40]);
        let mut b = Histogram::with_bounds(&[10, 20, 40]);
        let mut whole = Histogram::with_bounds(&[10, 20, 40]);
        for v in [1, 15, 100] {
            a.observe(v);
            whole.observe(v);
        }
        for v in [9, 35] {
            b.observe(v);
            whole.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
        // Merging into an empty snapshot preserves the other side's min.
        let mut empty = Histogram::with_bounds(&[10, 20, 40]).snapshot();
        empty.merge(&b.snapshot());
        assert_eq!((empty.min, empty.max, empty.count), (9, 35, 2));
    }

    #[test]
    fn take_histogram_resets_for_the_next_phase() {
        let mut m = Metrics::new();
        m.observe("lat", 5);
        let h = m.take_histogram("lat").unwrap();
        assert_eq!(h.count(), 1);
        assert!(m.histogram("lat").is_none());
    }
}
