//! The tracer: an append-only, virtual-clock-stamped event journal.
//!
//! A [`Tracer`] starts disabled and records nothing until switched on,
//! so instrumented code can keep a tracer threaded through its hot
//! paths at zero allocation cost. Crucially for the seeded simulations,
//! recording **never consumes randomness and never reads a clock** —
//! the caller supplies the virtual timestamp — so a run traces
//! bit-identically to an untraced one.

use crate::event::{EventKind, TraceEvent};

/// An append-only trace journal with dense sequence numbers.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// Creates a disabled tracer (records nothing).
    #[must_use]
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Creates an enabled tracer.
    #[must_use]
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Turns recording on or off. Already-recorded events are kept.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is on. Instrumented code should gate any
    /// expensive payload construction (serialization, cloning) on this.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a root event (no causal parent) at virtual time `at_us`.
    /// Returns the event's sequence number, or `None` when disabled.
    pub fn record(&mut self, at_us: u64, kind: EventKind) -> Option<u64> {
        self.record_linked(at_us, None, kind)
    }

    /// Records an event with an explicit causal parent.
    /// Returns the event's sequence number, or `None` when disabled.
    pub fn record_linked(
        &mut self,
        at_us: u64,
        parent: Option<u64>,
        kind: EventKind,
    ) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        let seq = self.events.len() as u64;
        self.events.push(TraceEvent {
            seq,
            at_us,
            parent,
            kind,
        });
        Some(seq)
    }

    /// The events recorded so far.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Takes the recorded events, leaving the tracer empty (and its
    /// sequence numbering reset).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Renders the journal as JSONL (one compact-JSON event per line,
    /// trailing newline when non-empty).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.events)
    }
}

/// Renders events as JSONL: one compact-JSON event per line.
#[must_use]
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        if let Ok(line) = serde_json::to_string(ev) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// A trace-journal parse failure: which line, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

/// Parses a JSONL trace journal. Blank lines are ignored; any
/// malformed line is a typed error (never a panic — journals come from
/// disk and may be truncated or hand-edited).
///
/// # Errors
///
/// The first malformed line, with its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match serde_json::from_str::<TraceEvent>(line) {
            Ok(ev) => out.push(ev),
            Err(e) => {
                return Err(TraceError {
                    line: i + 1,
                    msg: e.to_string(),
                })
            }
        }
    }
    Ok(out)
}

/// Merges per-process journal files into one auditable trace.
///
/// Real cluster nodes (`adored`) each write their own JSONL journal;
/// the auditor wants a single journal with dense sequence numbers and a
/// monotone clock (its T1 check). This function parses each file,
/// merges all events in timestamp order (ties keep file order, so the
/// merge is deterministic), renumbers `seq` densely from 0, and clears
/// causal parents (per-file sequence numbers are meaningless across
/// files; cluster journals record only root events).
///
/// Crash tolerance: a node killed with `SIGKILL` mid-write can leave a
/// torn, unparseable **last** line in its journal. That final line is
/// dropped silently — it describes an event whose effects were never
/// acknowledged to anyone. A malformed line anywhere *else* is real
/// corruption and stays a [`TraceError`].
///
/// # Errors
///
/// The first malformed non-final line across the inputs, with its
/// 1-based line number within its own file.
pub fn merge_journals<'a, I>(texts: I) -> Result<Vec<TraceEvent>, TraceError>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut merged: Vec<TraceEvent> = Vec::new();
    for text in texts {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        for (pos, (line_no, line)) in lines.iter().enumerate() {
            match serde_json::from_str::<TraceEvent>(line) {
                Ok(ev) => merged.push(ev),
                Err(e) => {
                    if pos + 1 == lines.len() {
                        // Torn tail at the kill point: drop it.
                        continue;
                    }
                    return Err(TraceError {
                        line: *line_no,
                        msg: e.to_string(),
                    });
                }
            }
        }
    }
    merged.sort_by_key(|ev| ev.at_us);
    for (i, ev) in merged.iter_mut().enumerate() {
        ev.seq = i as u64;
        ev.parent = None;
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert_eq!(t.record(0, EventKind::Heal), None);
        assert!(t.is_empty());
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn sequence_numbers_are_dense_and_parents_kept() {
        let mut t = Tracer::enabled();
        let a = t.record(10, EventKind::Heal);
        let b = t.record_linked(
            20,
            a,
            EventKind::WalSync { nid: 1 },
        );
        assert_eq!((a, b), (Some(0), Some(1)));
        assert_eq!(t.events()[1].parent, Some(0));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut t = Tracer::enabled();
        t.record(0, EventKind::RunStart {
            name: "r".into(),
            members: vec![1, 2, 3],
        });
        t.record(5, EventKind::MsgSend {
            msg: 0,
            from: 1,
            to: 2,
            kind: "elect".into(),
            dup: false,
        });
        let text = t.to_jsonl();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, t.events());
    }

    #[test]
    fn blank_lines_are_ignored_and_bad_lines_located() {
        assert_eq!(parse_jsonl("\n\n").unwrap(), Vec::new());
        let err = parse_jsonl("\n{nope\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn merge_orders_renumbers_and_drops_torn_tails() {
        let mut a = Tracer::enabled();
        a.record(30, EventKind::WalSync { nid: 1 });
        let mut b = Tracer::enabled();
        b.record(10, EventKind::WalSync { nid: 2 });
        b.record(20, EventKind::Heal);
        // Node b's journal ends in a torn line from a kill -9.
        let b_text = format!("{}{{\"seq\":2,\"at_us\":40,\"par", b.to_jsonl());
        let merged = merge_journals([a.to_jsonl().as_str(), b_text.as_str()]).unwrap();
        assert_eq!(merged.len(), 3);
        assert_eq!(
            merged.iter().map(|e| (e.seq, e.at_us)).collect::<Vec<_>>(),
            vec![(0, 10), (1, 20), (2, 30)]
        );
    }

    #[test]
    fn merge_rejects_mid_file_corruption() {
        let mut t = Tracer::enabled();
        t.record(10, EventKind::Heal);
        let text = format!("{{broken}}\n{}", t.to_jsonl());
        let err = merge_journals([text.as_str()]).unwrap_err();
        assert_eq!(err.line, 1);
    }
}
