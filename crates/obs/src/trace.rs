//! The tracer: an append-only, virtual-clock-stamped event journal.
//!
//! A [`Tracer`] starts disabled and records nothing until switched on,
//! so instrumented code can keep a tracer threaded through its hot
//! paths at zero allocation cost. Crucially for the seeded simulations,
//! recording **never consumes randomness and never reads a clock** —
//! the caller supplies the virtual timestamp — so a run traces
//! bit-identically to an untraced one.

use crate::event::{EventKind, TraceEvent};

/// An append-only trace journal with dense sequence numbers.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// Creates a disabled tracer (records nothing).
    #[must_use]
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Creates an enabled tracer.
    #[must_use]
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Turns recording on or off. Already-recorded events are kept.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is on. Instrumented code should gate any
    /// expensive payload construction (serialization, cloning) on this.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a root event (no causal parent) at virtual time `at_us`.
    /// Returns the event's sequence number, or `None` when disabled.
    pub fn record(&mut self, at_us: u64, kind: EventKind) -> Option<u64> {
        self.record_linked(at_us, None, kind)
    }

    /// Records an event with an explicit causal parent.
    /// Returns the event's sequence number, or `None` when disabled.
    pub fn record_linked(
        &mut self,
        at_us: u64,
        parent: Option<u64>,
        kind: EventKind,
    ) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        let seq = self.events.len() as u64;
        self.events.push(TraceEvent {
            seq,
            at_us,
            parent,
            kind,
        });
        Some(seq)
    }

    /// The events recorded so far.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Takes the recorded events, leaving the tracer empty (and its
    /// sequence numbering reset).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Renders the journal as JSONL (one compact-JSON event per line,
    /// trailing newline when non-empty).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.events)
    }
}

/// Renders events as JSONL: one compact-JSON event per line.
#[must_use]
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        if let Ok(line) = serde_json::to_string(ev) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// A trace-journal parse failure: which line, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

/// Parses a JSONL trace journal. Blank lines are ignored; any
/// malformed line is a typed error (never a panic — journals come from
/// disk and may be truncated or hand-edited).
///
/// # Errors
///
/// The first malformed line, with its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match serde_json::from_str::<TraceEvent>(line) {
            Ok(ev) => out.push(ev),
            Err(e) => {
                return Err(TraceError {
                    line: i + 1,
                    msg: e.to_string(),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert_eq!(t.record(0, EventKind::Heal), None);
        assert!(t.is_empty());
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn sequence_numbers_are_dense_and_parents_kept() {
        let mut t = Tracer::enabled();
        let a = t.record(10, EventKind::Heal);
        let b = t.record_linked(
            20,
            a,
            EventKind::WalSync { nid: 1 },
        );
        assert_eq!((a, b), (Some(0), Some(1)));
        assert_eq!(t.events()[1].parent, Some(0));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut t = Tracer::enabled();
        t.record(0, EventKind::RunStart {
            name: "r".into(),
            members: vec![1, 2, 3],
        });
        t.record(5, EventKind::MsgSend {
            msg: 0,
            from: 1,
            to: 2,
            kind: "elect".into(),
            dup: false,
        });
        let text = t.to_jsonl();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, t.events());
    }

    #[test]
    fn blank_lines_are_ignored_and_bad_lines_located() {
        assert_eq!(parse_jsonl("\n\n").unwrap(), Vec::new());
        let err = parse_jsonl("\n{nope\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
