//! The trace-journal JSONL schema and the metrics-snapshot JSON schema
//! are compatibility surfaces: a journal written by one release must
//! audit under the next, and archived experiment snapshots must stay
//! loadable. These tests pin the exact wire form of **every**
//! [`EventKind`] variant, of the [`TraceEvent`] envelope, and of
//! [`MetricsSnapshot`].
//!
//! If one of these tests fails, a serialization change has broken every
//! trace journal in the wild. Add a new variant with a new pinned form
//! instead of changing an existing one.

use adore_obs::{
    audit_events, parse_jsonl, to_jsonl, EventKind, HistogramSnapshot, MetricsSnapshot,
    TraceEvent, Tracer,
};

/// Every event-kind variant, paired with its pinned wire form.
fn pinned_kinds() -> Vec<(EventKind, &'static str)> {
    vec![
        (
            EventKind::RunStart {
                name: "w".into(),
                members: vec![1, 2, 3],
            },
            r#"{"RunStart":{"name":"w","members":[1,2,3]}}"#,
        ),
        (
            EventKind::PhaseStart {
                index: 2,
                label: "HealAll".into(),
            },
            r#"{"PhaseStart":{"index":2,"label":"HealAll"}}"#,
        ),
        (
            EventKind::MsgSend {
                msg: 7,
                from: 1,
                to: 3,
                kind: "commit".into(),
                dup: false,
            },
            r#"{"MsgSend":{"msg":7,"from":1,"to":3,"kind":"commit","dup":false}}"#,
        ),
        (
            EventKind::MsgDrop {
                msg: 7,
                from: 1,
                to: 2,
                reason: "cut".into(),
            },
            r#"{"MsgDrop":{"msg":7,"from":1,"to":2,"reason":"cut"}}"#,
        ),
        (
            EventKind::MsgRecv {
                msg: 7,
                to: 3,
                applied: true,
            },
            r#"{"MsgRecv":{"msg":7,"to":3,"applied":true}}"#,
        ),
        (
            EventKind::LocalStep {
                op: "elect".into(),
                nid: 2,
                applied: true,
            },
            r#"{"LocalStep":{"op":"elect","nid":2,"applied":true}}"#,
        ),
        (
            EventKind::LeaderElected { nid: 2, term: 5 },
            r#"{"LeaderElected":{"nid":2,"term":5}}"#,
        ),
        (
            EventKind::ReconfigCommitted {
                nid: 2,
                members: vec![1, 2, 4],
            },
            r#"{"ReconfigCommitted":{"nid":2,"members":[1,2,4]}}"#,
        ),
        (
            EventKind::StateDelta {
                nid: 3,
                term: Some(5),
                truncate: Some(2),
                append: vec![r#"{"k":"a"}"#.into()],
                commit_len: None,
            },
            r#"{"StateDelta":{"nid":3,"term":5,"truncate":2,"append":["{\"k\":\"a\"}"],"commit_len":null}}"#,
        ),
        (
            EventKind::WalAppend {
                nid: 3,
                records: 2,
                bytes: 96,
            },
            r#"{"WalAppend":{"nid":3,"records":2,"bytes":96}}"#,
        ),
        (EventKind::WalSync { nid: 3 }, r#"{"WalSync":{"nid":3}}"#),
        (
            EventKind::Crash {
                nid: 1,
                disk: "lose-tail".into(),
            },
            r#"{"Crash":{"nid":1,"disk":"lose-tail"}}"#,
        ),
        (
            EventKind::WalRecover {
                nid: 1,
                outcome: "data-loss".into(),
                term: 4,
                log: vec!["\"e\"".into()],
                commit_len: 1,
            },
            r#"{"WalRecover":{"nid":1,"outcome":"data-loss","term":4,"log":["\"e\""],"commit_len":1}}"#,
        ),
        (
            EventKind::FaultInject {
                fault: r#""HealAll""#.into(),
            },
            r#"{"FaultInject":{"fault":"\"HealAll\""}}"#,
        ),
        (EventKind::Heal, r#""Heal""#),
        (
            EventKind::ClientOp {
                op: "put".into(),
                key: "k0".into(),
                outcome: "acked".into(),
                latency_us: Some(800),
            },
            r#"{"ClientOp":{"op":"put","key":"k0","outcome":"acked","latency_us":800}}"#,
        ),
        (
            EventKind::SessionAck {
                client: 9,
                seq: 4,
                dup: true,
            },
            r#"{"SessionAck":{"client":9,"seq":4,"dup":true}}"#,
        ),
        (
            EventKind::AvailabilityWindow {
                index: 3,
                attempted: 20,
                acked: 17,
                refused: 1,
                lost: 2,
            },
            r#"{"AvailabilityWindow":{"index":3,"attempted":20,"acked":17,"refused":1,"lost":2}}"#,
        ),
        (
            EventKind::BadFrame {
                nid: 2,
                reason: "corrupt".into(),
            },
            r#"{"BadFrame":{"nid":2,"reason":"corrupt"}}"#,
        ),
        (
            EventKind::LockPoisoned {
                nid: 1,
                lock: "clients".into(),
            },
            r#"{"LockPoisoned":{"nid":1,"lock":"clients"}}"#,
        ),
        (
            EventKind::InvariantEval {
                name: "log-safety".into(),
                ok: true,
            },
            r#"{"InvariantEval":{"name":"log-safety","ok":true}}"#,
        ),
        (
            EventKind::Verdict {
                safe: false,
                kind: Some("LogDivergence".into()),
                detail: Some("nodes 1 and 2".into()),
                phase: 6,
            },
            r#"{"Verdict":{"safe":false,"kind":"LogDivergence","detail":"nodes 1 and 2","phase":6}}"#,
        ),
        (
            EventKind::RunEnd { committed: 12 },
            r#"{"RunEnd":{"committed":12}}"#,
        ),
        (
            EventKind::TraceDropped { nid: 2, count: 17 },
            r#"{"TraceDropped":{"nid":2,"count":17}}"#,
        ),
        (
            EventKind::MetricsScrape { nid: 1, series: 14 },
            r#"{"MetricsScrape":{"nid":1,"series":14}}"#,
        ),
    ]
}

#[test]
fn every_event_kind_serializes_to_its_pinned_form() {
    for (kind, pinned) in pinned_kinds() {
        assert_eq!(
            serde_json::to_string(&kind).unwrap(),
            pinned,
            "wire form of {} changed",
            kind.tag()
        );
    }
}

#[test]
fn every_event_kind_round_trips_from_its_pinned_form() {
    for (kind, pinned) in pinned_kinds() {
        let back: EventKind = serde_json::from_str(pinned).unwrap();
        assert_eq!(back, kind, "pinned form {pinned} no longer parses back");
    }
}

#[test]
fn the_trace_event_envelope_is_pinned() {
    // adore-lint: allow(L3, reason = "schema pin must build raw envelopes to detect wire-format drift")
    let root = TraceEvent {
        seq: 0,
        at_us: 0,
        parent: None,
        kind: EventKind::Heal,
    };
    assert_eq!(
        serde_json::to_string(&root).unwrap(),
        r#"{"seq":0,"at_us":0,"parent":null,"kind":"Heal"}"#
    );
    // adore-lint: allow(L3, reason = "schema pin must build raw envelopes to detect wire-format drift")
    let linked = TraceEvent {
        seq: 1,
        at_us: 250,
        parent: Some(0),
        kind: EventKind::MsgRecv {
            msg: 7,
            to: 3,
            applied: true,
        },
    };
    assert_eq!(
        serde_json::to_string(&linked).unwrap(),
        concat!(
            r#"{"seq":1,"at_us":250,"parent":0,"#,
            r#""kind":{"MsgRecv":{"msg":7,"to":3,"applied":true}}}"#
        )
    );
}

#[test]
fn a_journal_holding_every_variant_round_trips_through_jsonl() {
    let mut tracer = Tracer::enabled();
    for (i, (kind, _)) in pinned_kinds().into_iter().enumerate() {
        tracer.record(i as u64 * 10, kind);
    }
    let events = tracer.take();
    let jsonl = to_jsonl(&events);
    // One line per event, every line compact JSON.
    assert_eq!(jsonl.lines().count(), events.len());
    let back = parse_jsonl(&jsonl).unwrap();
    assert_eq!(back, events);
}

#[test]
fn the_metrics_snapshot_form_is_pinned() {
    let snap = MetricsSnapshot {
        counters: vec![("net.msgs_sent".into(), 42)],
        gauges: vec![("cluster.size".into(), 3)],
        histograms: vec![(
            "request_latency_us".into(),
            HistogramSnapshot {
                count: 2,
                sum: 900,
                min: 400,
                max: 500,
                bounds: vec![450],
                counts: vec![1, 1],
            },
        )],
    };
    let pinned = concat!(
        r#"{"counters":[["net.msgs_sent",42]],"gauges":[["cluster.size",3]],"#,
        r#""histograms":[["request_latency_us",{"count":2,"sum":900,"#,
        r#""min":400,"max":500,"bounds":[450],"counts":[1,1]}]]}"#
    );
    assert_eq!(serde_json::to_string(&snap).unwrap(), pinned);
    let back: MetricsSnapshot = serde_json::from_str(pinned).unwrap();
    assert_eq!(back, snap);
}

/// A tiny hand-built journal must audit: the auditor accepts any journal
/// whose events are dense, causally sane, and verdict-consistent — not
/// just journals produced by the live simulation.
#[test]
fn a_hand_built_clean_journal_audits_consistent() {
    let mut tracer = Tracer::enabled();
    tracer.record(
        0,
        EventKind::RunStart {
            name: "hand".into(),
            members: vec![1],
        },
    );
    tracer.record(
        10,
        EventKind::Verdict {
            safe: true,
            kind: None,
            detail: None,
            phase: 0,
        },
    );
    tracer.record(20, EventKind::RunEnd { committed: 0 });
    let report = audit_events(&tracer.take());
    assert!(report.consistent, "errors: {:?}", report.errors);
    assert!(report.divergence.is_none());
}
