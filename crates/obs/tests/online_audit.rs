//! Online-plane guarantees, property-tested.
//!
//! Two claims carry the live observability plane:
//!
//! 1. **Merge determinism** — however per-node streams interleave on
//!    the wire (push order, poll timing, close timing), the
//!    [`StreamMerger`] releases the same total order, and that order is
//!    exactly what [`merge_journals`] computes from the journals on
//!    disk.
//! 2. **Online ≡ batch** — driving the audit engine over the merged
//!    stream one event at a time produces the same report as the batch
//!    auditor over the same sequence, clean or divergent.
//!
//! Together these mean a live online verdict *is* the post-mortem
//! verdict, just earlier.

use proptest::prelude::*;

use adore_obs::{
    audit_events, merge_journals, to_jsonl, EventKind, OnlineAuditor, StreamMerger, TraceEvent,
    Verdict,
};

/// A generated per-stream journal: clock-monotone stamps, mixed kinds.
fn stream_strategy() -> impl Strategy<Value = Vec<TraceEvent>> {
    prop::collection::vec((0u64..50, 0u32..4, any::<bool>()), 0..12).prop_map(|steps| {
        let mut at = 0u64;
        steps
            .into_iter()
            .map(|(dt, nid, sync)| {
                at += dt;
                let kind = if sync {
                    EventKind::WalSync { nid }
                } else {
                    EventKind::StateDelta {
                        nid,
                        term: None,
                        truncate: None,
                        append: vec![format!("\"e{nid}\"")],
                        commit_len: None,
                    }
                };
                TraceEvent::root(at, kind)
            })
            .collect()
    })
}

/// Feeds `streams` into a merger following `schedule` (which stream
/// advances next), polling after every push when `poll_each` asks for
/// it, and returns the full released order.
fn run_interleaving(
    streams: &[Vec<TraceEvent>],
    schedule: &[usize],
    polls: &[bool],
) -> Vec<TraceEvent> {
    let mut merger = StreamMerger::new(streams.len());
    let mut cursors = vec![0usize; streams.len()];
    let mut out = Vec::new();
    for (step, &pick) in schedule.iter().enumerate() {
        // Map the pick onto a stream that still has events to push.
        let remaining: Vec<usize> = (0..streams.len())
            .filter(|&s| cursors[s] < streams[s].len())
            .collect();
        let Some(&s) = remaining.get(pick % remaining.len().max(1)) else {
            break;
        };
        merger.push(s, streams[s][cursors[s]].clone());
        cursors[s] += 1;
        if cursors[s] == streams[s].len() {
            merger.close(s);
        }
        if polls.get(step).copied().unwrap_or(false) {
            out.extend(merger.poll());
        }
    }
    out.extend(merger.drain());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any two interleavings of the same per-node streams release the
    /// identical merged order, and that order is `merge_journals` of
    /// the same journals on disk.
    #[test]
    fn merge_is_interleaving_deterministic_and_matches_batch_merge(
        streams in prop::collection::vec(stream_strategy(), 1..4),
        sched_a in prop::collection::vec(0usize..8, 0..48),
        polls_a in prop::collection::vec(any::<bool>(), 0..48),
        sched_b in prop::collection::vec(0usize..8, 0..48),
        polls_b in prop::collection::vec(any::<bool>(), 0..48),
    ) {
        let total: usize = streams.iter().map(Vec::len).sum();
        // Pad schedules so every event gets pushed (drain covers the
        // tail either way, but exercise mixed poll/push orders first).
        let mut sa = sched_a; sa.resize(total, 0);
        let mut sb = sched_b; sb.resize(total, 1);
        let a = run_interleaving(&streams, &sa, &polls_a);
        let b = run_interleaving(&streams, &sb, &polls_b);
        prop_assert_eq!(&a, &b, "two interleavings released different orders");

        let texts: Vec<String> = streams.iter().map(|s| to_jsonl(s)).collect();
        let disk = merge_journals(texts.iter().map(String::as_str))
            .expect("generated journals parse");
        prop_assert_eq!(&a, &disk, "live merge diverged from merge_journals");
    }

    /// The online auditor's close-out report equals the batch auditor's
    /// over the identical merged sequence — on arbitrary generated
    /// streams, whether or not they happen to diverge.
    #[test]
    fn online_report_equals_batch_report_on_merged_streams(
        streams in prop::collection::vec(stream_strategy(), 1..4),
    ) {
        let texts: Vec<String> = streams.iter().map(|s| to_jsonl(s)).collect();
        let merged = merge_journals(texts.iter().map(String::as_str))
            .expect("generated journals parse");
        let batch = audit_events(&merged);
        let mut online = OnlineAuditor::new();
        for ev in &merged {
            let _ = online.ingest(ev);
        }
        let live = online.finish();
        prop_assert_eq!(live.consistent, batch.consistent);
        prop_assert_eq!(live.events, batch.events);
        prop_assert_eq!(live.errors, batch.errors);
        prop_assert_eq!(live.divergence, batch.divergence);
        prop_assert_eq!(live.checks, batch.checks);
    }
}

/// A divergence staged across two streams is raised by the online
/// auditor on the exact merged event that completes its evidence, and
/// the verdict survives to the final report.
#[test]
fn staged_two_stream_divergence_is_raised_at_the_completing_event() {
    let delta = |at: u64, nid: u32, entry: &str| {
        TraceEvent::root(
            at,
            EventKind::StateDelta {
                nid,
                term: None,
                truncate: None,
                append: vec![entry.to_string()],
                commit_len: Some(1),
            },
        )
    };
    let mut merger = StreamMerger::new(2);
    merger.push(0, delta(10, 1, "\"x\""));
    merger.push(1, delta(20, 2, "\"y\"")); // same slot, different entry
    let mut auditor = OnlineAuditor::new();
    let mut verdicts = Vec::new();
    for ev in merger.drain() {
        verdicts.push(auditor.ingest(&ev));
    }
    assert!(verdicts[0].is_clean());
    assert!(
        matches!(verdicts[1], Verdict::Diverged(d) if d.seq == 1),
        "divergence raised on the merged event that completed it: {verdicts:?}"
    );
    assert_eq!(auditor.flagged_at(), Some(1));
    let report = auditor.finish();
    assert!(report.divergence.is_some());
}
