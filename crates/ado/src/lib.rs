//! The original ADO model (atomic distributed objects), Appendix D.1.
//!
//! ADORE's predecessor ("Much ADO about Failures", OOPSLA 2021) models a
//! replicated object as a **persistent log** of committed methods plus a
//! **cache tree** of uncommitted ones, with per-client active-cache and
//! per-timestamp ownership maps. Its semantics is *event-sourced*: each
//! operation appends an event ([`Event`]) chosen by an oracle, and the
//! state is the fold of an interpretation function over the event list
//! (Figs. 19–23 of the paper's appendix).
//!
//! This crate reproduces that model faithfully — including the split
//! between event *generation* (oracle-gated, Fig. 21) and event
//! *interpretation* (total, Fig. 22) — both because the paper defines it
//! and because it is the baseline ADORE's evaluation compares against:
//! ADO has no configurations, no supporter metadata, and no
//! reconfiguration, which is precisely what ADORE adds.
//!
//! # Examples
//!
//! ```
//! use adore_ado::{AdoState, NodeId, PullDecision, PushDecision, Timestamp};
//!
//! let mut st: AdoState<&str> = AdoState::new();
//! // S1 wins an election at t1 over the root snapshot.
//! let snapshot = st.root_cid();
//! st.pull(NodeId(1), &PullDecision::Ok { time: Timestamp(1), snapshot }).unwrap();
//! // S1 invokes a method and commits it.
//! let put = st.invoke(NodeId(1), "put").unwrap();
//! st.push(NodeId(1), &PushDecision::Ok { target: put }).unwrap();
//! assert_eq!(st.persistent_log().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a replica/client (shared shape with `adore-core`'s ids, but
/// kept local so the ADO crate stands alone like the paper's Appendix D).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Logical timestamp of a round.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A cache identifier: `CID ≜ ⟨N_nid * N_time * CID⟩ | Root` (Fig. 19).
///
/// The recursive parent pointer is flattened into an index into an arena of
/// `(nid, time, parent)` records held by [`AdoState`]; `Cid(0)` is `Root`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cid(u32);

impl Cid {
    /// The distinguished root CID.
    pub const ROOT: Cid = Cid(0);
}

impl fmt::Display for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Cid::ROOT {
            f.write_str("Root")
        } else {
            write!(f, "c{}", self.0)
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct CidRecord {
    nid: NodeId,
    time: Timestamp,
    parent: Cid,
}

/// Ownership of a timestamp (`OwnerMap` codomain, Fig. 19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Owner {
    /// The replica that won the election at this timestamp.
    Node(NodeId),
    /// The timestamp is burned: no one may ever own it (`NoOwn`).
    NoOwn,
}

/// An ADO event (`Ev_ADO`, Fig. 19).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event<M> {
    /// `Pull⁺`: a successful election adopting the snapshot at `snapshot`.
    PullOk {
        /// The elected replica.
        nid: NodeId,
        /// The fresh timestamp.
        time: Timestamp,
        /// The adopted active cache (or root).
        snapshot: Cid,
    },
    /// `Pull*`: a failed election that still burned `time`.
    PullPreempt {
        /// The preempting candidate.
        nid: NodeId,
        /// The burned timestamp.
        time: Timestamp,
    },
    /// `Pull⁻`: an election with no effect.
    PullFail {
        /// The caller.
        nid: NodeId,
    },
    /// `Invoke⁺`: a method appended to the caller's active branch.
    InvokeOk {
        /// The caller.
        nid: NodeId,
        /// The invoked method.
        method: M,
    },
    /// `Invoke⁻`: an invocation with no effect.
    InvokeFail {
        /// The caller.
        nid: NodeId,
    },
    /// `Push⁺`: the prefix up to `target` committed.
    PushOk {
        /// The caller.
        nid: NodeId,
        /// The committed cache.
        target: Cid,
    },
    /// `Push⁻`: a commit attempt with no effect.
    PushFail {
        /// The caller.
        nid: NodeId,
    },
}

/// Oracle decision for `pull` (Fig. 20).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PullDecision {
    /// Succeed with the given fresh timestamp and state snapshot.
    Ok {
        /// The fresh timestamp (must be unowned and beyond the snapshot's).
        time: Timestamp,
        /// The adopted cache (must be in the tree, or the root).
        snapshot: Cid,
    },
    /// Fail but burn the timestamp (`Preempt`).
    Preempt {
        /// The burned timestamp (must be unowned).
        time: Timestamp,
    },
    /// Fail with no effect.
    Fail,
}

/// Oracle decision for `push` (Fig. 20).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PushDecision {
    /// Commit the prefix ending at `target`.
    Ok {
        /// The cache to commit (must belong to the caller at its current
        /// time, with the caller being the maximal owner).
        target: Cid,
    },
    /// Fail with no effect.
    Fail,
}

/// An oracle decision rejected by the valid-oracle rules of Fig. 20.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The chosen timestamp is not beyond the snapshot's timestamp.
    TimeNotFresh,
    /// The chosen timestamp already has an owner (or is burned).
    TimeOwned,
    /// The snapshot/target CID is not in the tree (nor the root).
    UnknownCid,
    /// The push target does not belong to the caller.
    NotOwnCache,
    /// The push target's timestamp is not the caller's current round.
    WrongRound,
    /// The caller is not the maximal owner — it has been preempted.
    NotMaxOwner,
    /// The caller has no active cache (it must pull first).
    NoActiveCache,
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OracleError::TimeNotFresh => "timestamp is not beyond the snapshot's",
            OracleError::TimeOwned => "timestamp is already owned or burned",
            OracleError::UnknownCid => "cid is not present in the tree",
            OracleError::NotOwnCache => "push target belongs to another replica",
            OracleError::WrongRound => "push target is from a stale round",
            OracleError::NotMaxOwner => "caller has been preempted by a newer owner",
            OracleError::NoActiveCache => "caller has no active cache",
        };
        f.write_str(s)
    }
}

impl std::error::Error for OracleError {}

/// The ADO state: persistent log, cache tree, active-cache map, and owner
/// map (`Σ_ADO`, Fig. 19), together with the event log it was folded from.
///
/// Mutations validate oracle decisions (Fig. 20), append the corresponding
/// [`Event`], and interpret it (Fig. 22). [`AdoState::replay`] re-folds the
/// event log from scratch — the executable form of `interpAll` — and is
/// asserted equal to the incrementally maintained state in tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdoState<M> {
    events: Vec<Event<M>>,
    /// Arena backing the recursive `CID` type; index 0 is `Root`.
    cids: Vec<CidRecord>,
    /// Committed methods, oldest first.
    persistent: Vec<(Cid, M)>,
    /// Uncommitted caches currently in the tree.
    tree: BTreeMap<Cid, M>,
    /// Each client's active cache.
    active: BTreeMap<NodeId, Cid>,
    /// Ownership per timestamp.
    owners: BTreeMap<Timestamp, Owner>,
}

impl<M: Clone + Eq + fmt::Debug> AdoState<M> {
    /// Creates the initial state: empty log, empty tree, no owners.
    #[must_use]
    pub fn new() -> Self {
        AdoState {
            events: Vec::new(),
            cids: vec![CidRecord {
                nid: NodeId(0),
                time: Timestamp(0),
                parent: Cid::ROOT,
            }],
            persistent: Vec::new(),
            tree: BTreeMap::new(),
            active: BTreeMap::new(),
            owners: BTreeMap::new(),
        }
    }

    /// The current root snapshot: the CID of the last committed cache, or
    /// [`Cid::ROOT`] if nothing has been committed (`root(evs)`, Fig. 23).
    #[must_use]
    pub fn root_cid(&self) -> Cid {
        self.persistent.last().map_or(Cid::ROOT, |(c, _)| *c)
    }

    /// The committed methods, oldest first (`PersistLog`).
    #[must_use]
    pub fn persistent_log(&self) -> Vec<&M> {
        self.persistent.iter().map(|(_, m)| m).collect()
    }

    /// The uncommitted caches currently in the tree.
    #[must_use]
    pub fn cache_tree(&self) -> &BTreeMap<Cid, M> {
        &self.tree
    }

    /// The event log accumulated so far.
    #[must_use]
    pub fn events(&self) -> &[Event<M>] {
        &self.events
    }

    /// The active cache of `nid`, if it has pulled since the last commit
    /// that invalidated it.
    #[must_use]
    pub fn active_cache(&self, nid: NodeId) -> Option<Cid> {
        self.active.get(&nid).copied()
    }

    /// The owner recorded at `time` (`owners(evs)[time]`).
    #[must_use]
    pub fn owner_at(&self, time: Timestamp) -> Option<Owner> {
        self.owners.get(&time).copied()
    }

    /// `noOwnerAt`: the timestamp is absent from the owner map or burned.
    #[must_use]
    pub fn no_owner_at(&self, time: Timestamp) -> bool {
        matches!(self.owners.get(&time), None | Some(Owner::NoOwn))
    }

    /// `maxOwner`: the owner entry at the largest recorded timestamp.
    #[must_use]
    pub fn max_owner(&self) -> Option<Owner> {
        self.owners.iter().next_back().map(|(_, o)| *o)
    }

    /// The timestamp recorded in `cid` (`timeOf`); root is time zero.
    #[must_use]
    pub fn time_of(&self, cid: Cid) -> Option<Timestamp> {
        self.cids.get(cid.0 as usize).map(|r| r.time)
    }

    /// The replica recorded in `cid` (`nidOf`); root reports `S0`.
    #[must_use]
    pub fn nid_of(&self, cid: Cid) -> Option<NodeId> {
        self.cids.get(cid.0 as usize).map(|r| r.nid)
    }

    /// `cid1 ≤ cid2`: ancestor-or-self on the CID parent chain (Fig. 23).
    #[must_use]
    pub fn cid_le(&self, cid1: Cid, cid2: Cid) -> bool {
        let mut cur = cid2;
        loop {
            if cur == cid1 {
                return true;
            }
            if cur == Cid::ROOT {
                return false;
            }
            cur = self.cids[cur.0 as usize].parent;
        }
    }

    fn fresh_cid(&mut self, nid: NodeId, time: Timestamp, parent: Cid) -> Cid {
        let cid = Cid(u32::try_from(self.cids.len()).expect("cid overflow"));
        self.cids.push(CidRecord { nid, time, parent });
        cid
    }

    /// `voteNoOwn`: burns every timestamp `≤ time` that has no entry yet.
    fn vote_no_own(&mut self, time: Timestamp) {
        // The paper quantifies over all unmapped t ≤ time; only timestamps
        // that could still matter are those above the current maximum, so
        // burning is recorded sparsely: a single entry at `time` suffices
        // because `no_owner_at` consults the map per-timestamp and `pull`
        // always checks its specific t. To stay faithful to `maxOwner`
        // semantics, the burn marker is written at `time` itself when empty.
        self.owners.entry(time).or_insert(Owner::NoOwn);
    }

    /// Performs `pull(nid)` under the supplied oracle decision.
    ///
    /// # Errors
    ///
    /// Returns an [`OracleError`] if the decision violates the
    /// `ValidPullOracle` rule: the snapshot must exist (or be the root),
    /// the timestamp must be strictly beyond the snapshot's, and the
    /// timestamp must be unowned.
    pub fn pull(&mut self, nid: NodeId, decision: &PullDecision) -> Result<(), OracleError> {
        match decision {
            PullDecision::Ok { time, snapshot } => {
                let known = *snapshot == self.root_cid()
                    || self.tree.contains_key(snapshot)
                    || *snapshot == Cid::ROOT;
                if !known {
                    return Err(OracleError::UnknownCid);
                }
                let snap_time = self.time_of(*snapshot).ok_or(OracleError::UnknownCid)?;
                if snap_time >= *time {
                    return Err(OracleError::TimeNotFresh);
                }
                if !self.no_owner_at(*time) {
                    return Err(OracleError::TimeOwned);
                }
                let ev = Event::PullOk {
                    nid,
                    time: *time,
                    snapshot: *snapshot,
                };
                self.events.push(ev.clone());
                self.interp(&ev);
                Ok(())
            }
            PullDecision::Preempt { time } => {
                if !self.no_owner_at(*time) {
                    return Err(OracleError::TimeOwned);
                }
                let ev = Event::PullPreempt { nid, time: *time };
                self.events.push(ev.clone());
                self.interp(&ev);
                Ok(())
            }
            PullDecision::Fail => {
                let ev = Event::PullFail { nid };
                self.events.push(ev.clone());
                self.interp(&ev);
                Ok(())
            }
        }
    }

    /// Performs `invoke(nid, method)`: appends to the caller's active
    /// branch if its active cache is still viable, otherwise records a
    /// failure event (`MethodFailure`).
    ///
    /// Returns the new cache's CID on success.
    ///
    /// # Errors
    ///
    /// [`OracleError::NoActiveCache`] if the caller has never pulled or its
    /// active cache was discarded by a commit; the failure event is still
    /// recorded, matching the paper's no-op rule.
    pub fn invoke(&mut self, nid: NodeId, method: M) -> Result<Cid, OracleError> {
        let viable = self.active.get(&nid).copied().filter(|cid| {
            self.tree.contains_key(cid) || *cid == self.root_cid() || *cid == Cid::ROOT
        });
        match viable {
            Some(_) => {
                let ev = Event::InvokeOk { nid, method };
                self.events.push(ev.clone());
                self.interp(&ev);
                Ok(self.active[&nid])
            }
            None => {
                let ev = Event::InvokeFail { nid };
                self.events.push(ev.clone());
                self.interp(&ev);
                Err(OracleError::NoActiveCache)
            }
        }
    }

    /// Performs `push(nid)` under the supplied oracle decision.
    ///
    /// # Errors
    ///
    /// Returns an [`OracleError`] if the decision violates the
    /// `ValidPushOracle` rule: the target must be an uncommitted cache of
    /// the caller at the caller's current round, and the caller must be the
    /// maximal owner.
    pub fn push(&mut self, nid: NodeId, decision: &PushDecision) -> Result<(), OracleError> {
        match decision {
            PushDecision::Ok { target } => {
                if !self.tree.contains_key(target) {
                    return Err(OracleError::UnknownCid);
                }
                if self.nid_of(*target) != Some(nid) {
                    return Err(OracleError::NotOwnCache);
                }
                // The caller's current round: the largest time it owns.
                let current = self
                    .owners
                    .iter()
                    .rev()
                    .find(|(_, o)| **o == Owner::Node(nid))
                    .map(|(t, _)| *t);
                if self.time_of(*target) != current {
                    return Err(OracleError::WrongRound);
                }
                if self.max_owner() != Some(Owner::Node(nid)) {
                    return Err(OracleError::NotMaxOwner);
                }
                let ev = Event::PushOk {
                    nid,
                    target: *target,
                };
                self.events.push(ev.clone());
                self.interp(&ev);
                Ok(())
            }
            PushDecision::Fail => {
                let ev = Event::PushFail { nid };
                self.events.push(ev.clone());
                self.interp(&ev);
                Ok(())
            }
        }
    }

    /// Interprets one event (`interp_ADO`, Fig. 22).
    fn interp(&mut self, ev: &Event<M>) {
        match ev {
            Event::PullOk {
                nid,
                time,
                snapshot,
            } => {
                self.active.insert(*nid, *snapshot);
                self.owners.insert(*time, Owner::Node(*nid));
                if time.0 > 0 {
                    self.vote_no_own(Timestamp(time.0 - 1));
                }
            }
            Event::PullPreempt { time, .. } => {
                self.vote_no_own(*time);
            }
            Event::InvokeOk { nid, method } => {
                let parent = self.active[nid];
                // The caller's round is the largest timestamp it owns.
                let time = self
                    .owners
                    .iter()
                    .rev()
                    .find(|(_, o)| **o == Owner::Node(*nid))
                    .map_or(Timestamp(0), |(t, _)| *t);
                let cid = self.fresh_cid(*nid, time, parent);
                self.tree.insert(cid, method.clone());
                self.active.insert(*nid, cid);
            }
            Event::PushOk { target, .. } => {
                // `partition(cs, ccid)`: commit the ancestors-or-self of the
                // target (sorted root-to-leaf), keep its descendants, drop
                // the sibling branches.
                let committed: Vec<Cid> = {
                    let mut chain = Vec::new();
                    let mut cur = *target;
                    while self.tree.contains_key(&cur) {
                        chain.push(cur);
                        cur = self.cids[cur.0 as usize].parent;
                    }
                    chain.reverse();
                    chain
                };
                for cid in &committed {
                    let m = self.tree.remove(cid).expect("committed cache in tree");
                    self.persistent.push((*cid, m));
                }
                let survivors: BTreeMap<Cid, M> = std::mem::take(&mut self.tree)
                    .into_iter()
                    .filter(|(cid, _)| self.cid_le(*target, *cid))
                    .collect();
                self.tree = survivors;
                // Active caches pointing at discarded branches are dropped.
                let root = self.root_cid();
                let tree = &self.tree;
                self.active
                    .retain(|_, cid| tree.contains_key(cid) || *cid == root);
            }
            Event::PullFail { .. } | Event::InvokeFail { .. } | Event::PushFail { .. } => {}
        }
    }

    /// Re-folds the entire event log from the initial state
    /// (`interpAll_ADO`, Fig. 19) and returns the result.
    ///
    /// Equality with the incrementally maintained state is the executable
    /// form of the model's fold/step coherence.
    #[must_use]
    pub fn replay(&self) -> Self {
        let mut st = AdoState::new();
        for ev in &self.events {
            // Re-interpreting recomputes CIDs deterministically because the
            // arena allocates in event order.
            st.events.push(ev.clone());
            let ev = ev.clone();
            st.interp(&ev);
        }
        st
    }
}

impl<M: Clone + Eq + fmt::Debug> Default for AdoState<M> {
    fn default() -> Self {
        AdoState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulled(st: &mut AdoState<&'static str>, nid: u32, t: u64) {
        let snapshot = st.active_cache(NodeId(nid)).unwrap_or(st.root_cid());
        st.pull(
            NodeId(nid),
            &PullDecision::Ok {
                time: Timestamp(t),
                snapshot,
            },
        )
        .unwrap();
    }

    #[test]
    fn initial_state_is_empty() {
        let st: AdoState<&str> = AdoState::new();
        assert_eq!(st.root_cid(), Cid::ROOT);
        assert!(st.persistent_log().is_empty());
        assert!(st.cache_tree().is_empty());
        assert_eq!(st.max_owner(), None);
    }

    #[test]
    fn pull_records_owner_and_active_cache() {
        let mut st: AdoState<&str> = AdoState::new();
        pulled(&mut st, 1, 1);
        assert_eq!(st.owner_at(Timestamp(1)), Some(Owner::Node(NodeId(1))));
        assert_eq!(st.active_cache(NodeId(1)), Some(Cid::ROOT));
        assert_eq!(st.max_owner(), Some(Owner::Node(NodeId(1))));
    }

    #[test]
    fn pull_rejects_owned_time() {
        let mut st: AdoState<&str> = AdoState::new();
        pulled(&mut st, 1, 1);
        let err = st
            .pull(
                NodeId(2),
                &PullDecision::Ok {
                    time: Timestamp(1),
                    snapshot: Cid::ROOT,
                },
            )
            .unwrap_err();
        assert_eq!(err, OracleError::TimeOwned);
    }

    #[test]
    fn preempt_burns_the_timestamp_and_blocks_older_pushes() {
        let mut st: AdoState<&str> = AdoState::new();
        pulled(&mut st, 1, 1);
        let a = st.invoke(NodeId(1), "a").unwrap();
        // S2's election gathers too few votes, but still takes supporters
        // away from S1: timestamp 3 is burned.
        st.pull(NodeId(2), &PullDecision::Preempt { time: Timestamp(3) })
            .unwrap();
        assert_eq!(st.owner_at(Timestamp(3)), Some(Owner::NoOwn));
        // S1 is no longer the maximal owner and cannot commit.
        assert_eq!(
            st.push(NodeId(1), &PushDecision::Ok { target: a }),
            Err(OracleError::NotMaxOwner)
        );
        // A burned timestamp carries no owner, so a later election may
        // still claim it (`noOwnerAt` treats NoOwn as vacant).
        assert!(st.no_owner_at(Timestamp(3)));
        st.pull(
            NodeId(2),
            &PullDecision::Ok {
                time: Timestamp(3),
                snapshot: Cid::ROOT,
            },
        )
        .unwrap();
        assert_eq!(st.owner_at(Timestamp(3)), Some(Owner::Node(NodeId(2))));
    }

    #[test]
    fn invoke_requires_a_pull_first() {
        let mut st: AdoState<&str> = AdoState::new();
        assert_eq!(st.invoke(NodeId(1), "m"), Err(OracleError::NoActiveCache));
        // The failure is still an event.
        assert_eq!(st.events().len(), 1);
    }

    #[test]
    fn invoke_grows_the_active_branch() {
        let mut st: AdoState<&str> = AdoState::new();
        pulled(&mut st, 1, 1);
        let c1 = st.invoke(NodeId(1), "a").unwrap();
        let c2 = st.invoke(NodeId(1), "b").unwrap();
        assert_ne!(c1, c2);
        assert!(st.cid_le(c1, c2));
        assert_eq!(st.cache_tree().len(), 2);
    }

    #[test]
    fn push_commits_prefix_and_discards_siblings() {
        let mut st: AdoState<&str> = AdoState::new();
        pulled(&mut st, 1, 1);
        let a = st.invoke(NodeId(1), "a").unwrap();
        let _b = st.invoke(NodeId(1), "b").unwrap();
        // A rival leader builds a sibling branch from the root.
        st.pull(
            NodeId(2),
            &PullDecision::Ok {
                time: Timestamp(2),
                snapshot: Cid::ROOT,
            },
        )
        .unwrap();
        let x = st.invoke(NodeId(2), "x").unwrap();
        // S2 commits x: S1's branch a·b is discarded entirely.
        st.push(NodeId(2), &PushDecision::Ok { target: x }).unwrap();
        assert_eq!(st.persistent_log(), vec![&"x"]);
        assert!(st.cache_tree().is_empty());
        assert_eq!(st.root_cid(), x);
        // S1's active cache was on a discarded branch.
        assert_eq!(st.active_cache(NodeId(1)), None);
        let _ = a;
    }

    #[test]
    fn push_partial_prefix_keeps_descendants() {
        let mut st: AdoState<&str> = AdoState::new();
        pulled(&mut st, 1, 1);
        let a = st.invoke(NodeId(1), "a").unwrap();
        let b = st.invoke(NodeId(1), "b").unwrap();
        st.push(NodeId(1), &PushDecision::Ok { target: a }).unwrap();
        assert_eq!(st.persistent_log(), vec![&"a"]);
        // b survives as a viable uncommitted suffix.
        assert!(st.cache_tree().contains_key(&b));
        assert_eq!(st.root_cid(), a);
    }

    #[test]
    fn preempted_leader_cannot_push() {
        let mut st: AdoState<&str> = AdoState::new();
        pulled(&mut st, 1, 1);
        let a = st.invoke(NodeId(1), "a").unwrap();
        // S2 takes over at t2.
        st.pull(
            NodeId(2),
            &PullDecision::Ok {
                time: Timestamp(2),
                snapshot: a,
            },
        )
        .unwrap();
        let err = st
            .push(NodeId(1), &PushDecision::Ok { target: a })
            .unwrap_err();
        assert_eq!(err, OracleError::NotMaxOwner);
    }

    #[test]
    fn push_rejects_foreign_and_stale_targets() {
        let mut st: AdoState<&str> = AdoState::new();
        pulled(&mut st, 1, 1);
        let a = st.invoke(NodeId(1), "a").unwrap();
        // S2 pulls adopting S1's cache, then invokes its own method.
        st.pull(
            NodeId(2),
            &PullDecision::Ok {
                time: Timestamp(2),
                snapshot: a,
            },
        )
        .unwrap();
        let x = st.invoke(NodeId(2), "x").unwrap();
        // S2 cannot commit S1's cache.
        assert_eq!(
            st.push(NodeId(2), &PushDecision::Ok { target: a }),
            Err(OracleError::NotOwnCache)
        );
        // But committing its own cache sweeps in the ancestor a as well.
        st.push(NodeId(2), &PushDecision::Ok { target: x }).unwrap();
        assert_eq!(st.persistent_log(), vec![&"a", &"x"]);
    }

    #[test]
    fn replay_reconstructs_the_state() {
        let mut st: AdoState<&str> = AdoState::new();
        pulled(&mut st, 1, 1);
        st.invoke(NodeId(1), "a").unwrap();
        let b = st.invoke(NodeId(1), "b").unwrap();
        st.push(NodeId(1), &PushDecision::Ok { target: b }).unwrap();
        pulled(&mut st, 1, 2);
        st.invoke(NodeId(1), "c").unwrap();
        let replayed = st.replay();
        assert_eq!(st, replayed);
    }

    #[test]
    fn failed_ops_are_noops_but_recorded() {
        let mut st: AdoState<&str> = AdoState::new();
        st.pull(NodeId(1), &PullDecision::Fail).unwrap();
        st.push(NodeId(1), &PushDecision::Fail).unwrap();
        assert_eq!(st.events().len(), 2);
        let fresh: AdoState<&str> = AdoState::new();
        assert_eq!(st.persistent_log(), fresh.persistent_log());
        assert_eq!(st.cache_tree(), fresh.cache_tree());
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(2).to_string(), "S2");
        assert_eq!(Timestamp(3).to_string(), "t3");
        assert_eq!(Cid::ROOT.to_string(), "Root");
        assert_eq!(Cid(4).to_string(), "c4");
    }
}
