//! Property-based tests for the core model: arbitrary oracle-resolved
//! operation sequences preserve the invariant suite; the cache order is a
//! total order on reachable caches; states serialize losslessly.

use adore_core::enumerate::{pull_decisions, push_decisions};
use adore_core::extensions::invoke_windowed;
use adore_core::majority::Majority;
use adore_core::{invariants, AdoreState, CacheKind, Configuration, NodeId};
use proptest::prelude::*;

type St = AdoreState<Majority, &'static str>;

/// Replays `choices` as indices into the valid-op enumeration at each
/// step, asserting the full invariant suite after every applied op.
fn run(choices: &[u16]) -> St {
    let conf0 = Majority::new([1, 2, 3]);
    let members = conf0.members();
    let mut st: St = AdoreState::new(conf0);
    for &c in choices {
        // Interleave pulls, invokes, and pushes for all callers.
        let mut acted = false;
        let kind = c % 3;
        let caller = NodeId(u32::from(c / 3 % 3) + 1);
        match kind {
            0 => {
                let ds = pull_decisions(&st, caller);
                if !ds.is_empty() {
                    let d = &ds[c as usize % ds.len()];
                    st.pull(caller, d).expect("enumerated decision");
                    acted = true;
                }
            }
            1 => {
                acted = st.invoke(caller, "m").applied().is_some();
            }
            _ => {
                let ds = push_decisions(&st, caller);
                if !ds.is_empty() {
                    let d = &ds[c as usize % ds.len()];
                    st.push(caller, d).expect("enumerated decision");
                    acted = true;
                }
            }
        }
        if acted {
            let v = invariants::check_all(&st);
            assert!(v.is_empty(), "violation: {:?}", v[0]);
        }
        let _ = members;
    }
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_runs_preserve_all_invariants(choices in prop::collection::vec(any::<u16>(), 1..40)) {
        run(&choices);
    }

    #[test]
    fn cache_order_is_total_on_reachable_caches(choices in prop::collection::vec(any::<u16>(), 1..30)) {
        let st = run(&choices);
        let ids: Vec<_> = st.tree().ids().collect();
        for &a in &ids {
            for &b in &ids {
                let ka = st.key_of(a);
                let kb = st.key_of(b);
                // Key equality on a reachable tree implies commit/target
                // pairing (a CCache shares (time, vrsn) only with its
                // target, which differs in the commit bit) or identity.
                if ka == kb && a != b {
                    prop_assert_eq!(
                        st.cache(a).kind() == CacheKind::Commit,
                        st.cache(b).kind() == CacheKind::Commit
                    );
                }
            }
        }
    }

    #[test]
    fn enumerated_decisions_are_all_valid(choices in prop::collection::vec(any::<u16>(), 1..20)) {
        let st = run(&choices);
        for caller in [NodeId(1), NodeId(2), NodeId(3)] {
            for d in pull_decisions(&st, caller) {
                let mut fork = st.clone();
                prop_assert!(fork.pull(caller, &d).is_ok());
            }
            for d in push_decisions(&st, caller) {
                let mut fork = st.clone();
                prop_assert!(fork.push(caller, &d).is_ok());
            }
        }
    }

    #[test]
    fn states_serialize_losslessly(choices in prop::collection::vec(any::<u16>(), 1..25)) {
        let st = run(&choices);
        // &'static str doesn't deserialize; round-trip through String.
        let json = serde_json::to_string(&st).expect("serialize");
        let back: AdoreState<Majority, String> = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(st.tree().len(), back.tree().len());
        prop_assert_eq!(serde_json::to_string(&back).expect("serialize"), json);
    }

    #[test]
    fn committed_logs_of_replays_are_prefix_closed(
        choices in prop::collection::vec(any::<u16>(), 2..30),
        cut in 1usize..29,
    ) {
        let cut = cut.min(choices.len() - 1);
        let short = run(&choices[..cut]);
        let long = run(&choices);
        let s = short.committed_log();
        let l = long.committed_log();
        prop_assert!(s.len() <= l.len());
        prop_assert_eq!(&l[..s.len()], &s[..]);
    }

    #[test]
    fn windowed_invocations_never_exceed_alpha(
        choices in prop::collection::vec(any::<u16>(), 1..25),
        alpha in 1usize..4,
    ) {
        let conf0 = Majority::new([1, 2, 3]);
        let mut st: St = AdoreState::new(conf0);
        for &c in &choices {
            let caller = NodeId(u32::from(c % 3) + 1);
            match c % 4 {
                0 => {
                    let ds = pull_decisions(&st, caller);
                    if !ds.is_empty() {
                        st.pull(caller, &ds[c as usize % ds.len()]).expect("valid");
                    }
                }
                1 | 2 => {
                    let _ = invoke_windowed(&mut st, caller, "m", alpha);
                }
                _ => {
                    let ds = push_decisions(&st, caller);
                    if !ds.is_empty() {
                        st.push(caller, &ds[c as usize % ds.len()]).expect("valid");
                    }
                }
            }
            // The window property: no branch carries more than `alpha`
            // uncommitted commands.
            for leaf in st.tree().leaves().collect::<Vec<_>>() {
                let mut uncommitted = 0;
                for anc in st.tree().ancestors_inclusive(leaf) {
                    match st.cache(anc).kind() {
                        CacheKind::Method | CacheKind::Reconfig => uncommitted += 1,
                        CacheKind::Commit | CacheKind::Genesis => break,
                        CacheKind::Election => {}
                    }
                }
                prop_assert!(uncommitted <= alpha, "branch carries {uncommitted} > α");
            }
        }
    }
}
