//! Direct construction of (possibly ill-formed) cache trees.
//!
//! The operational semantics can only reach *valid* states, which makes it
//! impossible to test that the invariant checkers in [`crate::invariants`]
//! would actually fire on the states the lemmas rule out. [`StateBuilder`]
//! assembles arbitrary trees — including ones no protocol run could
//! produce — so the checkers themselves can be falsification-tested, and
//! downstream users can write invariant tests against hand-drawn
//! paper-style figures.
//!
//! A built state is an ordinary [`AdoreState`]; nothing stops you from
//! continuing to drive it through the real operations afterwards (the
//! semantics validates its own preconditions per usual).
//!
//! # Examples
//!
//! Build Fig. 12's final (unsafe) tree directly and watch safety fail:
//!
//! ```
//! use adore_core::builder::StateBuilder;
//! use adore_core::majority::Majority;
//! use adore_core::{invariants, node_set, NodeId, Timestamp};
//!
//! let cf4 = Majority::new([1, 2, 3, 4]);
//! let cf3a = Majority::new([1, 2, 3]);
//! let cf3b = Majority::new([1, 2, 4]);
//! let mut b = StateBuilder::new(cf4.clone());
//! let e1 = b.election(0, NodeId(1), Timestamp(1), [1, 2, 3], cf4.clone());
//! let r1 = b.reconfig(e1, NodeId(1), Timestamp(1), 1, cf3a.clone());
//! let e2 = b.election(0, NodeId(2), Timestamp(2), [2, 3, 4], cf4);
//! let r2 = b.reconfig(e2, NodeId(2), Timestamp(2), 1, cf3b.clone());
//! let _c2 = b.commit(r2, NodeId(2), [2, 4], cf3b);
//! let e3 = b.election(r1, NodeId(1), Timestamp(3), [1, 3], cf3a.clone());
//! let m = b.method(e3, NodeId(1), Timestamp(3), 1, "overwrite", cf3a.clone());
//! let _c3 = b.commit(m, NodeId(1), [1, 3], cf3a);
//! let st = b.build();
//! assert!(invariants::check_safety(&st).is_err());
//! # let _ = node_set([1]);
//! ```

use adore_tree::CacheId;

use crate::cache::Cache;
use crate::config::{Configuration, NodeId, Timestamp, Version};
use crate::state::AdoreState;

/// Builds [`AdoreState`]s node by node, without semantic validation.
///
/// Node indices: the genesis root is id 0 (`adore_tree::Tree::ROOT`); each
/// `election`/`method`/`reconfig`/`commit` call appends one cache and
/// returns its id. Parents are given as raw indices (`usize`) for
/// ergonomic literal trees.
#[derive(Debug, Clone)]
pub struct StateBuilder<C, M> {
    st: AdoreState<C, M>,
}

impl<C: Configuration, M: Clone> StateBuilder<C, M> {
    /// Starts from a genesis root under `conf0`.
    #[must_use]
    pub fn new(conf0: C) -> Self {
        StateBuilder {
            st: AdoreState::new(conf0),
        }
    }

    fn attach(&mut self, parent: usize, cache: Cache<C, M>) -> usize {
        self.st
            .attach_raw(CacheId::from_index(parent), cache)
            .index()
    }

    /// Appends an `ECache` under `parent`, recording its voters' observed
    /// times like a real election would.
    pub fn election<I: IntoIterator<Item = u32>>(
        &mut self,
        parent: usize,
        caller: NodeId,
        time: Timestamp,
        supporters: I,
        config: C,
    ) -> usize {
        let supporters = crate::config::node_set(supporters);
        self.st.set_times_raw(&supporters, time);
        self.attach(
            parent,
            Cache::Election {
                caller,
                time,
                supporters,
                config,
            },
        )
    }

    /// Appends an `MCache` under `parent`.
    pub fn method(
        &mut self,
        parent: usize,
        caller: NodeId,
        time: Timestamp,
        vrsn: u64,
        method: M,
        config: C,
    ) -> usize {
        self.attach(
            parent,
            Cache::Method {
                caller,
                time,
                vrsn: Version(vrsn),
                method,
                config,
            },
        )
    }

    /// Appends an `RCache` under `parent` carrying `new_config`.
    pub fn reconfig(
        &mut self,
        parent: usize,
        caller: NodeId,
        time: Timestamp,
        vrsn: u64,
        new_config: C,
    ) -> usize {
        self.attach(
            parent,
            Cache::Reconfig {
                caller,
                time,
                vrsn: Version(vrsn),
                config: new_config,
            },
        )
    }

    /// Appends a `CCache` under `parent`, copying the parent's time and
    /// version like a real push would, and recording the supporters'
    /// observed times.
    pub fn commit<I: IntoIterator<Item = u32>>(
        &mut self,
        parent: usize,
        caller: NodeId,
        supporters: I,
        config: C,
    ) -> usize {
        let p = self.st.cache(CacheId::from_index(parent));
        let (time, vrsn) = (p.time(), p.vrsn());
        let supporters = crate::config::node_set(supporters);
        self.st.set_times_raw(&supporters, time);
        self.attach(
            parent,
            Cache::Commit {
                caller,
                time,
                vrsn,
                supporters,
                config,
            },
        )
    }

    /// Appends an arbitrary cache verbatim (no bookkeeping at all) —
    /// the sharpest tool for drawing ill-formed states.
    pub fn raw(&mut self, parent: usize, cache: Cache<C, M>) -> usize {
        self.attach(parent, cache)
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> AdoreState<C, M> {
        self.st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::{self, Violation};
    use crate::majority::Majority;

    type B = StateBuilder<Majority, &'static str>;

    fn cf() -> Majority {
        Majority::new([1, 2, 3])
    }

    /// Every lemma checker fires on a tree drawn to violate exactly it —
    /// the falsification tests that the operational semantics cannot
    /// provide (it never reaches these states).
    #[test]
    fn safety_checker_fires_on_diverging_commits() {
        let mut b = B::new(cf());
        let e1 = b.election(0, NodeId(1), Timestamp(1), [1, 2], cf());
        let m1 = b.method(e1, NodeId(1), Timestamp(1), 1, "a", cf());
        let _c1 = b.commit(m1, NodeId(1), [1, 2], cf());
        let e2 = b.election(0, NodeId(3), Timestamp(2), [2, 3], cf());
        let m2 = b.method(e2, NodeId(3), Timestamp(2), 1, "b", cf());
        let _c2 = b.commit(m2, NodeId(3), [2, 3], cf());
        let st = b.build();
        assert!(matches!(
            invariants::check_safety(&st),
            Err(Violation::CommitsDiverge { .. })
        ));
    }

    #[test]
    fn descendant_order_checker_fires_on_time_inversion() {
        let mut b = B::new(cf());
        let e1 = b.election(0, NodeId(1), Timestamp(5), [1, 2], cf());
        // A child whose timestamp goes backwards: impossible operationally.
        b.method(e1, NodeId(1), Timestamp(2), 1, "back", cf());
        let st = b.build();
        assert!(matches!(
            invariants::check_descendant_order(&st),
            Err(Violation::OrderInversion { .. })
        ));
    }

    #[test]
    fn leader_time_uniqueness_checker_fires_on_duplicate_terms() {
        let mut b = B::new(cf());
        b.election(0, NodeId(1), Timestamp(1), [1, 2], cf());
        b.election(0, NodeId(2), Timestamp(1), [2, 3], cf());
        let st = b.build();
        assert!(matches!(
            invariants::check_leader_time_uniqueness(&st, 0),
            Err(Violation::DuplicateLeaderTime { .. })
        ));
    }

    #[test]
    fn election_commit_order_checker_fires_on_missed_commit() {
        let mut b = B::new(cf());
        let e1 = b.election(0, NodeId(1), Timestamp(1), [1, 2], cf());
        let m1 = b.method(e1, NodeId(1), Timestamp(1), 1, "a", cf());
        b.commit(m1, NodeId(1), [1, 2], cf());
        // A later election that forks BEFORE the commit: outranks it
        // without descending from it.
        b.election(0, NodeId(3), Timestamp(2), [2, 3], cf());
        let st = b.build();
        assert!(matches!(
            invariants::check_election_commit_order(&st, 0),
            Err(Violation::ElectionCommitOrder { .. })
        ));
    }

    #[test]
    fn fork_commit_checker_fires_on_commitless_rcache_fork() {
        let mut b = B::new(cf());
        let e1 = b.election(0, NodeId(1), Timestamp(1), [1, 2], cf());
        b.reconfig(e1, NodeId(1), Timestamp(1), 1, cf());
        let e2 = b.election(0, NodeId(2), Timestamp(2), [2, 3], cf());
        b.reconfig(e2, NodeId(2), Timestamp(2), 1, cf());
        let st = b.build();
        assert!(matches!(
            invariants::check_ccache_in_rcache_fork(&st),
            Err(Violation::MissingForkCommit { .. })
        ));
    }

    #[test]
    fn structure_checker_fires_on_version_gaps() {
        let mut b = B::new(cf());
        let e1 = b.election(0, NodeId(1), Timestamp(1), [1, 2], cf());
        // Version jumps from 0 to 7: not parent's plus one.
        b.method(e1, NodeId(1), Timestamp(1), 7, "gap", cf());
        let st = b.build();
        assert!(matches!(
            invariants::check_structure(&st),
            Err(Violation::Structural { .. })
        ));
    }

    #[test]
    fn structure_checker_fires_on_foreign_supporters() {
        let mut b = B::new(cf());
        // Supporters outside the configuration's membership.
        b.election(0, NodeId(1), Timestamp(1), [1, 9], cf());
        let st = b.build();
        assert!(matches!(
            invariants::check_structure(&st),
            Err(Violation::Structural { .. })
        ));
    }

    #[test]
    fn built_states_can_continue_through_real_operations() {
        use crate::state::{PullDecision, PullOutcome};
        let mut b = B::new(cf());
        let e1 = b.election(0, NodeId(1), Timestamp(1), [1, 2], cf());
        let m1 = b.method(e1, NodeId(1), Timestamp(1), 1, "a", cf());
        b.commit(m1, NodeId(1), [1, 2], cf());
        let mut st = b.build();
        assert!(invariants::check_all(&st).is_empty());
        // Drive the real semantics from the built state.
        let out = st
            .pull(
                NodeId(2),
                &PullDecision::Ok {
                    supporters: crate::config::node_set([2, 3]),
                    time: Timestamp(2),
                },
            )
            .unwrap();
        assert!(matches!(out, PullOutcome::Elected(_)));
        assert!(invariants::check_all(&st).is_empty());
    }
}
