//! CADO: the configuration-aware model **without** reconfiguration.
//!
//! The paper obtains CADO from ADORE by deleting everything marked in blue:
//! the `reconfig` operation and the `RCache` variant. Here the same
//! restriction is expressed as a newtype that statically rules the
//! operation out — a [`CadoState`] can only grow election, method, and
//! commit caches, so its trees always have `tree_rdist = 0` and the
//! rdist-0 lemmas apply unconditionally.
//!
//! CADO is also the model whose verification cost the evaluation (§7)
//! compares against full ADORE; the `effort_table` bench regenerates that
//! comparison.

use serde::{Deserialize, Serialize};

use adore_tree::CacheId;

use crate::config::{Configuration, NodeId};
use crate::state::{
    AdoreState, LocalOutcome, OracleError, PullDecision, PullOutcome, PushDecision, PushOutcome,
};

/// An ADORE state that statically forbids reconfiguration.
///
/// All accessors of [`AdoreState`] are reachable through
/// [`CadoState::inner`]; only the mutating subset excluding `reconfig` is
/// re-exposed.
///
/// # Examples
///
/// ```
/// use adore_core::cado::CadoState;
/// use adore_core::majority::Majority;
/// use adore_core::{node_set, NodeId, PullDecision, Timestamp};
///
/// let mut st: CadoState<Majority, &str> = CadoState::new(Majority::new([1, 2, 3]));
/// st.pull(NodeId(1), &PullDecision::Ok {
///     supporters: node_set([1, 2]),
///     time: Timestamp(1),
/// })?;
/// st.invoke(NodeId(1), "put");
/// assert_eq!(adore_core::invariants::tree_rdist(st.inner()), 0);
/// # Ok::<(), adore_core::OracleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CadoState<C, M>(AdoreState<C, M>);

impl<C: Configuration, M: Clone> CadoState<C, M> {
    /// Creates the initial CADO state under `conf0`.
    #[must_use]
    pub fn new(conf0: C) -> Self {
        CadoState(AdoreState::new(conf0))
    }

    /// Read-only access to the underlying ADORE state.
    #[must_use]
    pub fn inner(&self) -> &AdoreState<C, M> {
        &self.0
    }

    /// Unwraps into the underlying ADORE state (after which reconfiguration
    /// becomes possible again).
    #[must_use]
    pub fn into_inner(self) -> AdoreState<C, M> {
        self.0
    }

    /// `pull`: see [`AdoreState::pull`].
    ///
    /// # Errors
    ///
    /// Propagates [`OracleError`] from the underlying semantics.
    pub fn pull(
        &mut self,
        nid: NodeId,
        decision: &PullDecision,
    ) -> Result<PullOutcome, OracleError> {
        self.0.pull(nid, decision)
    }

    /// `invoke`: see [`AdoreState::invoke`].
    pub fn invoke(&mut self, nid: NodeId, method: M) -> LocalOutcome {
        self.0.invoke(nid, method)
    }

    /// `push`: see [`AdoreState::push`].
    ///
    /// # Errors
    ///
    /// Propagates [`OracleError`] from the underlying semantics.
    pub fn push(
        &mut self,
        nid: NodeId,
        decision: &PushDecision,
    ) -> Result<PushOutcome, OracleError> {
        self.0.push(nid, decision)
    }

    /// The new cache id helper mirroring [`LocalOutcome::applied`] for
    /// convenience in straight-line client code.
    #[must_use]
    pub fn last_cache(&self) -> CacheId {
        let mut last = adore_tree::Tree::<()>::ROOT;
        for id in self.0.tree().ids() {
            last = id;
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{node_set, Timestamp};
    use crate::invariants;
    use crate::majority::Majority;

    #[test]
    fn cado_runs_elections_and_commits() {
        let mut st: CadoState<Majority, &str> = CadoState::new(Majority::new([1, 2, 3]));
        let out = st
            .pull(
                NodeId(1),
                &PullDecision::Ok {
                    supporters: node_set([1, 2]),
                    time: Timestamp(1),
                },
            )
            .unwrap();
        let PullOutcome::Elected(_) = out else {
            panic!("expected election");
        };
        let m = st.invoke(NodeId(1), "a").applied().unwrap();
        let out = st
            .push(
                NodeId(1),
                &PushDecision::Ok {
                    supporters: node_set([1, 2]),
                    target: m,
                },
            )
            .unwrap();
        assert!(matches!(out, PushOutcome::Committed(_)));
        assert!(invariants::check_all(st.inner()).is_empty());
        assert_eq!(invariants::tree_rdist(st.inner()), 0);
    }

    #[test]
    fn into_inner_round_trips() {
        let st: CadoState<Majority, ()> = CadoState::new(Majority::new([1]));
        let inner = st.clone().into_inner();
        assert_eq!(&inner, st.inner());
    }
}
