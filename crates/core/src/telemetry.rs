//! Process-wide observability counters for the protocol core.
//!
//! The quantities here are *measurements about* the protocol, never
//! inputs to it: incrementing or reading them cannot influence a
//! transition, so determinism of seeded runs is unaffected. They are
//! plain relaxed atomics — cheap enough to leave permanently enabled —
//! and monotone over the process lifetime, so consumers (the
//! `adore-obs` metrics registry) record *deltas* around the region
//! they measure rather than absolute values (the test harness runs
//! many clusters in one process).

use std::sync::atomic::{AtomicU64, Ordering};

/// Quorum predicate evaluations (`isQuorum` at protocol decision
/// points: vote counting, commit acknowledgement counting).
static QUORUM_CHECKS: AtomicU64 = AtomicU64::new(0);

/// Records one quorum predicate evaluation.
#[inline]
pub fn count_quorum_check() {
    QUORUM_CHECKS.fetch_add(1, Ordering::Relaxed);
}

/// Total quorum predicate evaluations so far in this process.
#[must_use]
pub fn quorum_checks() -> u64 {
    QUORUM_CHECKS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_counter_is_monotone() {
        let before = quorum_checks();
        count_quorum_check();
        count_quorum_check();
        assert!(quorum_checks() >= before + 2);
    }
}
