//! Exhaustive enumeration of valid oracle decisions.
//!
//! The pull/push oracles of Fig. 11/27 are the only sources of
//! nondeterminism in ADORE. Enumerating every decision they could validly
//! return turns [`AdoreState`] into a finitely-branching
//! transition system, which is what the `adore-checker` crate explores
//! exhaustively.
//!
//! # Timestamp canonicalization
//!
//! A valid pull may draw *any* timestamp strictly greater than every
//! supporter's observed time. All such draws produce order-isomorphic
//! futures (the semantics only ever compares timestamps), so the
//! enumeration returns only the **minimal** fresh timestamp. This is a
//! standard symmetry reduction; it preserves reachability of every safety
//! violation because violations are invariant under order-preserving
//! timestamp renaming.

use crate::config::{Configuration, NodeId, NodeSet};
use crate::state::{AdoreState, PullDecision, PushDecision};

/// All non-empty subsets of `universe` that contain `required`.
///
/// The universes in question are configuration member sets, which realistic
/// model-checking instances keep below ~8 nodes; the count is `2^(n-1)`.
///
/// # Examples
///
/// ```
/// use adore_core::enumerate::subsets_containing;
/// use adore_core::{node_set, NodeId};
/// let subs = subsets_containing(&node_set([1, 2, 3]), NodeId(1));
/// assert_eq!(subs.len(), 4); // {1}, {1,2}, {1,3}, {1,2,3}
/// ```
#[must_use]
pub fn subsets_containing(universe: &NodeSet, required: NodeId) -> Vec<NodeSet> {
    if !universe.contains(&required) {
        return Vec::new();
    }
    let others: Vec<NodeId> = universe
        .iter()
        .copied()
        .filter(|n| *n != required)
        .collect();
    let mut out = Vec::with_capacity(1 << others.len());
    for mask in 0u64..(1u64 << others.len()) {
        let mut set: NodeSet = std::iter::once(required).collect();
        for (i, &n) in others.iter().enumerate() {
            if mask & (1 << i) != 0 {
                set.insert(n);
            }
        }
        out.push(set);
    }
    out
}

/// Every valid successful pull decision for `caller`, with the canonical
/// minimal timestamp (see the module docs).
///
/// A decision is emitted for each supporter set `Q` such that the
/// `ValidPullOracle` rule accepts it: `caller ∈ Q`, `mostRecent(Q)` exists,
/// and `Q ⊆ mbrs(conf(mostRecent(Q)))`. Both quorum and non-quorum sets are
/// included — the semantics decides which outcome they produce.
///
/// # Examples
///
/// ```
/// use adore_core::enumerate::pull_decisions;
/// use adore_core::majority::Majority;
/// use adore_core::{AdoreState, NodeId};
/// let st: AdoreState<Majority, ()> = AdoreState::new(Majority::new([1, 2, 3]));
/// // S1 with each subset of {S2, S3}: four valid decisions.
/// assert_eq!(pull_decisions(&st, NodeId(1)).len(), 4);
/// ```
#[must_use]
pub fn pull_decisions<C: Configuration, M: Clone>(
    st: &AdoreState<C, M>,
    caller: NodeId,
) -> Vec<PullDecision> {
    let universe = st.known_nodes();
    let mut out = Vec::new();
    for supporters in subsets_containing(&universe, caller) {
        let Some(max_id) = st.most_recent(&supporters) else {
            continue;
        };
        if !supporters.is_subset(&st.cache(max_id).config().members()) {
            continue;
        }
        let time = supporters
            .iter()
            .map(|s| st.observed_time(*s))
            .max()
            .expect("supporter set is non-empty")
            .next();
        out.push(PullDecision::Ok { supporters, time });
    }
    out
}

/// Every valid successful push decision for `caller`.
///
/// A decision is emitted for each commit target satisfying `canCommit` and
/// each supporter set within the target configuration's members whose
/// observed times do not exceed the target's timestamp.
///
/// # Examples
///
/// ```
/// use adore_core::enumerate::push_decisions;
/// use adore_core::majority::Majority;
/// use adore_core::{AdoreState, NodeId};
/// let st: AdoreState<Majority, ()> = AdoreState::new(Majority::new([1, 2, 3]));
/// // Nothing to commit in the initial state.
/// assert!(push_decisions(&st, NodeId(1)).is_empty());
/// ```
#[must_use]
pub fn push_decisions<C: Configuration, M: Clone>(
    st: &AdoreState<C, M>,
    caller: NodeId,
) -> Vec<PushDecision> {
    let mut out = Vec::new();
    for target in st.tree().ids() {
        if !st.can_commit(target, caller) {
            continue;
        }
        let cache = st.cache(target);
        let time = cache.time();
        let members = cache.config().members();
        for supporters in subsets_containing(&members, caller) {
            if supporters.iter().all(|s| st.observed_time(*s) <= time) {
                out.push(PushDecision::Ok { supporters, target });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::node_set;
    use crate::majority::Majority;
    use crate::state::{PullOutcome, PushOutcome};
    use crate::Timestamp;

    type St = AdoreState<Majority, &'static str>;

    fn three() -> St {
        AdoreState::new(Majority::new([1, 2, 3]))
    }

    #[test]
    fn subsets_containing_excludes_foreign_required() {
        assert!(subsets_containing(&node_set([2, 3]), NodeId(1)).is_empty());
        assert_eq!(subsets_containing(&node_set([1]), NodeId(1)).len(), 1);
    }

    #[test]
    fn every_enumerated_pull_decision_is_accepted() {
        let mut st = three();
        // Advance the state a bit first.
        let d = PullDecision::Ok {
            supporters: node_set([1, 2]),
            time: Timestamp(1),
        };
        st.pull(NodeId(1), &d).unwrap();
        st.invoke(NodeId(1), "x");
        for caller in [NodeId(1), NodeId(2), NodeId(3)] {
            for d in pull_decisions(&st, caller) {
                let mut fork = st.clone();
                let out = fork.pull(caller, &d).expect("enumerated decision rejected");
                assert!(!matches!(out, PullOutcome::Failed));
            }
        }
    }

    #[test]
    fn every_enumerated_push_decision_is_accepted() {
        let mut st = three();
        st.pull(
            NodeId(1),
            &PullDecision::Ok {
                supporters: node_set([1, 2]),
                time: Timestamp(1),
            },
        )
        .unwrap();
        st.invoke(NodeId(1), "x");
        st.invoke(NodeId(1), "y");
        let ds = push_decisions(&st, NodeId(1));
        // Two commit targets ("x" and "y"), four subsets each.
        assert_eq!(ds.len(), 8);
        for d in ds {
            let mut fork = st.clone();
            let out = fork
                .push(NodeId(1), &d)
                .expect("enumerated decision rejected");
            assert!(!matches!(out, PushOutcome::Failed));
        }
        // Other nodes have nothing to commit.
        assert!(push_decisions(&st, NodeId(2)).is_empty());
    }

    #[test]
    fn pull_timestamps_are_minimal_fresh() {
        let mut st = three();
        st.pull(
            NodeId(1),
            &PullDecision::Ok {
                supporters: node_set([1, 2]),
                time: Timestamp(4),
            },
        )
        .unwrap();
        for d in pull_decisions(&st, NodeId(3)) {
            let PullDecision::Ok { supporters, time } = &d else {
                unreachable!()
            };
            let max_seen = supporters
                .iter()
                .map(|s| st.observed_time(*s))
                .max()
                .unwrap();
            assert_eq!(*time, max_seen.next());
        }
    }
}
