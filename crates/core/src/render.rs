//! Cache-tree visualization: Graphviz DOT export.
//!
//! The ASCII rendering ([`crate::AdoreState::render_tree`]) covers quick
//! terminal inspection; [`to_dot`] produces publication-style figures in
//! the visual language of the paper — elections and genesis as houses,
//! methods as circles, reconfigurations as double circles, commits as
//! squares (the paper draws committed methods as squares in Fig. 1).

use std::fmt::Write as _;

use adore_tree::Tree;

use crate::cache::CacheKind;
use crate::config::Configuration;
use crate::state::AdoreState;

/// Renders the cache tree as a Graphviz `digraph`.
///
/// Pipe the output through `dot -Tsvg` to obtain a figure; node shapes
/// follow the paper's conventions (squares for commits, circles for
/// methods, double circles for reconfigurations).
///
/// # Examples
///
/// ```
/// use adore_core::majority::Majority;
/// use adore_core::{render::to_dot, AdoreState};
///
/// let st: AdoreState<Majority, &str> = AdoreState::new(Majority::new([1, 2]));
/// let dot = to_dot(&st);
/// assert!(dot.starts_with("digraph cache_tree {"));
/// assert!(dot.contains("G(t0 v0)"));
/// ```
#[must_use]
pub fn to_dot<C: Configuration, M: Clone + std::fmt::Debug>(st: &AdoreState<C, M>) -> String {
    let mut out = String::from("digraph cache_tree {\n");
    out.push_str("  rankdir=TB;\n  node [fontname=\"monospace\", fontsize=10];\n");
    for (id, cache) in st.tree().iter() {
        let (shape, fill) = match cache.kind() {
            CacheKind::Genesis => ("house", "lightgray"),
            CacheKind::Election => ("house", "lightyellow"),
            CacheKind::Method => ("ellipse", "white"),
            CacheKind::Reconfig => ("doublecircle", "lightblue"),
            CacheKind::Commit => ("box", "lightgreen"),
        };
        let label = cache.summary().replace('"', "'");
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", shape={}, style=filled, fillcolor={}];",
            id.index(),
            label,
            shape,
            fill
        );
    }
    for id in st.tree().ids() {
        if let Some(parent) = st.tree().parent(id) {
            let _ = writeln!(out, "  n{} -> n{};", parent.index(), id.index());
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a bare tree of summaries (used by tooling that works with
/// trees of pre-rendered labels rather than full states).
///
/// # Examples
///
/// ```
/// use adore_core::render::labels_to_dot;
/// use adore_core::Tree;
///
/// let mut tree = Tree::new("root".to_string());
/// tree.add_leaf(Tree::<String>::ROOT, "child".to_string()).unwrap();
/// let dot = labels_to_dot(&tree);
/// assert!(dot.contains("n0 -> n1"));
/// ```
#[must_use]
pub fn labels_to_dot(tree: &Tree<String>) -> String {
    let mut out = String::from("digraph cache_tree {\n  node [fontname=\"monospace\"];\n");
    for (id, label) in tree.iter() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"];",
            id.index(),
            label.replace('"', "'")
        );
    }
    for id in tree.ids() {
        if let Some(parent) = tree.parent(id) {
            let _ = writeln!(out, "  n{} -> n{};", parent.index(), id.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{node_set, NodeId, Timestamp};
    use crate::majority::Majority;
    use crate::state::{PullDecision, PushDecision};

    #[test]
    fn dot_contains_every_cache_and_edge() {
        let mut st: AdoreState<Majority, &str> = AdoreState::new(Majority::new([1, 2, 3]));
        st.pull(
            NodeId(1),
            &PullDecision::Ok {
                supporters: node_set([1, 2]),
                time: Timestamp(1),
            },
        )
        .unwrap();
        let m = st.invoke(NodeId(1), "a").applied().unwrap();
        st.push(
            NodeId(1),
            &PushDecision::Ok {
                supporters: node_set([1, 2]),
                target: m,
            },
        )
        .unwrap();
        let dot = to_dot(&st);
        // Four nodes (genesis, election, method, commit), three edges.
        assert_eq!(dot.matches("shape=").count(), 4);
        assert_eq!(dot.matches(" -> ").count(), 3);
        assert!(dot.contains("shape=box")); // the commit
        assert!(!dot.contains("doublecircle")); // no reconfig yet
    }

    #[test]
    fn dot_escapes_quotes_in_labels() {
        let mut st: AdoreState<Majority, &str> = AdoreState::new(Majority::new([1, 2]));
        st.pull(
            NodeId(1),
            &PullDecision::Ok {
                supporters: node_set([1, 2]),
                time: Timestamp(1),
            },
        )
        .unwrap();
        st.invoke(NodeId(1), "say \"hi\"").applied().unwrap();
        let dot = to_dot(&st);
        assert!(!dot.contains("\\\"hi\\\"\"]") || !dot.contains("say \"hi\""));
    }
}
