//! Alternative reconfiguration styles sketched in §8 of the paper,
//! implemented as conservative extensions of the core semantics.
//!
//! * **Stop-the-world** (Stoppable Paxos / WormSpace style): once a
//!   reconfiguration commits, "delete all caches not on the active
//!   branch ..., which simulates copying the committed commands to a new
//!   cluster of servers". [`push_stop_the_world`] performs a normal `push`
//!   and, when the committed prefix contains an `RCache`, prunes every
//!   sibling branch.
//! * **Lamport's α-window** (Reconfiguring a State Machine, "easy"
//!   approach): a command committed in instance *i* takes effect at
//!   *i + α*, so at most α instances may run ahead. [`invoke_windowed`]
//!   blocks invocations once the active branch carries α uncommitted
//!   caches — the paper's "block new methods from being invoked on an
//!   active branch that has α uncommitted caches".
//!
//! Both extensions only ever *restrict* behavior relative to the core
//! model (they remove branches or refuse operations), so every safety
//! invariant of the core proof carries over — which the tests check.

use std::collections::BTreeMap;

use adore_tree::CacheId;

use crate::cache::CacheKind;
use crate::config::{Configuration, NodeId};
use crate::state::{AdoreState, LocalOutcome, NoOpReason, OracleError, PushDecision, PushOutcome};

/// Outcome of a stop-the-world push: the plain outcome plus, on a commit
/// that contained a reconfiguration, the id remapping from the prune.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StopTheWorldOutcome {
    /// The underlying push outcome. On `Committed`, the id refers to the
    /// tree *after* pruning if `remap` is present.
    pub outcome: PushOutcome,
    /// Present when a committed `RCache` triggered a prune: maps old cache
    /// ids to their post-prune ids (absent ids were deleted).
    pub remap: Option<BTreeMap<CacheId, CacheId>>,
}

/// `push` with stop-the-world reconfiguration semantics (§8).
///
/// Behaves exactly like [`AdoreState::push`]; additionally, if the newly
/// committed prefix contains an `RCache`, every cache not on the committed
/// branch is deleted — the old configuration can no longer act, giving a
/// clean break between configurations. Cache ids are compacted; use the
/// returned remapping to translate ids held across the call.
///
/// # Errors
///
/// Propagates [`OracleError`] from the underlying push (state unchanged).
///
/// # Examples
///
/// ```
/// use adore_core::extensions::push_stop_the_world;
/// use adore_core::majority::Majority;
/// use adore_core::{node_set, AdoreState, NodeId, PullDecision, PushDecision, Timestamp};
///
/// let mut st: AdoreState<Majority, &str> = AdoreState::new(Majority::new([1, 2, 3]));
/// st.pull(NodeId(1), &PullDecision::Ok { supporters: node_set([1, 2]), time: Timestamp(1) })?;
/// let m = st.invoke(NodeId(1), "m").applied().unwrap();
/// let out = push_stop_the_world(&mut st, NodeId(1), &PushDecision::Ok {
///     supporters: node_set([1, 2]),
///     target: m,
/// })?;
/// // No RCache in the prefix: an ordinary commit, no prune.
/// assert!(out.remap.is_none());
/// # Ok::<(), adore_core::OracleError>(())
/// ```
pub fn push_stop_the_world<C: Configuration, M: Clone>(
    st: &mut AdoreState<C, M>,
    nid: NodeId,
    decision: &PushDecision,
) -> Result<StopTheWorldOutcome, OracleError> {
    let outcome = st.push(nid, decision)?;
    let PushOutcome::Committed(ccache) = outcome else {
        return Ok(StopTheWorldOutcome {
            outcome,
            remap: None,
        });
    };
    // Did this commit certify a reconfiguration? Look for an RCache on the
    // newly committed branch above the CCache, below the previous commit.
    let mut saw_rcache = false;
    for anc in st.tree().ancestors_inclusive(ccache).skip(1) {
        match st.cache(anc).kind() {
            CacheKind::Reconfig => {
                saw_rcache = true;
                break;
            }
            // Stop at the previous commit marker: earlier RCaches were
            // handled by their own stop-the-world pushes.
            CacheKind::Commit | CacheKind::Genesis => break,
            _ => {}
        }
    }
    if !saw_rcache {
        return Ok(StopTheWorldOutcome {
            outcome,
            remap: None,
        });
    }
    let remap = st.prune_to_branch(ccache);
    let outcome = PushOutcome::Committed(remap[&ccache]);
    Ok(StopTheWorldOutcome {
        outcome,
        remap: Some(remap),
    })
}

/// `invoke` under Lamport's α-window: refuses once the active branch holds
/// `alpha` or more uncommitted method/reconfiguration caches.
///
/// With `alpha == 1` this is fully synchronous consensus (each command
/// must commit before the next is proposed); larger windows pipeline.
///
/// # Panics
///
/// Panics if `alpha` is zero — a zero window could never admit a command.
///
/// # Examples
///
/// ```
/// use adore_core::extensions::invoke_windowed;
/// use adore_core::majority::Majority;
/// use adore_core::{node_set, AdoreState, LocalOutcome, NodeId, PullDecision, Timestamp};
///
/// let mut st: AdoreState<Majority, &str> = AdoreState::new(Majority::new([1, 2, 3]));
/// st.pull(NodeId(1), &PullDecision::Ok { supporters: node_set([1, 2]), time: Timestamp(1) })?;
/// assert!(invoke_windowed(&mut st, NodeId(1), "a", 2).applied().is_some());
/// assert!(invoke_windowed(&mut st, NodeId(1), "b", 2).applied().is_some());
/// // The window is full: the third invocation is refused.
/// assert!(invoke_windowed(&mut st, NodeId(1), "c", 2).applied().is_none());
/// # Ok::<(), adore_core::OracleError>(())
/// ```
pub fn invoke_windowed<C: Configuration, M: Clone>(
    st: &mut AdoreState<C, M>,
    nid: NodeId,
    method: M,
    alpha: usize,
) -> LocalOutcome {
    assert!(alpha > 0, "the window must admit at least one command");
    let Some(active) = st.active_cache(nid) else {
        return LocalOutcome::NoOp(NoOpReason::NoActiveCache);
    };
    // Count uncommitted M/R caches on the branch: those above the last
    // commit marker.
    let mut uncommitted = 0usize;
    for anc in st.tree().ancestors_inclusive(active) {
        match st.cache(anc).kind() {
            CacheKind::Method | CacheKind::Reconfig => uncommitted += 1,
            CacheKind::Commit | CacheKind::Genesis => break,
            CacheKind::Election => {}
        }
    }
    if uncommitted >= alpha {
        return LocalOutcome::NoOp(NoOpReason::WindowFull);
    }
    st.invoke(nid, method)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{node_set, Timestamp};
    use crate::invariants;
    use crate::majority::Majority;
    use crate::state::{PullDecision, ReconfigGuard};

    type St = AdoreState<Majority, &'static str>;

    fn led(st: &mut St, nid: u32, supp: &[u32], t: u64) {
        st.pull(
            NodeId(nid),
            &PullDecision::Ok {
                supporters: node_set(supp.iter().copied()),
                time: Timestamp(t),
            },
        )
        .unwrap();
    }

    fn push(st: &mut St, nid: u32, supp: &[u32], target: CacheId) -> StopTheWorldOutcome {
        push_stop_the_world(
            st,
            NodeId(nid),
            &PushDecision::Ok {
                supporters: node_set(supp.iter().copied()),
                target,
            },
        )
        .unwrap()
    }

    #[test]
    fn plain_commits_do_not_prune() {
        let mut st: St = AdoreState::new(Majority::new([1, 2, 3]));
        led(&mut st, 1, &[1, 2], 1);
        let m = st.invoke(NodeId(1), "a").applied().unwrap();
        let before = st.tree().len();
        let out = push(&mut st, 1, &[1, 2], m);
        assert!(out.remap.is_none());
        assert_eq!(st.tree().len(), before + 1);
    }

    #[test]
    fn committed_reconfig_prunes_stale_branches() {
        let mut st: St = AdoreState::new(Majority::new([1, 2, 3]));
        // S1 leaves an uncommitted branch behind.
        led(&mut st, 1, &[1, 2], 1);
        st.invoke(NodeId(1), "stale").applied().unwrap();
        // S2 leads, commits a method (R3), then a reconfiguration.
        led(&mut st, 2, &[2, 3], 2);
        let m = st.invoke(NodeId(2), "warm").applied().unwrap();
        push(&mut st, 2, &[2, 3], m);
        let r = st
            .reconfig(NodeId(2), Majority::new([1, 2, 3]), ReconfigGuard::all())
            .applied()
            .unwrap();
        let out = push(&mut st, 2, &[2, 3], r);
        let remap = out.remap.expect("reconfiguration commit prunes");
        // S1's stale branch is gone; the surviving tree is one branch.
        assert!(st
            .tree()
            .ids()
            .all(|id| st.cache(id).caller() != Some(NodeId(1))));
        assert!(invariants::check_all(&st).is_empty());
        // A clean break: exactly one branch remains.
        assert_eq!(st.tree().leaves().count(), 1);
        // The committed log survives the prune.
        let log: Vec<_> = st
            .committed_log()
            .iter()
            .map(|id| st.cache(*id).summary())
            .collect();
        assert_eq!(log.len(), 2); // warm + the reconfiguration
        let _ = remap;
    }

    #[test]
    fn stop_the_world_keeps_the_committed_suffix_viable() {
        let mut st: St = AdoreState::new(Majority::new([1, 2, 3]));
        led(&mut st, 1, &[1, 2], 1);
        let m = st.invoke(NodeId(1), "a").applied().unwrap();
        push(&mut st, 1, &[1, 2], m);
        let r = st
            .reconfig(NodeId(1), Majority::new([1, 2, 3]), ReconfigGuard::all())
            .applied()
            .unwrap();
        // Uncommitted work below the reconfiguration survives the prune
        // (it is on the active branch).
        let below = st.invoke(NodeId(1), "below").applied().unwrap();
        let out = push(&mut st, 1, &[1, 2], r);
        let remap = out.remap.expect("prune happened");
        assert!(remap.contains_key(&below), "active-branch work survives");
        assert!(invariants::check_all(&st).is_empty());
    }

    #[test]
    fn window_blocks_and_reopens_after_commit() {
        let mut st: St = AdoreState::new(Majority::new([1, 2, 3]));
        led(&mut st, 1, &[1, 2], 1);
        let a = invoke_windowed(&mut st, NodeId(1), "a", 2)
            .applied()
            .unwrap();
        invoke_windowed(&mut st, NodeId(1), "b", 2)
            .applied()
            .unwrap();
        assert_eq!(
            invoke_windowed(&mut st, NodeId(1), "c", 2),
            LocalOutcome::NoOp(NoOpReason::WindowFull)
        );
        // Committing the first command reopens one slot.
        st.push(
            NodeId(1),
            &PushDecision::Ok {
                supporters: node_set([1, 2]),
                target: a,
            },
        )
        .unwrap();
        assert!(invoke_windowed(&mut st, NodeId(1), "c", 2)
            .applied()
            .is_some());
        assert!(invariants::check_all(&st).is_empty());
    }

    #[test]
    #[should_panic(expected = "window must admit")]
    fn zero_window_is_rejected() {
        let mut st: St = AdoreState::new(Majority::new([1, 2]));
        let _ = invoke_windowed(&mut st, NodeId(1), "a", 0);
    }

    #[test]
    fn window_requires_leadership_like_plain_invoke() {
        let mut st: St = AdoreState::new(Majority::new([1, 2]));
        assert_eq!(
            invoke_windowed(&mut st, NodeId(1), "a", 3),
            LocalOutcome::NoOp(NoOpReason::NoActiveCache)
        );
    }
}
