//! Identifiers, logical time, and the parameterized configuration interface.
//!
//! ADORE's safety proof is generic over *what a configuration is* and *what
//! counts as a quorum*: the only facts it uses are the REFLEXIVE and OVERLAP
//! assumptions of Fig. 7. The [`Configuration`] trait captures exactly that
//! interface; the `adore-schemes` crate provides the paper's instantiations.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hash;

use serde::{Deserialize, Serialize};

/// Identity of a replica (the paper's `N_nid`).
///
/// # Examples
///
/// ```
/// use adore_core::NodeId;
/// let s1 = NodeId(1);
/// assert_eq!(s1.to_string(), "S1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Logical timestamp (a Paxos ballot / Raft term; the paper's `N_time`).
///
/// Timestamps start at [`Timestamp::ZERO`] (the genesis time) and are chosen
/// strictly increasing by elections.
///
/// # Examples
///
/// ```
/// use adore_core::Timestamp;
/// assert!(Timestamp(3) > Timestamp::ZERO);
/// assert_eq!(Timestamp(2).next(), Timestamp(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The genesis timestamp carried by the root cache.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The immediately following timestamp.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::Timestamp;
    /// assert_eq!(Timestamp::ZERO.next(), Timestamp(1));
    /// ```
    #[must_use]
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Version number within a round (the paper's `N_vrsn`).
///
/// Resets to 0 at each election and increments on every `invoke`/`reconfig`.
///
/// # Examples
///
/// ```
/// use adore_core::Version;
/// assert_eq!(Version::ZERO.next(), Version(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Version(pub u64);

impl Version {
    /// The version assigned to election caches.
    pub const ZERO: Version = Version(0);

    /// The immediately following version.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::Version;
    /// assert_eq!(Version(4).next(), Version(5));
    /// ```
    #[must_use]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A set of replica identities, used for quorums and supporter sets.
pub type NodeSet = BTreeSet<NodeId>;

/// Builds a [`NodeSet`] from raw node numbers.
///
/// # Examples
///
/// ```
/// use adore_core::{node_set, NodeId};
/// let q = node_set([1, 2, 3]);
/// assert!(q.contains(&NodeId(2)));
/// ```
#[must_use]
pub fn node_set<I: IntoIterator<Item = u32>>(ids: I) -> NodeSet {
    ids.into_iter().map(NodeId).collect()
}

/// The parameterized configuration interface of Fig. 7.
///
/// A configuration describes the replica group plus whatever extra metadata
/// a reconfiguration scheme needs (joint memberships, primaries, quorum
/// sizes, …). The ADORE model only interacts with it through:
///
/// * [`members`](Configuration::members) — the paper's `mbrs`,
/// * [`is_quorum`](Configuration::is_quorum) — the paper's `isQuorum`,
/// * [`r1_plus`](Configuration::r1_plus) — the paper's `R1⁺` relation
///   constraining which configurations may directly succeed this one.
///
/// # Safety assumptions
///
/// The model's safety theorem holds for every implementation satisfying the
/// two assumptions of Fig. 7, which are *not* enforced by the compiler:
///
/// * **REFLEXIVE** — `cf.r1_plus(&cf)` for every `cf`;
/// * **OVERLAP** — if `cf.r1_plus(&cf2)`, `cf.is_quorum(&q)`, and
///   `cf2.is_quorum(&q2)`, then `q ∩ q2 ≠ ∅`.
///
/// Use [`check_reflexive`] and [`check_overlap`] (or the exhaustive
/// validators in `adore-schemes`) to certify an implementation.
///
/// # Examples
///
/// ```
/// use adore_core::{node_set, Configuration, NodeSet};
///
/// /// Plain majority quorums over a fixed member set.
/// #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
/// struct Majority(NodeSet);
///
/// impl Configuration for Majority {
///     fn members(&self) -> NodeSet {
///         self.0.clone()
///     }
///     fn is_quorum(&self, s: &NodeSet) -> bool {
///         2 * s.intersection(&self.0).count() > self.0.len()
///     }
///     fn r1_plus(&self, next: &Self) -> bool {
///         self == next
///     }
/// }
///
/// let cf = Majority(node_set([1, 2, 3]));
/// assert!(cf.is_quorum(&node_set([1, 2])));
/// assert!(!cf.is_quorum(&node_set([3])));
/// ```
pub trait Configuration: Clone + Eq + Ord + Hash + fmt::Debug {
    /// The replicas that participate under this configuration (`mbrs`).
    fn members(&self) -> NodeSet;

    /// Whether `s` constitutes a quorum of this configuration (`isQuorum`).
    ///
    /// Implementations should only count members: nodes outside
    /// [`members`](Configuration::members) must never help form a quorum.
    fn is_quorum(&self, s: &NodeSet) -> bool;

    /// The `R1⁺` relation: whether `next` may directly replace `self`.
    fn r1_plus(&self, next: &Self) -> bool;
}

/// Checks the REFLEXIVE assumption of Fig. 7 for one configuration.
///
/// # Examples
///
/// ```
/// # use adore_core::{node_set, Configuration, NodeSet};
/// # #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
/// # struct Majority(NodeSet);
/// # impl Configuration for Majority {
/// #     fn members(&self) -> NodeSet { self.0.clone() }
/// #     fn is_quorum(&self, s: &NodeSet) -> bool {
/// #         2 * s.intersection(&self.0).count() > self.0.len()
/// #     }
/// #     fn r1_plus(&self, next: &Self) -> bool { self == next }
/// # }
/// use adore_core::check_reflexive;
/// assert!(check_reflexive(&Majority(node_set([1, 2, 3]))));
/// ```
#[must_use]
pub fn check_reflexive<C: Configuration>(cf: &C) -> bool {
    cf.r1_plus(cf)
}

/// Checks the OVERLAP assumption of Fig. 7 for one pair of configurations
/// and one pair of supporter sets.
///
/// Returns `true` if the instance is vacuous (the sets are not quorums or
/// the configurations are not `R1⁺`-related) or the quorums intersect.
///
/// # Examples
///
/// ```
/// # use adore_core::{node_set, Configuration, NodeSet};
/// # #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
/// # struct Majority(NodeSet);
/// # impl Configuration for Majority {
/// #     fn members(&self) -> NodeSet { self.0.clone() }
/// #     fn is_quorum(&self, s: &NodeSet) -> bool {
/// #         2 * s.intersection(&self.0).count() > self.0.len()
/// #     }
/// #     fn r1_plus(&self, next: &Self) -> bool { self == next }
/// # }
/// use adore_core::check_overlap;
/// let cf = Majority(node_set([1, 2, 3]));
/// assert!(check_overlap(&cf, &cf, &node_set([1, 2]), &node_set([2, 3])));
/// ```
#[must_use]
pub fn check_overlap<C: Configuration>(cf: &C, cf2: &C, q: &NodeSet, q2: &NodeSet) -> bool {
    if !cf.r1_plus(cf2) || !cf.is_quorum(q) || !cf2.is_quorum(q2) {
        return true;
    }
    q.intersection(q2).next().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct Majority(NodeSet);

    impl Configuration for Majority {
        fn members(&self) -> NodeSet {
            self.0.clone()
        }
        fn is_quorum(&self, s: &NodeSet) -> bool {
            2 * s.intersection(&self.0).count() > self.0.len()
        }
        fn r1_plus(&self, next: &Self) -> bool {
            self == next
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "S3");
        assert_eq!(Timestamp(4).to_string(), "t4");
        assert_eq!(Version(5).to_string(), "v5");
    }

    #[test]
    fn next_increments() {
        assert_eq!(Timestamp::ZERO.next(), Timestamp(1));
        assert_eq!(Version::ZERO.next(), Version(1));
    }

    #[test]
    fn node_set_builds_sorted_set() {
        let s = node_set([3, 1, 2, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().next(), Some(&NodeId(1)));
    }

    #[test]
    fn majority_quorums_overlap() {
        let cf = Majority(node_set([1, 2, 3]));
        assert!(check_reflexive(&cf));
        assert!(check_overlap(
            &cf,
            &cf,
            &node_set([1, 2]),
            &node_set([2, 3])
        ));
        // Vacuous case: not a quorum.
        assert!(check_overlap(&cf, &cf, &node_set([1]), &node_set([2, 3])));
    }

    #[test]
    fn quorum_counts_only_members() {
        let cf = Majority(node_set([1, 2, 3]));
        // Outsiders don't help.
        assert!(!cf.is_quorum(&node_set([4, 5])));
        assert!(cf.is_quorum(&node_set([1, 2, 99])));
    }
}
