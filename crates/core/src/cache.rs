//! The cache variants that populate ADORE's tree (Figs. 6 and 24).
//!
//! Every node in the cache tree records who created it, at what logical
//! time, with what version number, and under which configuration. The four
//! paper variants are elections (`ECache`), method invocations (`MCache`),
//! reconfigurations (`RCache`), and commits (`CCache`); we add an explicit
//! `Genesis` variant for the root, which the paper leaves implicit ("the
//! root cache is initialized with some `conf₀`"). Genesis behaves like a
//! commit of the empty history: it is supported by every initial member and
//! is commit-like for ordering purposes, which makes `lastCommit` and
//! `mostRecent` total in the initial state.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::config::{Configuration, NodeId, NodeSet, Timestamp, Version};

/// Discriminant of a [`Cache`], for queries that only care about the shape.
///
/// # Examples
///
/// ```
/// use adore_core::CacheKind;
/// assert!(CacheKind::Commit.is_commit_like());
/// assert!(CacheKind::Genesis.is_commit_like());
/// assert!(!CacheKind::Method.is_commit_like());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CacheKind {
    /// The implicit root of the tree.
    Genesis,
    /// An election (`ECache`).
    Election,
    /// A method invocation (`MCache`).
    Method,
    /// A reconfiguration (`RCache`).
    Reconfig,
    /// A commit (`CCache`).
    Commit,
}

impl CacheKind {
    /// Whether this kind counts as a committed marker (`CCache` or genesis).
    #[must_use]
    pub fn is_commit_like(self) -> bool {
        matches!(self, CacheKind::Genesis | CacheKind::Commit)
    }
}

impl fmt::Display for CacheKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CacheKind::Genesis => "Genesis",
            CacheKind::Election => "ECache",
            CacheKind::Method => "MCache",
            CacheKind::Reconfig => "RCache",
            CacheKind::Commit => "CCache",
        };
        f.write_str(s)
    }
}

/// Sort key realizing the strict order `>` on caches (Fig. 9).
///
/// Caches compare lexicographically by `(time, vrsn)`; at equal pairs a
/// commit-like cache is greater than a non-commit. The key derives `Ord`
/// so `a.key() > b.key()` is exactly the paper's `a > b`.
///
/// # Examples
///
/// ```
/// use adore_core::{CacheOrderKey, Timestamp, Version};
/// let m = CacheOrderKey { time: Timestamp(2), vrsn: Version(1), commit_like: false };
/// let c = CacheOrderKey { time: Timestamp(2), vrsn: Version(1), commit_like: true };
/// assert!(c > m);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CacheOrderKey {
    /// Logical timestamp of the cache.
    pub time: Timestamp,
    /// Version number of the cache.
    pub vrsn: Version,
    /// Whether the cache is commit-like (breaks ties upward).
    pub commit_like: bool,
}

/// A node payload of the ADORE cache tree (Fig. 6 / Fig. 24).
///
/// Type parameters: `C` is the [`Configuration`] instantiation, `M` the
/// opaque method type ("the actual methods have no bearing on the protocol's
/// safety, so we treat them as arbitrary identifiers").
///
/// # Examples
///
/// ```
/// use adore_core::{node_set, Cache, NodeId, Timestamp, Version};
/// # use adore_core::{Configuration, NodeSet};
/// # #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
/// # struct Majority(NodeSet);
/// # impl Configuration for Majority {
/// #     fn members(&self) -> NodeSet { self.0.clone() }
/// #     fn is_quorum(&self, s: &NodeSet) -> bool {
/// #         2 * s.intersection(&self.0).count() > self.0.len()
/// #     }
/// #     fn r1_plus(&self, next: &Self) -> bool { self == next }
/// # }
///
/// let e: Cache<Majority, &str> = Cache::Election {
///     caller: NodeId(1),
///     time: Timestamp(1),
///     supporters: node_set([1, 2]),
///     config: Majority(node_set([1, 2, 3])),
/// };
/// assert_eq!(e.time(), Timestamp(1));
/// assert!(e.supporters().contains(&NodeId(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Cache<C, M> {
    /// The root of every cache tree, carrying the initial configuration.
    Genesis {
        /// The initial configuration `conf₀`.
        config: C,
    },
    /// An `ECache`: a (possibly partial) election at a fresh timestamp.
    ///
    /// Election caches always have version [`Version::ZERO`].
    Election {
        /// The candidate that called `pull`.
        caller: NodeId,
        /// The fresh timestamp chosen by the election.
        time: Timestamp,
        /// The replicas that voted.
        supporters: NodeSet,
        /// The configuration inherited from the election's parent cache.
        config: C,
    },
    /// An `MCache`: an uncommitted method invocation.
    Method {
        /// The leader that invoked the method.
        caller: NodeId,
        /// The leader's current timestamp.
        time: Timestamp,
        /// Parent's version plus one.
        vrsn: Version,
        /// The invoked method (opaque to the protocol).
        method: M,
        /// The configuration inherited from the parent.
        config: C,
    },
    /// An `RCache`: an uncommitted reconfiguration command.
    ///
    /// Behaves like an `MCache` whose payload is a new configuration that
    /// takes effect immediately ("hot" reconfiguration).
    Reconfig {
        /// The leader that proposed the change.
        caller: NodeId,
        /// The leader's current timestamp.
        time: Timestamp,
        /// Parent's version plus one.
        vrsn: Version,
        /// The **new** configuration.
        config: C,
    },
    /// A `CCache`: a commit marker certifying its ancestors.
    Commit {
        /// The leader that pushed.
        caller: NodeId,
        /// Timestamp copied from the committed cache.
        time: Timestamp,
        /// Version copied from the committed cache.
        vrsn: Version,
        /// The replicas that acknowledged the commit.
        supporters: NodeSet,
        /// The configuration of the committed cache.
        config: C,
    },
}

impl<C: Configuration, M> Cache<C, M> {
    /// The discriminant of this cache.
    ///
    /// # Examples
    ///
    /// ```
    /// # use adore_core::majority::Majority;
    /// use adore_core::{Cache, CacheKind};
    /// let g: Cache<Majority, ()> = Cache::Genesis { config: Majority::new([1, 2, 3]) };
    /// assert_eq!(g.kind(), CacheKind::Genesis);
    /// ```
    #[must_use]
    pub fn kind(&self) -> CacheKind {
        match self {
            Cache::Genesis { .. } => CacheKind::Genesis,
            Cache::Election { .. } => CacheKind::Election,
            Cache::Method { .. } => CacheKind::Method,
            Cache::Reconfig { .. } => CacheKind::Reconfig,
            Cache::Commit { .. } => CacheKind::Commit,
        }
    }

    /// The replica that created this cache, or `None` for the genesis root.
    #[must_use]
    pub fn caller(&self) -> Option<NodeId> {
        match self {
            Cache::Genesis { .. } => None,
            Cache::Election { caller, .. }
            | Cache::Method { caller, .. }
            | Cache::Reconfig { caller, .. }
            | Cache::Commit { caller, .. } => Some(*caller),
        }
    }

    /// The cache's logical timestamp (`time`); genesis is at time zero.
    #[must_use]
    pub fn time(&self) -> Timestamp {
        match self {
            Cache::Genesis { .. } => Timestamp::ZERO,
            Cache::Election { time, .. }
            | Cache::Method { time, .. }
            | Cache::Reconfig { time, .. }
            | Cache::Commit { time, .. } => *time,
        }
    }

    /// The cache's version number (`vrsn`); elections and genesis are zero.
    #[must_use]
    pub fn vrsn(&self) -> Version {
        match self {
            Cache::Genesis { .. } | Cache::Election { .. } => Version::ZERO,
            Cache::Method { vrsn, .. }
            | Cache::Reconfig { vrsn, .. }
            | Cache::Commit { vrsn, .. } => *vrsn,
        }
    }

    /// The configuration this cache was created under — except for
    /// [`Cache::Reconfig`], where it is the **new** configuration it
    /// installs (the effective configuration from this cache onward).
    #[must_use]
    pub fn config(&self) -> &C {
        match self {
            Cache::Genesis { config }
            | Cache::Election { config, .. }
            | Cache::Method { config, .. }
            | Cache::Reconfig { config, .. }
            | Cache::Commit { config, .. } => config,
        }
    }

    /// The supporters of this cache.
    ///
    /// Elections and commits carry their voter sets; an `MCache` or
    /// `RCache`'s only supporter is its caller; the genesis root is
    /// supported by every initial member.
    #[must_use]
    pub fn supporters(&self) -> NodeSet {
        match self {
            Cache::Genesis { config } => config.members(),
            Cache::Election { supporters, .. } | Cache::Commit { supporters, .. } => {
                supporters.clone()
            }
            Cache::Method { caller, .. } | Cache::Reconfig { caller, .. } => {
                std::iter::once(*caller).collect()
            }
        }
    }

    /// Whether `nid` supports this cache (no allocation).
    #[must_use]
    pub fn is_supporter(&self, nid: NodeId) -> bool {
        match self {
            Cache::Genesis { config } => config.members().contains(&nid),
            Cache::Election { supporters, .. } | Cache::Commit { supporters, .. } => {
                supporters.contains(&nid)
            }
            Cache::Method { caller, .. } | Cache::Reconfig { caller, .. } => *caller == nid,
        }
    }

    /// Whether `nid` has **observed** this cache — holds the corresponding
    /// state in its local log. This is the relation `mostRecent` selects
    /// over ("the most up-to-date cache *observed* by any of the election
    /// voters", Fig. 5).
    ///
    /// Observation differs from support for the log-less caches: voting for
    /// an election does *not* place anything in a voter's log, so an
    /// `ECache` has **no observers at all** — a leader's state snapshot is
    /// its log, which the election marker does not extend. (Commit
    /// acknowledgements, by contrast, mean the acknowledger adopted the
    /// leader's log, so all `CCache` supporters observe it; a method or
    /// reconfiguration sits only in its caller's log until committed.)
    /// Without this distinction the paper's Fig. 5(e) walkthrough — where
    /// S2 and S3 have voted for S1's election yet "have not observed"
    /// anything past the commit — and the Fig. 12 counterexample are
    /// inexpressible, and elections would tear leaders away from their own
    /// logs, breaking the `logMatch` refinement relation (Fig. 17).
    #[must_use]
    pub fn observes(&self, nid: NodeId) -> bool {
        match self {
            Cache::Genesis { config } => config.members().contains(&nid),
            Cache::Commit { supporters, .. } => supporters.contains(&nid),
            Cache::Election { .. } => false,
            Cache::Method { caller, .. } | Cache::Reconfig { caller, .. } => *caller == nid,
        }
    }

    /// The sort key realizing the strict order `>` of Fig. 9.
    ///
    /// # Examples
    ///
    /// ```
    /// # use adore_core::majority::Majority;
    /// use adore_core::{node_set, Cache, NodeId, Timestamp, Version};
    /// let cf = Majority::new([1, 2, 3]);
    /// let m: Cache<Majority, &str> = Cache::Method {
    ///     caller: NodeId(1), time: Timestamp(1), vrsn: Version(1),
    ///     method: "put", config: cf.clone(),
    /// };
    /// let c: Cache<Majority, &str> = Cache::Commit {
    ///     caller: NodeId(1), time: Timestamp(1), vrsn: Version(1),
    ///     supporters: node_set([1, 2]), config: cf,
    /// };
    /// assert!(c.key() > m.key());
    /// ```
    #[must_use]
    pub fn key(&self) -> CacheOrderKey {
        CacheOrderKey {
            time: self.time(),
            vrsn: self.vrsn(),
            commit_like: self.kind().is_commit_like(),
        }
    }

    /// Whether this cache is commit-like (a `CCache` or the genesis root).
    #[must_use]
    pub fn is_commit_like(&self) -> bool {
        self.kind().is_commit_like()
    }
}

impl<C: Configuration, M: fmt::Debug> Cache<C, M> {
    /// A compact single-line rendering used by tree printers and
    /// counterexample reports.
    ///
    /// # Examples
    ///
    /// ```
    /// # use adore_core::majority::Majority;
    /// use adore_core::{node_set, Cache, NodeId, Timestamp};
    /// let e: Cache<Majority, &str> = Cache::Election {
    ///     caller: NodeId(1), time: Timestamp(2),
    ///     supporters: node_set([1, 2]), config: Majority::new([1, 2, 3]),
    /// };
    /// assert_eq!(e.summary(), "E(S1 t2 v0 Q={S1,S2})");
    /// ```
    #[must_use]
    pub fn summary(&self) -> String {
        fn fmt_set(s: &NodeSet) -> String {
            let inner: Vec<String> = s.iter().map(ToString::to_string).collect();
            format!("{{{}}}", inner.join(","))
        }
        match self {
            Cache::Genesis { .. } => "G(t0 v0)".to_string(),
            Cache::Election {
                caller,
                time,
                supporters,
                ..
            } => format!("E({caller} {time} v0 Q={})", fmt_set(supporters)),
            Cache::Method {
                caller,
                time,
                vrsn,
                method,
                ..
            } => format!("M({caller} {time} {vrsn} {method:?})"),
            Cache::Reconfig {
                caller, time, vrsn, ..
            } => format!("R({caller} {time} {vrsn})"),
            Cache::Commit {
                caller,
                time,
                vrsn,
                supporters,
                ..
            } => format!("C({caller} {time} {vrsn} Q={})", fmt_set(supporters)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majority::Majority;
    use crate::node_set;

    fn cf() -> Majority {
        Majority::new([1, 2, 3])
    }

    fn election(t: u64) -> Cache<Majority, &'static str> {
        Cache::Election {
            caller: NodeId(1),
            time: Timestamp(t),
            supporters: node_set([1, 2]),
            config: cf(),
        }
    }

    fn method(t: u64, v: u64) -> Cache<Majority, &'static str> {
        Cache::Method {
            caller: NodeId(1),
            time: Timestamp(t),
            vrsn: Version(v),
            method: "m",
            config: cf(),
        }
    }

    fn commit(t: u64, v: u64) -> Cache<Majority, &'static str> {
        Cache::Commit {
            caller: NodeId(1),
            time: Timestamp(t),
            vrsn: Version(v),
            supporters: node_set([1, 2]),
            config: cf(),
        }
    }

    #[test]
    fn order_is_lexicographic_on_time_then_version() {
        assert!(method(2, 0).key() > method(1, 9).key());
        assert!(method(1, 2).key() > method(1, 1).key());
        assert!(election(2).key() > method(1, 5).key());
    }

    #[test]
    fn commit_breaks_ties_upward() {
        assert!(commit(1, 1).key() > method(1, 1).key());
        // But a larger (time, vrsn) still dominates the commit bit.
        assert!(method(1, 2).key() > commit(1, 1).key());
        assert!(method(2, 0).key() > commit(1, 9).key());
    }

    #[test]
    fn genesis_is_minimal_and_commit_like() {
        let g: Cache<Majority, &str> = Cache::Genesis { config: cf() };
        assert!(g.is_commit_like());
        assert_eq!(g.caller(), None);
        assert_eq!(g.time(), Timestamp::ZERO);
        assert!(election(1).key() > g.key());
    }

    #[test]
    fn supporters_by_kind() {
        let g: Cache<Majority, &str> = Cache::Genesis { config: cf() };
        assert_eq!(g.supporters(), node_set([1, 2, 3]));
        assert_eq!(method(1, 1).supporters(), node_set([1]));
        assert_eq!(election(1).supporters(), node_set([1, 2]));
        assert!(g.is_supporter(NodeId(3)));
        assert!(!method(1, 1).is_supporter(NodeId(3)));
    }

    #[test]
    fn reconfig_config_is_the_new_one() {
        let newcf = Majority::new([1, 2]);
        let r: Cache<Majority, &str> = Cache::Reconfig {
            caller: NodeId(1),
            time: Timestamp(1),
            vrsn: Version(1),
            config: newcf.clone(),
        };
        assert_eq!(r.config(), &newcf);
        assert_eq!(r.supporters(), node_set([1]));
    }

    #[test]
    fn elections_have_version_zero() {
        assert_eq!(election(3).vrsn(), Version::ZERO);
    }

    #[test]
    fn summary_is_compact() {
        assert_eq!(method(1, 2).summary(), "M(S1 t1 v2 \"m\")");
        assert_eq!(commit(1, 2).summary(), "C(S1 t1 v2 Q={S1,S2})");
        let g: Cache<Majority, &str> = Cache::Genesis { config: cf() };
        assert_eq!(g.summary(), "G(t0 v0)");
    }
}
