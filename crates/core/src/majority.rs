//! A minimal built-in configuration: static membership, majority quorums.
//!
//! This is the degenerate reconfiguration scheme in which `R1⁺` only relates
//! a configuration to itself — i.e. the classic *static* consensus setting
//! (and the natural instantiation for the CADO model). It lives in the core
//! crate so that examples and tests have a scheme without depending on
//! `adore-schemes`, which provides the paper's richer instantiations.

use serde::{Deserialize, Serialize};

use crate::config::{Configuration, NodeSet};

/// Static membership with majority quorums; `R1⁺` is equality.
///
/// REFLEXIVE holds trivially, and OVERLAP reduces to the textbook fact that
/// two majorities of the same set intersect.
///
/// # Examples
///
/// ```
/// use adore_core::majority::Majority;
/// use adore_core::{node_set, Configuration};
///
/// let cf = Majority::new([1, 2, 3]);
/// assert!(cf.is_quorum(&node_set([1, 3])));
/// assert!(!cf.is_quorum(&node_set([2])));
/// assert!(cf.r1_plus(&cf));
/// assert!(!cf.r1_plus(&Majority::new([1, 2])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Majority {
    members: NodeSet,
}

impl Majority {
    /// Creates a configuration over the given node numbers.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::majority::Majority;
    /// use adore_core::Configuration;
    /// assert_eq!(Majority::new([1, 2, 3]).members().len(), 3);
    /// ```
    #[must_use]
    pub fn new<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Majority {
            members: crate::config::node_set(ids),
        }
    }

    /// Creates a configuration from an existing node set.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::majority::Majority;
    /// use adore_core::node_set;
    /// let cf = Majority::from_set(node_set([1, 2]));
    /// assert_eq!(cf, Majority::new([1, 2]));
    /// ```
    #[must_use]
    pub fn from_set(members: NodeSet) -> Self {
        Majority { members }
    }
}

impl Configuration for Majority {
    fn members(&self) -> NodeSet {
        self.members.clone()
    }

    fn is_quorum(&self, s: &NodeSet) -> bool {
        2 * s.intersection(&self.members).count() > self.members.len()
    }

    fn r1_plus(&self, next: &Self) -> bool {
        self == next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{check_overlap, check_reflexive, node_set};

    #[test]
    fn majority_threshold() {
        let cf = Majority::new([1, 2, 3, 4]);
        assert!(!cf.is_quorum(&node_set([1, 2])));
        assert!(cf.is_quorum(&node_set([1, 2, 3])));
    }

    #[test]
    fn assumptions_hold_exhaustively_for_three_nodes() {
        let cf = Majority::new([1, 2, 3]);
        assert!(check_reflexive(&cf));
        // All subset pairs of a 3-node universe.
        let universe: Vec<u32> = vec![1, 2, 3];
        for mask_q in 0u32..8 {
            for mask_q2 in 0u32..8 {
                let q = node_set(
                    universe
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &n)| (mask_q & (1 << i) != 0).then_some(n)),
                );
                let q2 = node_set(
                    universe
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &n)| (mask_q2 & (1 << i) != 0).then_some(n)),
                );
                assert!(check_overlap(&cf, &cf, &q, &q2));
            }
        }
    }

    #[test]
    fn outsiders_never_form_quorums() {
        let cf = Majority::new([1, 2, 3]);
        assert!(!cf.is_quorum(&node_set([4, 5, 6, 7])));
    }
}
