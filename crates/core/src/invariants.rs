//! Executable safety invariants: `rdist`, replicated state safety, and the
//! supporting lemmas of §4 and Appendix B.
//!
//! Each function checks one statement from the paper over a concrete
//! [`AdoreState`]. The model checker evaluates them on every reachable
//! state; together with the paper's own counterexamples being *found* when
//! a guard is disabled, this is the executable analogue of the mechanized
//! safety proof.
//!
//! | Paper statement | Checker |
//! |---|---|
//! | Def. 4.1 / Thm. 4.5 (replicated state safety) | [`check_safety`] |
//! | Def. 4.2 (`rdist`) | [`rdist`], [`tree_rdist`] |
//! | Lemma B.1 (descendant order) | [`check_descendant_order`] |
//! | Lemmas B.2/B.5 (leader time uniqueness, rdist ≤ 1) | [`check_leader_time_uniqueness`] |
//! | Thms. B.3/B.6 (election-commit order, rdist ≤ 1) | [`check_election_commit_order`] |
//! | Lemma 4.4/B.8 (CCache in RCache fork) | [`check_ccache_in_rcache_fork`] |
//! | Implicit structural invariants (Fig. 6) | [`check_structure`] |

use std::fmt;

use serde::{Deserialize, Serialize};

use adore_tree::CacheId;

use crate::cache::CacheKind;
use crate::config::Configuration;
use crate::state::AdoreState;

/// A falsified invariant, with the witnesses that falsify it.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// Two commit-like caches on diverging branches: replicated state
    /// safety (Def. 4.1) is broken.
    CommitsDiverge {
        /// One commit.
        first: CacheId,
        /// A commit that is neither its ancestor nor its descendant.
        second: CacheId,
    },
    /// A child cache not greater than its parent (Lemma B.1).
    OrderInversion {
        /// The parent cache.
        parent: CacheId,
        /// The offending child.
        child: CacheId,
    },
    /// Two elections with equal timestamps within the checked rdist bound
    /// (Lemmas B.2/B.5).
    DuplicateLeaderTime {
        /// First election.
        first: CacheId,
        /// Second election with the same timestamp.
        second: CacheId,
        /// Their rdist.
        rdist: usize,
    },
    /// An election greater than a commit that is not the commit's
    /// descendant, within the checked rdist bound (Thms. B.3/B.6).
    ElectionCommitOrder {
        /// The election cache.
        election: CacheId,
        /// The commit it should descend from.
        commit: CacheId,
        /// Their rdist.
        rdist: usize,
    },
    /// Forking `RCaches` with rdist 0 and no commit below their common
    /// ancestor on either branch (Lemma 4.4/B.8).
    MissingForkCommit {
        /// First reconfiguration.
        first: CacheId,
        /// Second, forking reconfiguration.
        second: CacheId,
    },
    /// A cache violating one of the construction invariants of Fig. 6.
    Structural {
        /// The offending cache.
        cache: CacheId,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::CommitsDiverge { first, second } => {
                write!(f, "commits {first} and {second} lie on diverging branches")
            }
            Violation::OrderInversion { parent, child } => {
                write!(f, "child {child} is not greater than its parent {parent}")
            }
            Violation::DuplicateLeaderTime {
                first,
                second,
                rdist,
            } => write!(
                f,
                "elections {first} and {second} (rdist {rdist}) share a timestamp"
            ),
            Violation::ElectionCommitOrder {
                election,
                commit,
                rdist,
            } => write!(
                f,
                "election {election} outranks commit {commit} (rdist {rdist}) without descending from it"
            ),
            Violation::MissingForkCommit { first, second } => write!(
                f,
                "forking reconfigurations {first} and {second} have no commit below their fork"
            ),
            Violation::Structural { cache, detail } => {
                write!(f, "cache {cache}: {detail}")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// `rdist` (Def. 4.2): the number of `RCaches` strictly between `a` and `b`
/// on the tree path through their nearest common ancestor.
///
/// Returns `None` if either id is unknown.
///
/// # Examples
///
/// ```
/// use adore_core::majority::Majority;
/// use adore_core::{invariants::rdist, AdoreState};
/// use adore_tree::Tree;
/// let st: AdoreState<Majority, ()> = AdoreState::new(Majority::new([1, 2]));
/// let root = Tree::<()>::ROOT;
/// assert_eq!(rdist(&st, root, root), Some(0));
/// ```
#[must_use]
pub fn rdist<C: Configuration, M: Clone>(
    st: &AdoreState<C, M>,
    a: CacheId,
    b: CacheId,
) -> Option<usize> {
    let interior = st.tree().path_interior(a, b)?;
    Some(
        interior
            .iter()
            .filter(|id| st.cache(**id).kind() == CacheKind::Reconfig)
            .count(),
    )
}

/// The rdist of the whole tree: the maximum [`rdist`] over all cache pairs.
///
/// # Examples
///
/// ```
/// use adore_core::majority::Majority;
/// use adore_core::{invariants::tree_rdist, AdoreState};
/// let st: AdoreState<Majority, ()> = AdoreState::new(Majority::new([1, 2]));
/// assert_eq!(tree_rdist(&st), 0);
/// ```
#[must_use]
pub fn tree_rdist<C: Configuration, M: Clone>(st: &AdoreState<C, M>) -> usize {
    let ids: Vec<CacheId> = st.tree().ids().collect();
    let mut max = 0;
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i..] {
            if let Some(d) = rdist(st, a, b) {
                max = max.max(d);
            }
        }
    }
    max
}

/// Replicated state safety (Def. 4.1): every pair of commit-like caches
/// lies on a single branch.
///
/// Returns the first diverging pair found, or `Ok(())`.
///
/// # Errors
///
/// [`Violation::CommitsDiverge`] with the offending pair.
///
/// # Examples
///
/// ```
/// use adore_core::builder::StateBuilder;
/// use adore_core::majority::Majority;
/// use adore_core::{invariants, NodeId, Timestamp};
///
/// // Two commits on forked branches: the safety checker fires.
/// let cf = Majority::new([1, 2, 3]);
/// let mut b = StateBuilder::new(cf.clone());
/// let e1 = b.election(0, NodeId(1), Timestamp(1), [1, 2], cf.clone());
/// let m1 = b.method(e1, NodeId(1), Timestamp(1), 1, "a", cf.clone());
/// b.commit(m1, NodeId(1), [1, 2], cf.clone());
/// let e2 = b.election(0, NodeId(3), Timestamp(2), [2, 3], cf.clone());
/// let m2 = b.method(e2, NodeId(3), Timestamp(2), 1, "b", cf.clone());
/// b.commit(m2, NodeId(3), [2, 3], cf);
/// assert!(invariants::check_safety(&b.build()).is_err());
/// ```
pub fn check_safety<C: Configuration, M: Clone>(st: &AdoreState<C, M>) -> Result<(), Violation> {
    let commits: Vec<CacheId> = st.commits().collect();
    // All commits lie on one branch iff each is comparable with the deepest;
    // we still report the earliest diverging pair for diagnostics.
    for (i, &a) in commits.iter().enumerate() {
        for &b in &commits[i + 1..] {
            if !st.tree().same_branch(a, b) {
                return Err(Violation::CommitsDiverge {
                    first: a,
                    second: b,
                });
            }
        }
    }
    Ok(())
}

/// Lemma B.1: every child is strictly greater than its parent in the cache
/// order of Fig. 9.
///
/// # Errors
///
/// [`Violation::OrderInversion`] with the offending edge.
///
/// # Examples
///
/// ```
/// use adore_core::majority::Majority;
/// use adore_core::{invariants, AdoreState};
/// let st: AdoreState<Majority, ()> = AdoreState::new(Majority::new([1, 2]));
/// assert!(invariants::check_descendant_order(&st).is_ok());
/// ```
pub fn check_descendant_order<C: Configuration, M: Clone>(
    st: &AdoreState<C, M>,
) -> Result<(), Violation> {
    for id in st.tree().ids() {
        if let Some(parent) = st.tree().parent(id) {
            if st.key_of(id) <= st.key_of(parent) {
                return Err(Violation::OrderInversion { parent, child: id });
            }
        }
    }
    Ok(())
}

/// Lemmas B.2/B.5: elections within `max_rdist` reconfigurations of each
/// other have distinct timestamps.
///
/// The paper proves this for `max_rdist ≤ 1`; farther-apart elections may
/// legitimately collide in adversarial schedules of *unsafe* variants,
/// which is why the bound is explicit.
///
/// # Errors
///
/// [`Violation::DuplicateLeaderTime`] with the colliding pair.
pub fn check_leader_time_uniqueness<C: Configuration, M: Clone>(
    st: &AdoreState<C, M>,
    max_rdist: usize,
) -> Result<(), Violation> {
    let elections: Vec<CacheId> = st
        .tree()
        .iter()
        .filter(|(_, c)| c.kind() == CacheKind::Election)
        .map(|(id, _)| id)
        .collect();
    for (i, &a) in elections.iter().enumerate() {
        for &b in &elections[i + 1..] {
            let d = rdist(st, a, b).expect("ids from the same tree");
            if d <= max_rdist && st.cache(a).time() == st.cache(b).time() {
                return Err(Violation::DuplicateLeaderTime {
                    first: a,
                    second: b,
                    rdist: d,
                });
            }
        }
    }
    Ok(())
}

/// Thms. B.3/B.6: an election greater than a commit within `max_rdist`
/// reconfigurations must be the commit's descendant.
///
/// # Errors
///
/// [`Violation::ElectionCommitOrder`] with the offending pair.
pub fn check_election_commit_order<C: Configuration, M: Clone>(
    st: &AdoreState<C, M>,
    max_rdist: usize,
) -> Result<(), Violation> {
    let tree = st.tree();
    for (e_id, e) in tree.iter().filter(|(_, c)| c.kind() == CacheKind::Election) {
        for (c_id, c) in tree.iter().filter(|(_, c)| c.kind() == CacheKind::Commit) {
            let d = rdist(st, e_id, c_id).expect("ids from the same tree");
            if d <= max_rdist && e.key() > c.key() && !tree.is_strict_ancestor(c_id, e_id) {
                return Err(Violation::ElectionCommitOrder {
                    election: e_id,
                    commit: c_id,
                    rdist: d,
                });
            }
        }
    }
    Ok(())
}

/// Lemma 4.4/B.8: for forking `RCaches` at rdist 0, some commit lies below
/// their nearest common ancestor on one of the two branches.
///
/// # Errors
///
/// [`Violation::MissingForkCommit`] with the offending fork.
pub fn check_ccache_in_rcache_fork<C: Configuration, M: Clone>(
    st: &AdoreState<C, M>,
) -> Result<(), Violation> {
    let tree = st.tree();
    let rcaches: Vec<CacheId> = tree
        .iter()
        .filter(|(_, c)| c.kind() == CacheKind::Reconfig)
        .map(|(id, _)| id)
        .collect();
    for (i, &r1) in rcaches.iter().enumerate() {
        for &r2 in &rcaches[i + 1..] {
            if tree.same_branch(r1, r2) {
                continue;
            }
            if rdist(st, r1, r2) != Some(0) {
                continue;
            }
            let nca = tree
                .nearest_common_ancestor(r1, r2)
                .expect("ids from the same tree");
            let witness = tree.ids().any(|c| {
                st.cache(c).kind() == CacheKind::Commit
                    && tree.is_strict_ancestor(nca, c)
                    && (tree.is_strict_ancestor(c, r1) || tree.is_strict_ancestor(c, r2))
            });
            if !witness {
                return Err(Violation::MissingForkCommit {
                    first: r1,
                    second: r2,
                });
            }
        }
    }
    Ok(())
}

/// The construction invariants implicit in Fig. 6: elections carry version
/// zero; non-reconfiguration caches inherit their parent's configuration;
/// method/reconfiguration caches carry their parent's time and incremented
/// version; commits copy their parent's time and version; supporters of
/// elections and commits are members of their configuration and include the
/// caller.
///
/// # Errors
///
/// [`Violation::Structural`] naming the first offending cache.
pub fn check_structure<C: Configuration, M: Clone>(st: &AdoreState<C, M>) -> Result<(), Violation> {
    let tree = st.tree();
    for (id, cache) in tree.iter() {
        let fail = |detail: &str| {
            Err(Violation::Structural {
                cache: id,
                detail: detail.to_string(),
            })
        };
        match cache.kind() {
            CacheKind::Genesis => {
                if tree.parent(id).is_some() {
                    return fail("genesis cache is not the root");
                }
            }
            kind => {
                let Some(parent) = tree.parent(id) else {
                    return fail("non-genesis cache at the root");
                };
                let pc = st.cache(parent);
                match kind {
                    CacheKind::Election => {
                        if cache.vrsn() != crate::Version::ZERO {
                            return fail("election with non-zero version");
                        }
                        if cache.time() <= pc.time() {
                            return fail("election timestamp not above its parent's");
                        }
                        if cache.config() != pc.config() {
                            return fail("election does not inherit its parent's configuration");
                        }
                    }
                    CacheKind::Method | CacheKind::Reconfig => {
                        if cache.time() != pc.time() {
                            return fail("method/reconfig timestamp differs from its parent's");
                        }
                        if cache.vrsn() != pc.vrsn().next() {
                            return fail("method/reconfig version is not parent's plus one");
                        }
                        if kind == CacheKind::Method && cache.config() != pc.config() {
                            return fail("method does not inherit its parent's configuration");
                        }
                    }
                    CacheKind::Commit => {
                        if cache.time() != pc.time() || cache.vrsn() != pc.vrsn() {
                            return fail("commit does not copy its parent's time and version");
                        }
                        if cache.config() != pc.config() {
                            return fail("commit does not inherit its parent's configuration");
                        }
                        if !matches!(pc.kind(), CacheKind::Method | CacheKind::Reconfig) {
                            return fail("commit whose parent is not a method/reconfig");
                        }
                    }
                    CacheKind::Genesis => unreachable!("handled above"),
                }
                if matches!(kind, CacheKind::Election | CacheKind::Commit) {
                    let supporters = cache.supporters();
                    let caller = cache.caller().expect("non-genesis cache has a caller");
                    if !supporters.contains(&caller) {
                        return fail("caller missing from its own supporter set");
                    }
                    if !supporters.is_subset(&cache.config().members()) {
                        return fail("supporters outside the configuration's members");
                    }
                }
            }
        }
    }
    Ok(())
}

/// Runs the full invariant suite with the paper's rdist bound of 1 for the
/// bounded lemmas, collecting every violation.
///
/// An empty result certifies the state against all checks in this module.
///
/// # Examples
///
/// ```
/// use adore_core::majority::Majority;
/// use adore_core::{invariants::check_all, AdoreState};
/// let st: AdoreState<Majority, ()> = AdoreState::new(Majority::new([1, 2, 3]));
/// assert!(check_all(&st).is_empty());
/// ```
#[must_use]
pub fn check_all<C: Configuration, M: Clone>(st: &AdoreState<C, M>) -> Vec<Violation> {
    check_all_named(st)
        .into_iter()
        .filter_map(|(_, r)| r.err())
        .collect()
}

/// Names of the lemmas [`check_all`] evaluates, in evaluation order.
/// The observability layer keys its per-lemma evaluation counters on
/// these names.
pub const LEMMA_NAMES: [&str; 6] = [
    "safety",
    "descendant-order",
    "leader-time-uniqueness",
    "election-commit-order",
    "ccache-in-rcache-fork",
    "structure",
];

/// [`check_all`], with each lemma's verdict paired with its name from
/// [`LEMMA_NAMES`] — the hook the checker's profiling mode uses to
/// attribute evaluation counts (and violations) to individual lemmas.
#[must_use]
pub fn check_all_named<C: Configuration, M: Clone>(
    st: &AdoreState<C, M>,
) -> Vec<(&'static str, Result<(), Violation>)> {
    let checks: [Result<(), Violation>; 6] = [
        check_safety(st),
        check_descendant_order(st),
        check_leader_time_uniqueness(st, 1),
        check_election_commit_order(st, 1),
        check_ccache_in_rcache_fork(st),
        check_structure(st),
    ];
    LEMMA_NAMES.into_iter().zip(checks).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{node_set, NodeId, Timestamp};
    use crate::majority::Majority;
    use crate::state::{PullDecision, PullOutcome, PushDecision, PushOutcome, ReconfigGuard};

    type St = AdoreState<Majority, &'static str>;

    fn three() -> St {
        AdoreState::new(Majority::new([1, 2, 3]))
    }

    fn pull_ok(st: &mut St, nid: u32, supp: &[u32], t: u64) -> CacheId {
        match st
            .pull(
                NodeId(nid),
                &PullDecision::Ok {
                    supporters: node_set(supp.iter().copied()),
                    time: Timestamp(t),
                },
            )
            .unwrap()
        {
            PullOutcome::Elected(id) => id,
            other => panic!("expected election, got {other:?}"),
        }
    }

    fn push_ok(st: &mut St, nid: u32, supp: &[u32], target: CacheId) -> CacheId {
        match st
            .push(
                NodeId(nid),
                &PushDecision::Ok {
                    supporters: node_set(supp.iter().copied()),
                    target,
                },
            )
            .unwrap()
        {
            PushOutcome::Committed(id) => id,
            other => panic!("expected commit, got {other:?}"),
        }
    }

    /// Runs the paper's Fig. 5 walkthrough and certifies every invariant at
    /// each step.
    #[test]
    fn fig5_walkthrough_preserves_all_invariants() {
        let mut st = three();
        // (b) S1 elected, invokes M1, M2.
        pull_ok(&mut st, 1, &[1, 2], 1);
        let _m1 = st.invoke(NodeId(1), "M1").applied().unwrap();
        let m2 = st.invoke(NodeId(1), "M2").applied().unwrap();
        assert!(check_all(&st).is_empty());
        // (c) S1 pushes M1·M2 entirely.
        push_ok(&mut st, 1, &[1, 3], m2);
        assert!(check_all(&st).is_empty());
        // (d) S1 reconfigures (same config under Majority) then invokes.
        let out = st.reconfig(NodeId(1), Majority::new([1, 2, 3]), ReconfigGuard::all());
        assert!(out.applied().is_some());
        assert!(check_all(&st).is_empty());
        // S1 keeps going below its reconfiguration (it does not yet know a
        // new leader is coming).
        let m4 = st.invoke(NodeId(1), "M4").applied().unwrap();
        // (e) S2 pulls with supporters {S2, S3}, who have not observed S1's
        // later caches; the election lands on the committed prefix.
        let e = pull_ok(&mut st, 2, &[2, 3], 2);
        let parent = st.tree().parent(e).unwrap();
        assert_eq!(st.cache(parent).kind(), CacheKind::Commit);
        let m3 = st.invoke(NodeId(2), "M3").applied().unwrap();
        assert!(check_all(&st).is_empty());
        // M4 sits below the RCache while M3 forked off above it, so the
        // reconfiguration separates them: rdist(M4, M3) = 1.
        assert_eq!(rdist(&st, m4, m3), Some(1));
        assert_eq!(tree_rdist(&st), 1);
    }

    #[test]
    fn competing_uncommitted_branches_are_safe() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        st.invoke(NodeId(1), "M3").applied().unwrap();
        pull_ok(&mut st, 2, &[2, 3], 2);
        st.invoke(NodeId(2), "M5").applied().unwrap();
        assert!(check_all(&st).is_empty());
        // Two forked method branches, no commits: rdist 0, safety holds.
        assert_eq!(tree_rdist(&st), 0);
    }

    /// The exact Fig. 12 trace: with R3 disabled (R2 still on; R1⁺ is
    /// checked by the single-node scheme in `adore-schemes`, so it is
    /// switched off here where `Majority` cannot express the membership
    /// change), two leaders commit on diverging branches. With the full
    /// guard, the first reconfiguration is rejected and the trace is
    /// impossible.
    #[test]
    fn fig12_r3_violation_produces_diverging_commits() {
        let flawed = ReconfigGuard::all().without_r1().without_r3();
        let mut st: AdoreState<Majority, &'static str> =
            AdoreState::new(Majority::new([1, 2, 3, 4]));
        // (a) S1 elected by {1,2,3}, removes S4, fails to replicate it.
        pull_ok(&mut st, 1, &[1, 2, 3], 1);
        let r1 = st
            .reconfig(NodeId(1), Majority::new([1, 2, 3]), flawed)
            .applied()
            .unwrap();
        // (b) S2 elected by {2,3,4}. None of them observe S1's RCache (a
        // vote is not an observation), so the election starts from genesis.
        let e2 = pull_ok(&mut st, 2, &[2, 3, 4], 2);
        assert_eq!(st.tree().parent(e2), Some(adore_tree::Tree::<()>::ROOT));
        // S2 removes S3 and commits the reconfiguration with {S2, S4} — a
        // majority of its new three-node configuration.
        let r2 = st
            .reconfig(NodeId(2), Majority::new([1, 2, 4]), flawed)
            .applied()
            .unwrap();
        let c2 = push_ok(&mut st, 2, &[2, 4], r2);
        // Safety itself has not broken yet — only one commit branch exists —
        // but Lemma B.8 (a consequence of R3) is already falsified: the
        // forking RCaches r1/r2 have no commit below their fork. The lemma
        // acts as the early warning the proof relies on.
        assert_eq!(check_safety(&st), Ok(()));
        assert_eq!(
            check_ccache_in_rcache_fork(&st),
            Err(Violation::MissingForkCommit {
                first: r1,
                second: r2
            })
        );
        // (c) S1 is elected by {1,3} — a majority of *its own* configuration
        // {1,2,3} from its uncommitted RCache — without S2's CCache.
        let e3 = pull_ok(&mut st, 1, &[1, 3], 3);
        assert_eq!(st.tree().parent(e3), Some(r1));
        // The two leaders now commit independently: safety is violated.
        let m = st.invoke(NodeId(1), "M").applied().unwrap();
        let c3 = push_ok(&mut st, 1, &[1, 3], m);
        assert_eq!(
            check_safety(&st),
            Err(Violation::CommitsDiverge {
                first: c2,
                second: c3
            })
        );
        // The sound guard blocks the very first step: without a commit at
        // timestamp 1, R3 rejects S1's reconfiguration.
        let mut sound: AdoreState<Majority, &'static str> =
            AdoreState::new(Majority::new([1, 2, 3, 4]));
        match sound.pull(
            NodeId(1),
            &PullDecision::Ok {
                supporters: node_set([1, 2, 3]),
                time: Timestamp(1),
            },
        ) {
            Ok(PullOutcome::Elected(_)) => {}
            other => panic!("expected election, got {other:?}"),
        }
        let out = sound.reconfig(
            NodeId(1),
            Majority::new([1, 2, 3]),
            ReconfigGuard::all().without_r1(),
        );
        assert_eq!(
            out,
            crate::LocalOutcome::NoOp(crate::NoOpReason::R3Violated)
        );
    }

    #[test]
    fn rdist_counts_only_rcaches() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        let m1 = st.invoke(NodeId(1), "a").applied().unwrap();
        push_ok(&mut st, 1, &[1, 2], m1);
        let r = st
            .reconfig(NodeId(1), Majority::new([1, 2, 3]), ReconfigGuard::all())
            .applied()
            .unwrap();
        let m2 = st.invoke(NodeId(1), "b").applied().unwrap();
        assert_eq!(rdist(&st, m1, m2), Some(1));
        assert_eq!(rdist(&st, r, m2), Some(0));
        assert_eq!(rdist(&st, m1, r), Some(0));
        assert_eq!(tree_rdist(&st), 1);
    }

    #[test]
    fn order_inversion_detected_on_corrupt_state() {
        // States built through the API satisfy B.1; a corrupt state is
        // simulated by deserializing a manually assembled tree.
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        let json = serde_json::to_string(&st).unwrap();
        // Tamper: swap the election's timestamp down to 0.
        let tampered = json.replace("\"time\":1", "\"time\":0");
        let bad: AdoreState<Majority, String> = serde_json::from_str(&tampered).unwrap();
        assert!(matches!(
            check_descendant_order(&bad),
            Err(Violation::OrderInversion { .. })
        ));
    }

    #[test]
    fn structure_check_accepts_api_built_states() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        let m = st.invoke(NodeId(1), "a").applied().unwrap();
        push_ok(&mut st, 1, &[1, 2], m);
        assert_eq!(check_structure(&st), Ok(()));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::CommitsDiverge {
            first: CacheId::from_index(3),
            second: CacheId::from_index(5),
        };
        assert_eq!(v.to_string(), "commits #3 and #5 lie on diverging branches");
    }
}
