//! The ADORE model: atomic distributed objects with certified
//! reconfiguration.
//!
//! This crate is an executable reproduction of the protocol-level model from
//! *"Adore: Atomic Distributed Objects with Certified Reconfiguration"*
//! (Honoré, Shin, Kim, Shao — PLDI 2022). ADORE represents the complete
//! history of a reconfigurable consensus protocol — committed states,
//! partial failures, leader elections, and configuration changes — as a
//! single append-only **cache tree**, and reduces all network communication
//! to four atomic operations:
//!
//! * [`AdoreState::pull`] — a leader election (adds an `ECache`),
//! * [`AdoreState::invoke`] — a method invocation (adds an `MCache`),
//! * [`AdoreState::reconfig`] — a "hot" configuration change (adds an
//!   `RCache` that takes effect immediately),
//! * [`AdoreState::push`] — a commit (splices in a `CCache`).
//!
//! The model is generic over the reconfiguration scheme through the
//! [`Configuration`] trait (the paper's `mbrs`/`isQuorum`/`R1⁺` parameters);
//! the sibling crate `adore-schemes` provides Raft single-node, Raft joint
//! consensus, primary-backup, dynamic-quorum and other instantiations, and
//! `adore-checker` exhaustively certifies the safety invariants in
//! [`invariants`] over every reachable state of small clusters.
//!
//! # Quickstart
//!
//! ```
//! use adore_core::majority::Majority;
//! use adore_core::{
//!     invariants, node_set, AdoreState, NodeId, PullDecision, PushDecision, Timestamp,
//! };
//!
//! // A three-replica object whose methods are strings.
//! let mut st: AdoreState<Majority, &str> = AdoreState::new(Majority::new([1, 2, 3]));
//!
//! // S1 wins an election supported by {S1, S2} at timestamp 1 ...
//! st.pull(NodeId(1), &PullDecision::Ok {
//!     supporters: node_set([1, 2]),
//!     time: Timestamp(1),
//! })?;
//! // ... invokes a method, and commits it with a quorum.
//! let m = st.invoke(NodeId(1), "put(a, 1)").applied().unwrap();
//! st.push(NodeId(1), &PushDecision::Ok {
//!     supporters: node_set([1, 3]),
//!     target: m,
//! })?;
//!
//! assert_eq!(st.committed_log(), vec![m]);
//! assert!(invariants::check_all(&st).is_empty());
//! # Ok::<(), adore_core::OracleError>(())
//! ```
//!
//! # Map to the paper
//!
//! | Paper artifact | Here |
//! |---|---|
//! | `Σ_Adore`, `TimeMap` (Fig. 6) | [`AdoreState`] |
//! | `Cache` variants (Fig. 6/24) | [`Cache`] |
//! | `Config`/`mbrs`/`isQuorum`/`R1⁺` (Fig. 7) | [`Configuration`] |
//! | `>` on caches (Fig. 9) | [`Cache::key`] / [`CacheOrderKey`] |
//! | Operations (Figs. 8, 10, 28) | methods on [`AdoreState`] |
//! | Valid oracles (Figs. 11, 27) | [`PullDecision`]/[`PushDecision`] validation |
//! | R2/R3/`canReconf` | [`AdoreState::r2_holds`]/[`AdoreState::r3_holds`]/[`ReconfigGuard`] |
//! | `rdist`, safety, lemmas (§4, App. B) | [`invariants`] |
//! | CADO (no reconfiguration) | [`cado::CadoState`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
mod cache;
pub mod cado;
mod config;
pub mod enumerate;
pub mod extensions;
pub mod invariants;
pub mod majority;
pub mod render;
mod state;
pub mod telemetry;

pub use cache::{Cache, CacheKind, CacheOrderKey};
pub use config::{
    check_overlap, check_reflexive, node_set, Configuration, NodeId, NodeSet, Timestamp, Version,
};
pub use invariants::Violation;
pub use state::{
    AdoreState, LocalOutcome, NoOpReason, OracleError, PullDecision, PullOutcome, PushDecision,
    PushOutcome, ReconfigGuard,
};

// Re-exported so downstream crates can name tree handles without adding a
// direct dependency on the substrate crate.
pub use adore_tree::{CacheId, Tree};
