//! The ADORE abstract state and its operational semantics (Figs. 8–11, 26–28).
//!
//! [`AdoreState`] packs the cache tree and the per-replica observed-time map
//! (`Σ_Adore ≜ CacheTree * TimeMap`). The four operations `pull`, `invoke`,
//! `reconfig`, and `push` mutate it exactly as the paper's rules prescribe.
//!
//! Nondeterminism from the network is concentrated in *oracle decisions*
//! ([`PullDecision`], [`PushDecision`]): the environment proposes an
//! outcome, and the semantics **validates** it against the valid-oracle
//! rules of Fig. 11/27 before applying it — an invalid decision is an
//! [`OracleError`], never a silent acceptance. Enumerating all valid
//! decisions (see [`crate::enumerate`]) turns the semantics into a
//! model-checkable transition system.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use adore_tree::{CacheId, Tree};

use crate::cache::{Cache, CacheKind, CacheOrderKey};
use crate::config::{Configuration, NodeId, NodeSet, Timestamp};

/// Reconfiguration guard switches: which of the paper's side conditions
/// `reconfig` enforces.
///
/// The full ADORE model uses [`ReconfigGuard::all`]. Switching individual
/// conditions off yields the historically buggy variants — most notably
/// `ReconfigGuard::all().without_r3()`, which is Raft's original single-server
/// membership-change algorithm whose violation (Fig. 4/12 of the paper) the
/// model checker rediscovers.
///
/// # Examples
///
/// ```
/// use adore_core::ReconfigGuard;
/// let flawed = ReconfigGuard::all().without_r3();
/// assert!(flawed.r1 && flawed.r2 && !flawed.r3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReconfigGuard {
    /// Enforce `R1⁺(conf(C_A), ncf)`: consecutive configurations related.
    pub r1: bool,
    /// Enforce R2: no uncommitted `RCache` on the active branch.
    pub r2: bool,
    /// Enforce R3: a `CCache` with the current timestamp on the active branch.
    pub r3: bool,
}

impl ReconfigGuard {
    /// The sound guard enforcing all three conditions.
    #[must_use]
    pub fn all() -> Self {
        ReconfigGuard {
            r1: true,
            r2: true,
            r3: true,
        }
    }

    /// Drops the `R1⁺` check.
    #[must_use]
    pub fn without_r1(mut self) -> Self {
        self.r1 = false;
        self
    }

    /// Drops the R2 check.
    #[must_use]
    pub fn without_r2(mut self) -> Self {
        self.r2 = false;
        self
    }

    /// Drops the R3 check — Raft's original flawed algorithm.
    #[must_use]
    pub fn without_r3(mut self) -> Self {
        self.r3 = false;
        self
    }
}

impl Default for ReconfigGuard {
    fn default() -> Self {
        ReconfigGuard::all()
    }
}

impl fmt::Display for ReconfigGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut on = Vec::new();
        if self.r1 {
            on.push("R1+");
        }
        if self.r2 {
            on.push("R2");
        }
        if self.r3 {
            on.push("R3");
        }
        if on.is_empty() {
            f.write_str("{}")
        } else {
            write!(f, "{{{}}}", on.join(","))
        }
    }
}

/// A pull-oracle decision: the environment's answer to "who received the
/// election request, and what timestamp was drawn?".
///
/// Corresponds to `O_pull` of Fig. 27; the remaining components of the
/// paper's oracle tuple (`C_max`, `Q_ok`) are functions of the state and the
/// supporter set, so they are computed — not chosen — here.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PullDecision {
    /// The request reached `supporters`, who all adopt timestamp `time`.
    Ok {
        /// The replicas that voted (must include the caller).
        supporters: NodeSet,
        /// The fresh timestamp (must exceed every supporter's observed time).
        time: Timestamp,
    },
    /// The network dropped the election entirely (`PullNoOp`).
    Fail,
}

/// A push-oracle decision: the environment's answer to "which cache got
/// committed, and who acknowledged it?".
///
/// Corresponds to `O_push` of Fig. 27.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PushDecision {
    /// The commit request for cache `target` reached `supporters`.
    Ok {
        /// The replicas that acknowledged (must include the caller).
        supporters: NodeSet,
        /// The `MCache`/`RCache` being committed (an arbitrary prefix point
        /// of the caller's active branch).
        target: CacheId,
    },
    /// The network dropped the commit entirely (`PushNoOp`).
    Fail,
}

/// Why an operation was a no-op (the paper's `*NoOp` rules and unmet
/// premises of the `*Ok` rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NoOpReason {
    /// The oracle returned `Fail`.
    OracleFailed,
    /// The caller has no active cache (never successfully pulled).
    NoActiveCache,
    /// The caller's active cache time differs from its observed time — it
    /// has been preempted by a newer leader.
    NotLeader,
    /// `R1⁺(conf(C_A), ncf)` does not hold.
    R1Violated,
    /// An uncommitted `RCache` sits on the active branch (R2).
    R2Violated,
    /// No `CCache` with the current timestamp on the active branch (R3).
    R3Violated,
    /// The α-window of uncommitted commands is full
    /// (see [`crate::extensions::invoke_windowed`]).
    WindowFull,
}

impl fmt::Display for NoOpReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NoOpReason::OracleFailed => "oracle returned failure",
            NoOpReason::NoActiveCache => "caller has no active cache",
            NoOpReason::NotLeader => "caller is not the leader at its active cache's time",
            NoOpReason::R1Violated => "new configuration is not R1+-related to the current one",
            NoOpReason::R2Violated => "an uncommitted reconfiguration is already in flight",
            NoOpReason::R3Violated => "no commit at the current timestamp yet",
            NoOpReason::WindowFull => "the window of uncommitted commands is full",
        };
        f.write_str(s)
    }
}

/// An oracle decision that violates the valid-oracle rules of Fig. 11/27.
///
/// These are *caller errors*, not protocol outcomes: a conforming
/// environment (such as [`crate::enumerate`]) never produces them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleError {
    /// The supporter set does not include the caller.
    CallerNotSupporter,
    /// `mostRecent` is undefined: no cache is supported by any member of
    /// the proposed supporter set.
    NoMostRecent,
    /// The supporter set is not a subset of the relevant configuration's
    /// members (`validSupp`).
    SupportersOutsideConfig,
    /// A supporter has already observed a timestamp `>= t` (pull) or
    /// `> time(C_M)` (push).
    StaleTimestamp {
        /// The offending supporter.
        supporter: NodeId,
    },
    /// The push target is not in the tree.
    UnknownTarget,
    /// The push target fails `canCommit` (wrong kind, wrong caller, caller
    /// not leader, or not newer than the caller's last commit).
    CannotCommit,
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::CallerNotSupporter => f.write_str("caller missing from supporter set"),
            OracleError::NoMostRecent => {
                f.write_str("no cache is supported by any proposed supporter")
            }
            OracleError::SupportersOutsideConfig => {
                f.write_str("supporter set is not within the configuration's members")
            }
            OracleError::StaleTimestamp { supporter } => {
                write!(f, "supporter {supporter} has observed a newer timestamp")
            }
            OracleError::UnknownTarget => f.write_str("push target is not in the tree"),
            OracleError::CannotCommit => f.write_str("push target fails canCommit"),
        }
    }
}

impl std::error::Error for OracleError {}

/// Result of a [`AdoreState::pull`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PullOutcome {
    /// A quorum voted; the new `ECache` was added at the returned id.
    Elected(CacheId),
    /// Votes were collected and timestamps advanced, but short of a quorum.
    /// The election blocks older leaders without electing a new one.
    NoQuorum,
    /// The oracle failed; the state is unchanged.
    Failed,
}

/// Result of an [`AdoreState::invoke`] or [`AdoreState::reconfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalOutcome {
    /// The new `MCache`/`RCache` was appended at the returned id.
    Applied(CacheId),
    /// The operation was a no-op for the given reason.
    NoOp(NoOpReason),
}

impl LocalOutcome {
    /// The new cache id, if the operation applied.
    #[must_use]
    pub fn applied(self) -> Option<CacheId> {
        match self {
            LocalOutcome::Applied(id) => Some(id),
            LocalOutcome::NoOp(_) => None,
        }
    }
}

/// Result of an [`AdoreState::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PushOutcome {
    /// A quorum acknowledged; the new `CCache` was spliced in at the id.
    Committed(CacheId),
    /// Acknowledgements were collected and timestamps advanced, but short
    /// of a quorum; nothing was committed.
    NoQuorum,
    /// The oracle failed; the state is unchanged.
    Failed,
}

/// The ADORE abstract state: a cache tree plus each replica's largest
/// observed timestamp (`Σ_Adore`, Fig. 6).
///
/// # Examples
///
/// ```
/// use adore_core::majority::Majority;
/// use adore_core::{node_set, AdoreState, PullDecision, PullOutcome, Timestamp};
/// # use adore_core::NodeId;
///
/// let mut st: AdoreState<Majority, &str> = AdoreState::new(Majority::new([1, 2, 3]));
/// let outcome = st
///     .pull(NodeId(1), &PullDecision::Ok {
///         supporters: node_set([1, 2]),
///         time: Timestamp(1),
///     })?
///     ;
/// assert!(matches!(outcome, PullOutcome::Elected(_)));
/// # Ok::<(), adore_core::OracleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AdoreState<C, M> {
    tree: Tree<Cache<C, M>>,
    times: BTreeMap<NodeId, Timestamp>,
}

impl<C: Configuration, M: Clone> AdoreState<C, M> {
    /// Creates the initial state: a genesis root under `conf0` and all
    /// observed times at zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::majority::Majority;
    /// use adore_core::AdoreState;
    /// let st: AdoreState<Majority, ()> = AdoreState::new(Majority::new([1, 2, 3]));
    /// assert_eq!(st.tree().len(), 1);
    /// ```
    #[must_use]
    pub fn new(conf0: C) -> Self {
        AdoreState {
            tree: Tree::new(Cache::Genesis { config: conf0 }),
            times: BTreeMap::new(),
        }
    }

    /// The underlying cache tree.
    #[must_use]
    pub fn tree(&self) -> &Tree<Cache<C, M>> {
        &self.tree
    }

    /// The cache stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the tree; ids obtained from this state are
    /// always valid because the tree is append-only.
    #[must_use]
    pub fn cache(&self, id: CacheId) -> &Cache<C, M> {
        self.tree.payload(id).expect("cache id out of range")
    }

    /// The largest timestamp `nid` has observed (`times(st)[nid]`).
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::majority::Majority;
    /// use adore_core::{AdoreState, NodeId, Timestamp};
    /// let st: AdoreState<Majority, ()> = AdoreState::new(Majority::new([1, 2]));
    /// assert_eq!(st.observed_time(NodeId(1)), Timestamp::ZERO);
    /// ```
    #[must_use]
    pub fn observed_time(&self, nid: NodeId) -> Timestamp {
        self.times.get(&nid).copied().unwrap_or(Timestamp::ZERO)
    }

    /// Whether `nid` is the leader at time `t` (`isLeader`, Fig. 9): its
    /// observed time equals `t`.
    #[must_use]
    pub fn is_leader(&self, nid: NodeId, t: Timestamp) -> bool {
        self.observed_time(nid) == t
    }

    /// Every node id mentioned anywhere in the state (configuration members
    /// throughout history plus any node with a recorded time). This is the
    /// universe oracle enumeration draws supporter sets from.
    #[must_use]
    pub fn known_nodes(&self) -> NodeSet {
        let mut all: NodeSet = self.times.keys().copied().collect();
        for (_, cache) in self.tree.iter() {
            all.extend(cache.config().members());
            all.extend(cache.supporters());
        }
        all
    }

    fn max_by_key_then_id<'a>(
        &self,
        candidates: impl Iterator<Item = (CacheId, &'a Cache<C, M>)>,
    ) -> Option<CacheId>
    where
        C: 'a,
        M: 'a,
    {
        candidates
            .map(|(id, c)| (c.key(), id))
            .max()
            .map(|(_, id)| id)
    }

    /// `mostRecent(tr, Q)`: the greatest cache **observed** by any member
    /// of `q` (see [`Cache::observes`]), or `None` if no cache is
    /// (Fig. 9 / Fig. 26).
    ///
    /// Ties on the order key (possible only in unsafe histories) are broken
    /// deterministically by cache id.
    #[must_use]
    pub fn most_recent(&self, q: &NodeSet) -> Option<CacheId> {
        self.max_by_key_then_id(
            self.tree
                .iter()
                .filter(|(_, c)| q.iter().any(|n| c.observes(*n))),
        )
    }

    /// `activeCache(tr, nid)`: the greatest cache called by `nid`, or
    /// `None` if `nid` has never created one.
    #[must_use]
    pub fn active_cache(&self, nid: NodeId) -> Option<CacheId> {
        self.max_by_key_then_id(self.tree.iter().filter(|(_, c)| c.caller() == Some(nid)))
    }

    /// `lastCommit(tr, nid)`: the greatest commit-like cache supported by
    /// `nid`. Total because the genesis root is commit-like and supported
    /// by every initial member; for nodes added later that have supported
    /// no commit it returns `None`.
    #[must_use]
    pub fn last_commit(&self, nid: NodeId) -> Option<CacheId> {
        self.max_by_key_then_id(
            self.tree
                .iter()
                .filter(|(_, c)| c.is_commit_like() && c.is_supporter(nid)),
        )
    }

    /// `setTimes(st, Q, t)`: records that every member of `q` observed `t`.
    fn set_times(&mut self, q: &NodeSet, t: Timestamp) {
        for &s in q {
            self.times.insert(s, t);
        }
    }

    /// R2 (Fig. 7): no uncommitted `RCache` on the branch from the root to
    /// `below`, inclusive — every `RCache` on the branch must have a
    /// `CCache` descendant on the same branch (up to and including `below`).
    ///
    /// Inclusivity matters at both ends: an active cache that is itself an
    /// `RCache` is uncommitted (blocking stacked reconfigurations), while an
    /// active cache that is the `CCache` certifying an earlier `RCache`
    /// unblocks the next one.
    #[must_use]
    pub fn r2_holds(&self, below: CacheId) -> bool {
        // Walk upward from `below` itself; at each RCache encountered, some
        // commit must already have been seen at or below the current point.
        let mut commits_seen = 0usize;
        for anc in self.tree.ancestors_inclusive(below) {
            match self.cache(anc).kind() {
                CacheKind::Reconfig if commits_seen == 0 => return false,
                CacheKind::Commit => commits_seen += 1,
                _ => {}
            }
        }
        true
    }

    /// R3 (Fig. 7): some `CCache` on the branch from the root to `below`,
    /// inclusive, carries the same timestamp as `below` — the leader's log
    /// contains a committed command with the current timestamp.
    #[must_use]
    pub fn r3_holds(&self, below: CacheId) -> bool {
        let t = self.cache(below).time();
        self.tree
            .ancestors_inclusive(below)
            .any(|anc| self.cache(anc).kind() == CacheKind::Commit && self.cache(anc).time() == t)
    }

    /// `canCommit(C, nid, st)` (Fig. 9): whether `target` is a valid commit
    /// point for leader `nid`.
    #[must_use]
    pub fn can_commit(&self, target: CacheId, nid: NodeId) -> bool {
        let Some(cache) = self.tree.payload(target) else {
            return false;
        };
        let kind_ok = matches!(cache.kind(), CacheKind::Method | CacheKind::Reconfig);
        if !kind_ok || cache.caller() != Some(nid) || !self.is_leader(nid, cache.time()) {
            return false;
        }
        match self.last_commit(nid) {
            Some(lc) => cache.key() > self.cache(lc).key(),
            None => true,
        }
    }

    /// Performs `pull(nid)` under the supplied oracle decision
    /// (rules `PullOk`/`PullNoOp`, Fig. 10).
    ///
    /// On a successful decision, every supporter's observed time advances to
    /// the drawn timestamp; if the supporters form a quorum of
    /// `conf(mostRecent(Q))`, a new `ECache` is appended below `mostRecent(Q)`.
    ///
    /// # Errors
    ///
    /// Returns an [`OracleError`] (leaving the state unchanged) if the
    /// decision violates `ValidPullOracle` (Fig. 11): the caller must be a
    /// supporter, `mostRecent` must exist, supporters must be members of
    /// its configuration, and the timestamp must exceed every supporter's
    /// observed time.
    pub fn pull(
        &mut self,
        nid: NodeId,
        decision: &PullDecision,
    ) -> Result<PullOutcome, OracleError> {
        let PullDecision::Ok { supporters, time } = decision else {
            return Ok(PullOutcome::Failed);
        };
        if !supporters.contains(&nid) {
            return Err(OracleError::CallerNotSupporter);
        }
        let max_id = self
            .most_recent(supporters)
            .ok_or(OracleError::NoMostRecent)?;
        let config = self.cache(max_id).config().clone();
        if !supporters.is_subset(&config.members()) {
            return Err(OracleError::SupportersOutsideConfig);
        }
        if let Some(&stale) = supporters.iter().find(|s| self.observed_time(**s) >= *time) {
            return Err(OracleError::StaleTimestamp { supporter: stale });
        }
        self.set_times(supporters, *time);
        crate::telemetry::count_quorum_check();
        if config.is_quorum(supporters) {
            let ecache = Cache::Election {
                caller: nid,
                time: *time,
                supporters: supporters.clone(),
                config,
            };
            let id = self
                .tree
                .add_leaf(max_id, ecache)
                .expect("mostRecent returned a valid id");
            Ok(PullOutcome::Elected(id))
        } else {
            Ok(PullOutcome::NoQuorum)
        }
    }

    /// Performs `invoke(nid, method)` (rules `InvokeOk`/`InvokeNoOp`).
    ///
    /// Appends an `MCache` after the caller's active cache if the caller is
    /// still the leader at that cache's timestamp; otherwise a no-op.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::majority::Majority;
    /// use adore_core::{AdoreState, LocalOutcome, NoOpReason, NodeId};
    /// let mut st: AdoreState<Majority, &str> = AdoreState::new(Majority::new([1, 2, 3]));
    /// // Without an election, invoking is a no-op.
    /// let out = st.invoke(NodeId(1), "put");
    /// assert_eq!(out, LocalOutcome::NoOp(NoOpReason::NoActiveCache));
    /// ```
    pub fn invoke(&mut self, nid: NodeId, method: M) -> LocalOutcome {
        let Some(active) = self.active_cache(nid) else {
            return LocalOutcome::NoOp(NoOpReason::NoActiveCache);
        };
        let (time, vrsn, config) = {
            let c = self.cache(active);
            (c.time(), c.vrsn(), c.config().clone())
        };
        if !self.is_leader(nid, time) {
            return LocalOutcome::NoOp(NoOpReason::NotLeader);
        }
        let mcache = Cache::Method {
            caller: nid,
            time,
            vrsn: vrsn.next(),
            method,
            config,
        };
        let id = self
            .tree
            .add_leaf(active, mcache)
            .expect("active cache is a valid id");
        LocalOutcome::Applied(id)
    }

    /// Performs `reconfig(nid, new_config)` under the given guard
    /// (rules `ReconfigOk`/`ReconfigNoOp`).
    ///
    /// Appends an `RCache` carrying `new_config` after the caller's active
    /// cache if the caller is the leader and `canReconf` — i.e. the enabled
    /// subset of R1⁺/R2/R3 — holds. The new configuration takes effect
    /// immediately for descendants ("hot" reconfiguration).
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::majority::Majority;
    /// use adore_core::{
    ///     node_set, AdoreState, LocalOutcome, NoOpReason, NodeId, PullDecision, ReconfigGuard,
    ///     Timestamp,
    /// };
    ///
    /// let mut st: AdoreState<Majority, &str> = AdoreState::new(Majority::new([1, 2, 3]));
    /// st.pull(NodeId(1), &PullDecision::Ok {
    ///     supporters: node_set([1, 2]),
    ///     time: Timestamp(1),
    /// })?;
    /// // R3 blocks reconfiguration before anything commits at this term.
    /// let out = st.reconfig(NodeId(1), Majority::new([1, 2, 3]), ReconfigGuard::all());
    /// assert_eq!(out, LocalOutcome::NoOp(NoOpReason::R3Violated));
    /// # Ok::<(), adore_core::OracleError>(())
    /// ```
    pub fn reconfig(&mut self, nid: NodeId, new_config: C, guard: ReconfigGuard) -> LocalOutcome {
        let Some(active) = self.active_cache(nid) else {
            return LocalOutcome::NoOp(NoOpReason::NoActiveCache);
        };
        let (time, vrsn, config) = {
            let c = self.cache(active);
            (c.time(), c.vrsn(), c.config().clone())
        };
        if !self.is_leader(nid, time) {
            return LocalOutcome::NoOp(NoOpReason::NotLeader);
        }
        if guard.r1 && !config.r1_plus(&new_config) {
            return LocalOutcome::NoOp(NoOpReason::R1Violated);
        }
        if guard.r2 && !self.r2_holds(active) {
            return LocalOutcome::NoOp(NoOpReason::R2Violated);
        }
        if guard.r3 && !self.r3_holds(active) {
            return LocalOutcome::NoOp(NoOpReason::R3Violated);
        }
        let rcache = Cache::Reconfig {
            caller: nid,
            time,
            vrsn: vrsn.next(),
            config: new_config,
        };
        let id = self
            .tree
            .add_leaf(active, rcache)
            .expect("active cache is a valid id");
        LocalOutcome::Applied(id)
    }

    /// Performs `push(nid)` under the supplied oracle decision
    /// (rules `PushOk`/`PushNoOp`).
    ///
    /// On a successful decision, every supporter's observed time advances to
    /// the target's timestamp; if the supporters form a quorum of the
    /// target's configuration, a `CCache` is spliced **between** the target
    /// and its children (`insertBtw`), leaving uncommitted descendants
    /// viable.
    ///
    /// # Errors
    ///
    /// Returns an [`OracleError`] (leaving the state unchanged) if the
    /// decision violates `ValidPushOracle` (Fig. 11): the target must exist
    /// and satisfy `canCommit`, the caller must be a supporter, supporters
    /// must be members of the target's configuration, and no supporter may
    /// have observed a time beyond the target's.
    pub fn push(
        &mut self,
        nid: NodeId,
        decision: &PushDecision,
    ) -> Result<PushOutcome, OracleError> {
        let PushDecision::Ok { supporters, target } = decision else {
            return Ok(PushOutcome::Failed);
        };
        let Some(target_cache) = self.tree.payload(*target) else {
            return Err(OracleError::UnknownTarget);
        };
        let (time, vrsn, config) = (
            target_cache.time(),
            target_cache.vrsn(),
            target_cache.config().clone(),
        );
        if !supporters.contains(&nid) {
            return Err(OracleError::CallerNotSupporter);
        }
        if !supporters.is_subset(&config.members()) {
            return Err(OracleError::SupportersOutsideConfig);
        }
        if let Some(&stale) = supporters.iter().find(|s| self.observed_time(**s) > time) {
            return Err(OracleError::StaleTimestamp { supporter: stale });
        }
        if !self.can_commit(*target, nid) {
            return Err(OracleError::CannotCommit);
        }
        self.set_times(supporters, time);
        crate::telemetry::count_quorum_check();
        if config.is_quorum(supporters) {
            let ccache = Cache::Commit {
                caller: nid,
                time,
                vrsn,
                supporters: supporters.clone(),
                config,
            };
            let id = self
                .tree
                .insert_between(*target, ccache)
                .expect("push target is a valid id");
            Ok(PushOutcome::Committed(id))
        } else {
            Ok(PushOutcome::NoQuorum)
        }
    }

    /// Ids of all commit-like caches (genesis plus every `CCache`).
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::majority::Majority;
    /// use adore_core::AdoreState;
    /// let st: AdoreState<Majority, ()> = AdoreState::new(Majority::new([1, 2]));
    /// assert_eq!(st.commits().count(), 1); // genesis only
    /// ```
    pub fn commits(&self) -> impl Iterator<Item = CacheId> + '_ {
        self.tree
            .iter()
            .filter(|(_, c)| c.is_commit_like())
            .map(|(id, _)| id)
    }

    /// The committed history: methods and reconfigurations that are
    /// ancestors of some `CCache`, in root-to-leaf order.
    ///
    /// When replicated state safety holds, this is the unique agreed log.
    /// It is computed from the deepest commit's branch.
    ///
    /// # Examples
    ///
    /// ```
    /// use adore_core::majority::Majority;
    /// use adore_core::{node_set, AdoreState, NodeId, PullDecision, PushDecision, Timestamp};
    ///
    /// let mut st: AdoreState<Majority, &str> = AdoreState::new(Majority::new([1, 2]));
    /// st.pull(NodeId(1), &PullDecision::Ok {
    ///     supporters: node_set([1, 2]),
    ///     time: Timestamp(1),
    /// })?;
    /// let m = st.invoke(NodeId(1), "put").applied().unwrap();
    /// assert!(st.committed_log().is_empty()); // not yet pushed
    /// st.push(NodeId(1), &PushDecision::Ok {
    ///     supporters: node_set([1, 2]),
    ///     target: m,
    /// })?;
    /// assert_eq!(st.committed_log(), vec![m]);
    /// # Ok::<(), adore_core::OracleError>(())
    /// ```
    #[must_use]
    pub fn committed_log(&self) -> Vec<CacheId> {
        let Some(deepest) = self.commits().max_by_key(|id| (self.tree.depth(*id), *id)) else {
            return Vec::new();
        };
        let mut branch: Vec<CacheId> = self
            .tree
            .ancestors_inclusive(deepest)
            .filter(|id| {
                matches!(
                    self.cache(*id).kind(),
                    CacheKind::Method | CacheKind::Reconfig
                )
            })
            .collect();
        branch.reverse();
        branch
    }

    /// The key of the order (Fig. 9) for the cache at `id`.
    #[must_use]
    pub fn key_of(&self, id: CacheId) -> CacheOrderKey {
        self.cache(id).key()
    }

    /// Appends a cache verbatim under `parent`, without any semantic
    /// validation — the escape hatch behind
    /// [`crate::builder::StateBuilder`]. States assembled this way may
    /// violate every invariant; that is the point (falsification-testing
    /// the checkers).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not in the tree.
    pub fn attach_raw(&mut self, parent: CacheId, cache: Cache<C, M>) -> CacheId {
        self.tree
            .add_leaf(parent, cache)
            .expect("parent id out of range")
    }

    /// Overwrites the observed times of `q` to `t`, without validation
    /// (companion to [`AdoreState::attach_raw`]).
    pub fn set_times_raw(&mut self, q: &NodeSet, t: Timestamp) {
        self.set_times(q, t);
    }

    /// Deletes every cache not on the root-to-`keep` branch and not a
    /// descendant of `keep`, compacting ids; returns the old-id → new-id
    /// remapping. Observed times are unaffected.
    ///
    /// This is **not** a core ADORE operation: it implements the
    /// stop-the-world reconfiguration extension of §8 — see
    /// [`crate::extensions::push_stop_the_world`], its only intended
    /// caller besides tests.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is not in the tree; ids obtained from this state
    /// are always valid.
    pub fn prune_to_branch(&mut self, keep: CacheId) -> BTreeMap<CacheId, CacheId> {
        self.tree
            .prune_to_branch(keep)
            .expect("cache id out of range")
    }

    /// Renders the cache tree as indented ASCII, one cache per line.
    ///
    /// Useful in counterexample reports; the drawing is stable (children in
    /// insertion order).
    #[must_use]
    pub fn render_tree(&self) -> String
    where
        M: fmt::Debug,
    {
        let mut out = String::new();
        let mut stack = vec![(Tree::<Cache<C, M>>::ROOT, 0usize)];
        while let Some((id, depth)) = stack.pop() {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("{id} {}\n", self.cache(id).summary()));
            for &child in self.tree.children(id).iter().rev() {
                stack.push((child, depth + 1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::node_set;
    use crate::majority::Majority;

    type St = AdoreState<Majority, &'static str>;

    fn three() -> St {
        AdoreState::new(Majority::new([1, 2, 3]))
    }

    fn pull_ok(st: &mut St, nid: u32, supp: &[u32], t: u64) -> CacheId {
        match st
            .pull(
                NodeId(nid),
                &PullDecision::Ok {
                    supporters: node_set(supp.iter().copied()),
                    time: Timestamp(t),
                },
            )
            .unwrap()
        {
            PullOutcome::Elected(id) => id,
            other => panic!("expected election, got {other:?}"),
        }
    }

    fn push_ok(st: &mut St, nid: u32, supp: &[u32], target: CacheId) -> CacheId {
        match st
            .push(
                NodeId(nid),
                &PushDecision::Ok {
                    supporters: node_set(supp.iter().copied()),
                    target,
                },
            )
            .unwrap()
        {
            PushOutcome::Committed(id) => id,
            other => panic!("expected commit, got {other:?}"),
        }
    }

    #[test]
    fn initial_state_is_genesis_only() {
        let st = three();
        assert_eq!(st.tree().len(), 1);
        assert_eq!(st.observed_time(NodeId(1)), Timestamp::ZERO);
        assert_eq!(st.active_cache(NodeId(1)), None);
        // Genesis is everyone's last commit.
        assert!(st.last_commit(NodeId(2)).is_some());
    }

    #[test]
    fn successful_pull_adds_ecache_and_advances_times() {
        let mut st = three();
        let e = pull_ok(&mut st, 1, &[1, 2], 1);
        assert_eq!(st.cache(e).kind(), CacheKind::Election);
        assert_eq!(st.observed_time(NodeId(1)), Timestamp(1));
        assert_eq!(st.observed_time(NodeId(2)), Timestamp(1));
        assert_eq!(st.observed_time(NodeId(3)), Timestamp::ZERO);
        assert_eq!(st.active_cache(NodeId(1)), Some(e));
        assert!(st.is_leader(NodeId(1), Timestamp(1)));
    }

    #[test]
    fn non_quorum_pull_advances_times_without_ecache() {
        let mut st = three();
        let out = st
            .pull(
                NodeId(1),
                &PullDecision::Ok {
                    supporters: node_set([1]),
                    time: Timestamp(5),
                },
            )
            .unwrap();
        assert_eq!(out, PullOutcome::NoQuorum);
        assert_eq!(st.tree().len(), 1);
        assert_eq!(st.observed_time(NodeId(1)), Timestamp(5));
        // The failed election still blocks older leaders: S1's time is now 5.
    }

    #[test]
    fn failed_pull_changes_nothing() {
        let mut st = three();
        assert_eq!(
            st.pull(NodeId(1), &PullDecision::Fail),
            Ok(PullOutcome::Failed)
        );
        assert_eq!(st, three());
    }

    #[test]
    fn pull_rejects_stale_timestamp() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 3);
        let err = st
            .pull(
                NodeId(2),
                &PullDecision::Ok {
                    supporters: node_set([1, 2]),
                    time: Timestamp(3),
                },
            )
            .unwrap_err();
        assert!(matches!(err, OracleError::StaleTimestamp { .. }));
    }

    #[test]
    fn pull_rejects_caller_outside_supporters() {
        let mut st = three();
        let err = st
            .pull(
                NodeId(1),
                &PullDecision::Ok {
                    supporters: node_set([2, 3]),
                    time: Timestamp(1),
                },
            )
            .unwrap_err();
        assert_eq!(err, OracleError::CallerNotSupporter);
    }

    #[test]
    fn pull_rejects_supporters_outside_config() {
        let mut st = three();
        let err = st
            .pull(
                NodeId(1),
                &PullDecision::Ok {
                    supporters: node_set([1, 2, 9]),
                    time: Timestamp(1),
                },
            )
            .unwrap_err();
        assert_eq!(err, OracleError::SupportersOutsideConfig);
    }

    #[test]
    fn invoke_appends_mcache_with_incremented_version() {
        let mut st = three();
        let e = pull_ok(&mut st, 1, &[1, 2], 1);
        let m = st.invoke(NodeId(1), "a").applied().unwrap();
        assert_eq!(st.tree().parent(m), Some(e));
        assert_eq!(st.cache(m).vrsn(), crate::Version(1));
        let m2 = st.invoke(NodeId(1), "b").applied().unwrap();
        assert_eq!(st.tree().parent(m2), Some(m));
        assert_eq!(st.cache(m2).vrsn(), crate::Version(2));
        assert_eq!(st.active_cache(NodeId(1)), Some(m2));
    }

    #[test]
    fn preempted_leader_cannot_invoke() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        pull_ok(&mut st, 2, &[1, 2, 3], 2); // preempts S1
        assert_eq!(
            st.invoke(NodeId(1), "x"),
            LocalOutcome::NoOp(NoOpReason::NotLeader)
        );
    }

    #[test]
    fn push_commits_prefix_and_shifts_children() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        let m1 = st.invoke(NodeId(1), "a").applied().unwrap();
        let m2 = st.invoke(NodeId(1), "b").applied().unwrap();
        // Commit only m1: the CCache lands between m1 and m2.
        let c = push_ok(&mut st, 1, &[1, 3], m1);
        assert_eq!(st.tree().parent(c), Some(m1));
        assert_eq!(st.tree().parent(m2), Some(c));
        let cc = st.cache(c);
        assert_eq!(cc.kind(), CacheKind::Commit);
        assert_eq!(cc.time(), Timestamp(1));
        assert_eq!(cc.vrsn(), crate::Version(1));
        // Supporters observed the commit's time.
        assert_eq!(st.observed_time(NodeId(3)), Timestamp(1));
        assert_eq!(st.committed_log(), vec![m1]);
    }

    #[test]
    fn push_rejects_foreign_or_committed_targets() {
        let mut st = three();
        let e = pull_ok(&mut st, 1, &[1, 2], 1);
        let m1 = st.invoke(NodeId(1), "a").applied().unwrap();
        // Can't commit an ECache.
        let err = st
            .push(
                NodeId(1),
                &PushDecision::Ok {
                    supporters: node_set([1, 2]),
                    target: e,
                },
            )
            .unwrap_err();
        assert_eq!(err, OracleError::CannotCommit);
        // Another node can't commit S1's cache.
        let err = st
            .push(
                NodeId(2),
                &PushDecision::Ok {
                    supporters: node_set([1, 2]),
                    target: m1,
                },
            )
            .unwrap_err();
        assert_eq!(err, OracleError::CannotCommit);
        // After committing m1, recommitting it fails (not > lastCommit).
        push_ok(&mut st, 1, &[1, 2], m1);
        let err = st
            .push(
                NodeId(1),
                &PushDecision::Ok {
                    supporters: node_set([1, 2]),
                    target: m1,
                },
            )
            .unwrap_err();
        assert_eq!(err, OracleError::CannotCommit);
    }

    #[test]
    fn push_no_quorum_advances_times_only() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        let m1 = st.invoke(NodeId(1), "a").applied().unwrap();
        let out = st
            .push(
                NodeId(1),
                &PushDecision::Ok {
                    supporters: node_set([1]),
                    target: m1,
                },
            )
            .unwrap();
        assert_eq!(out, PushOutcome::NoQuorum);
        assert_eq!(st.committed_log(), Vec::<CacheId>::new());
    }

    #[test]
    fn push_rejects_supporter_beyond_target_time() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        let m1 = st.invoke(NodeId(1), "a").applied().unwrap();
        // S3 moves to time 2 via a failed election by S2... S2 pulls with S3.
        let out = st
            .pull(
                NodeId(2),
                &PullDecision::Ok {
                    supporters: node_set([2, 3]),
                    time: Timestamp(2),
                },
            )
            .unwrap();
        assert!(matches!(out, PullOutcome::Elected(_)));
        // S1 (still at time 1) tries to push m1 with supporter S3 (time 2).
        let err = st
            .push(
                NodeId(1),
                &PushDecision::Ok {
                    supporters: node_set([1, 3]),
                    target: m1,
                },
            )
            .unwrap_err();
        // S1 is no longer leader at m1's time? S1's observed time is still 1,
        // so canCommit holds; the stale supporter S3 is the obstacle.
        assert_eq!(
            err,
            OracleError::StaleTimestamp {
                supporter: NodeId(3)
            }
        );
    }

    #[test]
    fn pull_parent_is_most_recent_of_supporters() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        let m1 = st.invoke(NodeId(1), "a").applied().unwrap();
        let c = push_ok(&mut st, 1, &[1, 2], m1);
        let m2 = st.invoke(NodeId(1), "b").applied().unwrap();
        // S2 and S3 have not seen m2 (only S1 supports it), so an election
        // supported by {2, 3} attaches after the commit, not after m2.
        let e = pull_ok(&mut st, 2, &[2, 3], 2);
        assert_eq!(st.tree().parent(e), Some(c));
        // m2 remains a sibling branch below c.
        assert_eq!(st.tree().parent(m2), Some(c));
    }

    #[test]
    fn reconfig_requires_guards() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        // R3 fails: nothing committed at time 1 yet.
        let out = st.reconfig(NodeId(1), Majority::new([1, 2, 3]), ReconfigGuard::all());
        assert_eq!(out, LocalOutcome::NoOp(NoOpReason::R3Violated));
        // Commit something, then reconfig (to the same config — Majority's
        // R1+ is equality) succeeds.
        let m1 = st.invoke(NodeId(1), "a").applied().unwrap();
        push_ok(&mut st, 1, &[1, 2], m1);
        let out = st.reconfig(NodeId(1), Majority::new([1, 2, 3]), ReconfigGuard::all());
        assert!(out.applied().is_some());
        // R2 now fails for a second immediate reconfig.
        let out = st.reconfig(NodeId(1), Majority::new([1, 2, 3]), ReconfigGuard::all());
        assert_eq!(out, LocalOutcome::NoOp(NoOpReason::R2Violated));
        // R1 fails for an unrelated configuration.
        let out = st.reconfig(
            NodeId(1),
            Majority::new([1, 2]),
            ReconfigGuard::all().without_r2().without_r3(),
        );
        assert_eq!(out, LocalOutcome::NoOp(NoOpReason::R1Violated));
    }

    #[test]
    fn disabled_guards_allow_unsafe_reconfigs() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        let guard = ReconfigGuard::all().without_r1().without_r2().without_r3();
        let out = st.reconfig(NodeId(1), Majority::new([1, 2]), guard);
        assert!(out.applied().is_some());
    }

    #[test]
    fn r2_and_r3_walk_the_active_branch() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        let m1 = st.invoke(NodeId(1), "a").applied().unwrap();
        assert!(st.r2_holds(m1));
        assert!(!st.r3_holds(m1));
        let c = push_ok(&mut st, 1, &[1, 2], m1);
        let m2 = st.invoke(NodeId(1), "b").applied().unwrap();
        assert!(st.r3_holds(m2));
        assert!(st.r2_holds(m2));
        let r = st
            .reconfig(NodeId(1), Majority::new([1, 2, 3]), ReconfigGuard::all())
            .applied()
            .unwrap();
        // Below the uncommitted RCache, R2 fails.
        let m3 = st.invoke(NodeId(1), "c").applied().unwrap();
        assert!(!st.r2_holds(m3));
        let _ = (c, r);
    }

    #[test]
    fn committed_log_orders_root_to_leaf() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        let m1 = st.invoke(NodeId(1), "a").applied().unwrap();
        let m2 = st.invoke(NodeId(1), "b").applied().unwrap();
        push_ok(&mut st, 1, &[1, 2], m2);
        assert_eq!(st.committed_log(), vec![m1, m2]);
    }

    #[test]
    fn known_nodes_includes_config_members_and_timed_nodes() {
        let mut st = three();
        assert_eq!(st.known_nodes(), node_set([1, 2, 3]));
        pull_ok(&mut st, 1, &[1, 2], 1);
        assert_eq!(st.known_nodes(), node_set([1, 2, 3]));
    }

    #[test]
    fn render_tree_is_nonempty_and_mentions_kinds() {
        let mut st = three();
        pull_ok(&mut st, 1, &[1, 2], 1);
        st.invoke(NodeId(1), "a").applied().unwrap();
        let drawing = st.render_tree();
        assert!(drawing.contains("G(t0 v0)"));
        assert!(drawing.contains("E(S1 t1"));
        assert!(drawing.contains("M(S1 t1 v1"));
    }
}
