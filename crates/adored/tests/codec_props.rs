//! Wire-codec hardening and session-window edge cases.
//!
//! The codec half: property tests that any payload round-trips through
//! the frame codec and that adversarial inputs — truncation at every
//! byte boundary, oversized length prefixes, corrupt lengths and
//! payloads — always produce a typed [`WireError`], never a panic and
//! never an allocation proportional to a hostile length claim.
//!
//! The session half: the exact verdicts of the exactly-once dedup
//! window under its edge cases — sequence wraparound and regression,
//! window eviction, and a restarted client reusing its old id.

use proptest::prelude::*;

use adored::det::msg::{decode_msg, encode_msg, ClientMsg, ClientReply, PeerMsg};
use adored::det::session::{SeqVerdict, SessionTable};
use adored::det::wire::{
    decode_header, encode_frame, split_frame, WireError, HEADER, MAX_FRAME,
};

// ---- codec properties ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any byte payload survives a frame round trip, and the frame
    /// reports exactly its own length as consumed.
    #[test]
    fn any_payload_round_trips(payload in prop::collection::vec(any::<u8>(), 0..2048)) {
        let framed = encode_frame(&payload).unwrap();
        let (got, used) = split_frame(&framed).unwrap().unwrap();
        prop_assert_eq!(got, payload.as_slice());
        prop_assert_eq!(used, framed.len());
    }

    /// Every proper prefix of a valid frame is "need more bytes" —
    /// never an error, never a partial payload.
    #[test]
    fn every_truncation_asks_for_more(payload in prop::collection::vec(any::<u8>(), 0..256), cut_seed in 0usize..4096) {
        let framed = encode_frame(&payload).unwrap();
        let cut = cut_seed % framed.len();
        prop_assert_eq!(split_frame(&framed[..cut]).unwrap(), None);
    }

    /// Flipping any single bit of a frame yields a typed error or a
    /// clean "need more" — never a panic, and never a silently wrong
    /// payload (a header-length flip changes where the payload ends;
    /// the CRC over the reframed payload catches it up to CRC
    /// collision, which a single-bit flip cannot produce).
    #[test]
    fn any_single_bit_flip_is_caught_or_starves(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        bit in 0usize..64,
    ) {
        let mut framed = encode_frame(&payload).unwrap();
        let bit = bit % (framed.len() * 8);
        framed[bit / 8] ^= 1 << (bit % 8);
        if let Ok(Some((got, _))) = split_frame(&framed) {
            prop_assert_ne!(got, payload.as_slice());
        }
    }

    /// Typed peer and client messages survive the full encode/decode
    /// path (JSON inside a frame).
    #[test]
    fn typed_messages_round_trip(from in any::<u32>(), time in any::<u64>(), len in any::<u64>()) {
        let msg = PeerMsg::CommitAck { from, time, len };
        let framed = encode_msg(&msg).unwrap();
        let (payload, _) = split_frame(&framed).unwrap().unwrap();
        prop_assert_eq!(decode_msg::<PeerMsg>(payload).unwrap(), msg);

        let reply = ClientReply::Acked { seq: time, duplicate: len.is_multiple_of(2) };
        let framed = encode_msg(&reply).unwrap();
        let (payload, _) = split_frame(&framed).unwrap().unwrap();
        prop_assert_eq!(decode_msg::<ClientReply>(payload).unwrap(), reply);
    }
}

/// A length prefix above the cap is rejected from the 8 header bytes
/// alone — before any payload allocation could happen. Exercised at
/// the cap boundary and at the extremes of the length field.
#[test]
fn hostile_length_prefixes_never_allocate() {
    for claimed in [MAX_FRAME as u32 + 1, u32::MAX / 2, u32::MAX] {
        let mut header = [0u8; HEADER];
        header[..4].copy_from_slice(&claimed.to_le_bytes());
        assert_eq!(
            decode_header(&header),
            Err(WireError::Oversized {
                len: u64::from(claimed)
            })
        );
        // The streaming splitter refuses identically, even with a
        // mountain of bytes behind the header.
        let mut bytes = header.to_vec();
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            split_frame(&bytes),
            Err(WireError::Oversized { .. })
        ));
    }
    // Exactly at the cap the header itself is fine (the splitter then
    // just waits for the payload).
    let mut header = [0u8; HEADER];
    header[..4].copy_from_slice(&(MAX_FRAME as u32).to_le_bytes());
    assert_eq!(decode_header(&header).unwrap().0, MAX_FRAME);
    assert_eq!(split_frame(&header).unwrap(), None);
}

/// The encoder enforces the same cap as the decoder, so a node can
/// never emit a frame a peer would refuse.
#[test]
fn encoder_refuses_oversized_payloads() {
    let too_big = vec![0u8; MAX_FRAME + 1];
    assert_eq!(
        encode_frame(&too_big),
        Err(WireError::Oversized {
            len: (MAX_FRAME + 1) as u64
        })
    );
}

/// Garbage that parses as a frame but not as the expected message type
/// is a typed decode error.
#[test]
fn valid_frame_with_wrong_payload_type_is_typed() {
    let framed = encode_msg(&ClientMsg::Status).unwrap();
    let (payload, _) = split_frame(&framed).unwrap().unwrap();
    assert!(matches!(
        decode_msg::<PeerMsg>(payload),
        Err(WireError::BadPayload { .. })
    ));
    let framed = encode_frame(b"not json at all").unwrap();
    let (payload, _) = split_frame(&framed).unwrap().unwrap();
    assert!(matches!(
        decode_msg::<ClientMsg>(payload),
        Err(WireError::BadPayload { .. })
    ));
}

// ---- session-window edge cases ------------------------------------------

/// A session table with a window of 8 and room for 4 clients, matching
/// the scenarios below.
fn table() -> SessionTable {
    SessionTable::new(8, 4)
}

/// Sequence regression below the window floor: the node cannot decide
/// whether the old sequence was already applied, so the verdict is
/// `Stale` with the exact floor — never `Fresh` (which would risk a
/// double apply).
#[test]
fn seq_regression_below_the_window_is_stale() {
    let mut t = table();
    t.record(1, 100, 1);
    // floor = 100 - 8 = 92: anything at or below it is undecidable.
    assert_eq!(t.check(1, 92), SeqVerdict::Stale { floor: 92 });
    assert_eq!(t.check(1, 5), SeqVerdict::Stale { floor: 92 });
    // Inside the window but never recorded: fresh.
    assert_eq!(t.check(1, 93), SeqVerdict::Fresh);
    // The recorded seq itself: duplicate, with its covering log length.
    assert_eq!(t.check(1, 100), SeqVerdict::Duplicate { len: 1 });
}

/// Wraparound: a client that overflows its sequence space back to a
/// small number lands below the floor and is refused, not silently
/// treated as new work.
#[test]
fn seq_wraparound_is_refused_not_reapplied() {
    let mut t = table();
    t.record(1, u64::MAX, 7);
    let floor = u64::MAX - 8;
    assert_eq!(t.check(1, u64::MAX), SeqVerdict::Duplicate { len: 7 });
    assert_eq!(t.check(1, 0), SeqVerdict::Stale { floor });
    assert_eq!(t.check(1, 1), SeqVerdict::Stale { floor });
}

/// Window eviction: once the window slides past a sequence, its dedup
/// record is gone and the verdict degrades from `Duplicate` (safe ack)
/// to `Stale` (safe refusal) — never to `Fresh`.
#[test]
fn window_eviction_degrades_duplicate_to_stale() {
    let mut t = table();
    t.record(1, 1, 1);
    assert_eq!(t.check(1, 1), SeqVerdict::Duplicate { len: 1 });
    // Slide the window far past seq 1.
    t.record(1, 50, 2);
    assert_eq!(t.check(1, 1), SeqVerdict::Stale { floor: 42 });
    // Within-window history is still deduplicated.
    assert_eq!(t.check(1, 50), SeqVerdict::Duplicate { len: 2 });
}

/// A restarted client that reuses its id but restarts its sequence
/// numbering from 1 is refused (`Stale`), not double-applied: the
/// table cannot distinguish a restart from a very late retry of the
/// original seq 1.
#[test]
fn restarted_client_reusing_its_id_is_refused() {
    let mut t = table();
    for seq in 1..=20 {
        t.record(9, seq, seq);
    }
    // The "restarted" client begins again at seq 1.
    assert_eq!(t.check(9, 1), SeqVerdict::Stale { floor: 12 });
    assert_eq!(t.check(9, 2), SeqVerdict::Stale { floor: 12 });
    // A genuinely new id is unencumbered.
    assert_eq!(t.check(10, 1), SeqVerdict::Fresh);
}

/// Client-table eviction is deterministic (least-recently-touched id)
/// and an evicted client's history is forgotten wholesale — its next
/// request is `Fresh`, which is safe because eviction only happens to
/// clients idle past the whole table's capacity.
#[test]
fn client_eviction_forgets_the_coldest_client() {
    let mut t = table();
    for client in 1..=4 {
        t.record(client, 1, client);
    }
    // A fifth client evicts the least recently touched (client 1).
    t.record(5, 1, 9);
    assert_eq!(t.check(1, 1), SeqVerdict::Fresh);
    assert_eq!(t.check(2, 1), SeqVerdict::Duplicate { len: 2 });
    assert_eq!(t.check(5, 1), SeqVerdict::Duplicate { len: 9 });
}

// ---- session and stream property sweeps ----------------------------------
//
// The unit tests above pin the exact verdicts at hand-picked points;
// these sweeps walk the same edges with randomized inputs — the
// wraparound neighborhood of u64::MAX, arbitrary record orders, and
// corruption landing anywhere in a multi-frame byte stream.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Anywhere in the wraparound neighborhood of `u64::MAX`, a client
    /// whose counter wrapped back low is refused with the exact floor —
    /// never `Fresh` (a re-apply), and the original high seq still
    /// answers `Duplicate`.
    #[test]
    fn wrapped_counters_are_refused_with_the_exact_floor(
        back in 0u64..8,
        probe in 0u64..65536,
    ) {
        let mut t = table();
        let high = u64::MAX - back;
        t.record(1, high, 3);
        let floor = high - 8;
        prop_assert_eq!(t.check(1, probe), SeqVerdict::Stale { floor });
        prop_assert_eq!(t.check(1, high), SeqVerdict::Duplicate { len: 3 });
    }

    /// The window partitions the sequence space exactly: at or below
    /// the floor is `Stale`, the recorded high mark is `Duplicate`, and
    /// unrecorded seqs strictly between are `Fresh` — for any high mark
    /// up to the top of the u64 range.
    #[test]
    fn the_window_partitions_the_seq_space_exactly(
        high in 8u64..u64::MAX,
        off in 0u64..8,
    ) {
        let mut t = table();
        t.record(2, high, 1);
        let floor = high - 8;
        let inside = high - off; // in (floor, high]
        if inside == high {
            prop_assert_eq!(t.check(2, inside), SeqVerdict::Duplicate { len: 1 });
        } else {
            prop_assert_eq!(t.check(2, inside), SeqVerdict::Fresh);
        }
        prop_assert_eq!(t.check(2, floor), SeqVerdict::Stale { floor });
    }

    /// The floor is a one-way ratchet under any record order: a seq
    /// that was ever recorded is never `Fresh` again — it answers
    /// `Duplicate` while retained and degrades to `Stale` once the
    /// floor passes it, but can never be silently re-applied.
    #[test]
    fn a_recorded_seq_is_never_fresh_again(
        seqs in prop::collection::vec(any::<u64>(), 1..32),
    ) {
        let mut t = table();
        for (i, seq) in seqs.iter().enumerate() {
            t.record(1, *seq, i as u64 + 1);
            for probe in &seqs[..=i] {
                prop_assert!(
                    !matches!(t.check(1, *probe), SeqVerdict::Fresh),
                    "recorded seq {} re-offered as fresh", probe
                );
            }
        }
    }

    /// Mid-stream corruption over a multi-frame stream: the reader (the
    /// same `split_frame` loop the node and the netmesis proxy run)
    /// delivers a clean prefix of the sent frames and then either
    /// starves or hits a typed error and disconnects — never a phantom
    /// frame, never the full stream, never a panic.
    #[test]
    fn mid_stream_corruption_yields_a_clean_prefix_then_disconnect(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..6),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p).unwrap());
        }
        let pos = pos_seed % stream.len();
        stream[pos] ^= flip;

        // The loop ends on starvation (a length flip claiming more
        // bytes than exist, `Ok(None)`) or a typed error: either way
        // the reader stops cleanly instead of resynchronizing onto
        // garbage.
        let mut delivered: Vec<Vec<u8>> = Vec::new();
        let mut rest = stream.as_slice();
        while let Ok(Some((payload, used))) = split_frame(rest) {
            delivered.push(payload.to_vec());
            rest = &rest[used..];
            if rest.is_empty() {
                break;
            }
        }

        // The corrupted frame never lands, so at least one frame is lost...
        prop_assert!(
            delivered.len() < payloads.len(),
            "corrupted stream delivered all {} frames", payloads.len()
        );
        // ...and everything that did land is the untouched prefix.
        for (got, sent) in delivered.iter().zip(payloads.iter()) {
            prop_assert_eq!(got, sent);
        }
    }
}
