//! The online collector: live streams in, one audited verdict out.
//!
//! Attaches to every node's export socket (plus any in-process local
//! streams — a harness driver's events, the availability monitor's),
//! merges the streams deterministically through
//! [`adore_obs::StreamMerger`]'s virtual-clock watermark, and drives
//! [`adore_obs::OnlineAuditor`] over the merged order — the same
//! T1–T7 engine the batch auditor runs, fed as events arrive instead
//! of from files after the fact.
//!
//! Reconnection is part of the model: a killed-and-restarted node
//! re-binds its export port and replays its new boot's history, and
//! the reader thread redials until told to stop, so one logical stream
//! index spans every boot of a node. Per-node journal stamps are
//! wall-clock microseconds — monotone across boots of a host-local
//! cluster — so the merge order stays well defined through restarts.
//!
//! Shutdown contract: drop every local [`ExportQueue`] first, then
//! call [`OnlineCollector::stop`]. The auditor thread finishes when
//! all stream senders are gone, drains the merger, and closes the
//! audit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use adore_obs::{AuditReport, OnlineAuditor, StreamMerger, TraceEvent};

use crate::export::{ExportQueue, ExportReader, EXPORT_QUEUE_DEPTH};

/// Redial pause after a failed connect or a dead link.
const REDIAL_PAUSE: Duration = Duration::from_millis(150);

/// Bound on the fan-in channel from readers/forwarders to the auditor
/// thread.
const FAN_IN_DEPTH: usize = 4_096;

/// One message on the collector's fan-in channel.
enum StreamMsg {
    Event(TraceEvent),
    Close,
}

/// What the collector certified once every stream closed.
#[derive(Debug)]
pub struct CollectorReport {
    /// The full close-out audit over the merged stream — the same
    /// report the batch auditor produces over the same sequence.
    pub report: AuditReport,
    /// Exporter-shed events, summed from `TraceDropped` markers. Zero
    /// means the online auditor saw every journaled event.
    pub dropped: u64,
    /// Merged position of the first event that left the live verdict
    /// non-clean, if any — the online detection point.
    pub flagged_at: Option<u64>,
}

/// A running online audit over a set of live streams.
#[derive(Debug)]
pub struct OnlineCollector {
    stop: Arc<AtomicBool>,
    readers: Vec<JoinHandle<()>>,
    auditor: JoinHandle<CollectorReport>,
}

impl OnlineCollector {
    /// Attaches readers to `addrs` (one merger stream each, redialing
    /// across restarts) and opens one additional in-process stream per
    /// entry of `local_nids`, returning the producer queues for them
    /// in order. Local queues must be dropped before [`stop`].
    ///
    /// [`stop`]: OnlineCollector::stop
    #[must_use]
    pub fn attach(addrs: &[String], local_nids: &[u32]) -> (OnlineCollector, Vec<ExportQueue>) {
        let total = addrs.len() + local_nids.len();
        let (tx, rx) = mpsc::sync_channel::<(usize, StreamMsg)>(FAN_IN_DEPTH);
        let stop = Arc::new(AtomicBool::new(false));

        let mut readers = Vec::new();
        for (idx, addr) in addrs.iter().enumerate() {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            let addr = addr.clone();
            readers.push(thread::spawn(move || read_stream(idx, &addr, &tx, &stop)));
        }

        let mut locals = Vec::new();
        for (i, &nid) in local_nids.iter().enumerate() {
            let idx = addrs.len() + i;
            let (queue, local_rx) = ExportQueue::new(nid, EXPORT_QUEUE_DEPTH);
            let tx = tx.clone();
            thread::spawn(move || {
                while let Ok(ev) = local_rx.recv() {
                    if tx.send((idx, StreamMsg::Event(ev))).is_err() {
                        return;
                    }
                }
                let _ = tx.send((idx, StreamMsg::Close));
            });
            locals.push(queue);
        }
        drop(tx); // the auditor finishes when every stream sender is gone

        let auditor = thread::spawn(move || audit_loop(total, &rx));
        (
            OnlineCollector {
                stop,
                readers,
                auditor,
            },
            locals,
        )
    }

    /// Stops the readers, waits for the auditor to drain, and returns
    /// the close-out report. Call only after every local queue has
    /// been dropped, or the auditor will wait on them.
    #[must_use]
    pub fn stop(self) -> CollectorReport {
        self.stop.store(true, Ordering::Relaxed);
        for r in self.readers {
            let _ = r.join();
        }
        self.auditor
            .join()
            .unwrap_or_else(|_| CollectorReport {
                report: adore_obs::audit_events(&[]),
                dropped: 0,
                flagged_at: None,
            })
    }
}

/// Reader thread: dial, stream, redial across node restarts, until
/// stopped.
fn read_stream(
    idx: usize,
    addr: &str,
    tx: &SyncSender<(usize, StreamMsg)>,
    stop: &AtomicBool,
) {
    'redial: while !stop.load(Ordering::Relaxed) {
        let Ok(mut reader) = ExportReader::connect(addr) else {
            thread::sleep(REDIAL_PAUSE);
            continue;
        };
        loop {
            if stop.load(Ordering::Relaxed) {
                break 'redial;
            }
            match reader.poll_event() {
                Ok(Some(ev)) => {
                    if tx.send((idx, StreamMsg::Event(ev))).is_err() {
                        return; // auditor gone
                    }
                }
                Ok(None) => {} // alive, just quiet (or paused)
                Err(_) => {
                    // Dead link: the node died (restart replays its
                    // next boot) or shut down for good.
                    thread::sleep(REDIAL_PAUSE);
                    continue 'redial;
                }
            }
        }
    }
    let _ = tx.send((idx, StreamMsg::Close));
}

/// The auditor thread: watermark merge, incremental audit, close-out.
fn audit_loop(streams: usize, rx: &mpsc::Receiver<(usize, StreamMsg)>) -> CollectorReport {
    let mut merger = StreamMerger::new(streams);
    let mut auditor = OnlineAuditor::new();
    while let Ok((idx, msg)) = rx.recv() {
        match msg {
            StreamMsg::Event(ev) => merger.push(idx, ev),
            StreamMsg::Close => merger.close(idx),
        }
        for ev in merger.poll() {
            let _ = auditor.ingest(&ev);
        }
    }
    for ev in merger.drain() {
        let _ = auditor.ingest(&ev);
    }
    let dropped = auditor.dropped();
    let flagged_at = auditor.flagged_at();
    CollectorReport {
        report: auditor.finish(),
        dropped,
        flagged_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adore_obs::EventKind;

    /// Two local streams staging a divergence: the collector merges,
    /// audits online, and reports the divergence with its detection
    /// point.
    #[test]
    fn local_streams_are_merged_and_audited() {
        let (collector, mut locals) = OnlineCollector::attach(&[], &[1, 2]);
        let delta = |at: u64, nid: u32, entry: &str| {
            TraceEvent::root(
                at,
                EventKind::StateDelta {
                    nid,
                    term: None,
                    truncate: None,
                    append: vec![entry.to_string()],
                    commit_len: Some(1),
                },
            )
        };
        let mut q2 = locals.pop().expect("two locals");
        let mut q1 = locals.pop().expect("two locals");
        q1.push(&delta(10, 1, "\"x\""));
        q2.push(&delta(20, 2, "\"y\""));
        drop(q1);
        drop(q2);
        let out = collector.stop();
        assert_eq!(out.report.events, 2);
        assert!(out.report.divergence.is_some(), "{:?}", out.report);
        assert_eq!(out.flagged_at, Some(1));
        assert_eq!(out.dropped, 0);
    }
}
