//! `adored`: the partial-failure-hardened networked ADORE runtime.
//!
//! The simulation crates certify the protocol under a virtual clock and
//! an in-memory network; this crate runs the *same* certified state
//! machine as a real multi-process cluster over length-prefixed TCP
//! frames, and keeps it auditable: every node writes the shared
//! `adore-obs` journal schema, so `adore-obs --audit` certifies
//! committed-prefix agreement for a real run exactly as it does for a
//! simulated one.
//!
//! Layering:
//!
//! - [`det`] — the deterministic core: frame codec, wire messages,
//!   exactly-once session table, and the per-node protocol engine.
//!   Pure input → output; covered by the determinism lints.
//! - [`node`] — the threaded runtime shell: listener, per-peer
//!   connectors with capped backoff, heartbeat ticks, the real WAL
//!   file, and the journal writer.
//! - [`client`] — the retrying cluster client with exactly-once
//!   semantics (a retry reuses its `(client, seq)`).
//! - [`proxy`] — the netmesis wire layer: one fault-injecting TCP
//!   proxy per directed peer link (partitions, loss, CRC-preserving
//!   corruption, delay, reorder, slow-loris, resets).
//! - [`monitor`] — the availability monitor whose acked writes become
//!   the audit's zero-loss / zero-duplicate obligations.
//! - [`export`] — the streaming trace export side-channel: each node's
//!   journal, live over TCP in the same `[len][crc32][payload]`
//!   framing, with bounded-queue loss accounted as `TraceDropped`
//!   markers.
//! - [`collect`] — the online collector: merges live export streams on
//!   a virtual-clock watermark and drives the same T1–T7 audit engine
//!   incrementally, raising divergence while the cluster still runs.
//! - [`scrape`] — the read-only `/metrics` endpoint serving the node's
//!   metrics registry as Prometheus text.

pub mod client;
pub mod collect;
pub mod det;
pub mod export;
pub mod monitor;
pub mod node;
pub mod proxy;
pub mod scrape;
