//! The fault-injecting wire layer: one TCP proxy per directed peer
//! link.
//!
//! `netmesis` never patches the node under test. Each node's address
//! book is rewritten so that its outbound link to peer `j` dials a
//! local proxy listener instead; the proxy dials the real `j` and pumps
//! frames across, enacting whatever fault the live [`LinkState`]
//! currently prescribes:
//!
//! - **Cut** (partition): frames are read and black-holed. The TCP
//!   connection stays up, so this is a *silent* partition — the
//!   paper-shaped failure where the network looks healthy and only the
//!   protocol's own timeouts can notice.
//! - **Loss**: each frame is dropped with probability `drop_pct`.
//! - **Corrupt**: a payload bit is flipped *after* framing, so the
//!   header carries the original CRC and the receiving codec must take
//!   its checksum-rejection path ([`crate::det::wire::WireError::Corrupt`]).
//! - **Delay / jitter**: seeded uniform jitter on top of a base delay,
//!   applied per frame.
//! - **Reorder**: a one-frame hold-back window; with probability
//!   `reorder_pct` a frame is stashed and emitted *after* its
//!   successor.
//! - **Slow-loris**: the frame header and first half of the payload are
//!   written, then the link stalls mid-frame before completing — the
//!   receiver sees a torn, eventually-completed frame, never a codec
//!   violation.
//! - **Reset**: the link generation is bumped; every pump thread on
//!   that link tears down its sockets, forcing the node's supervised
//!   connector through its redial path.
//!
//! All proxy decisions draw from a per-connection `StdRng` seeded from
//! the proxy seed and the link's endpoints, so a campaign's wire
//! behaviour is as reproducible as the schedule that drives it.
//!
//! Everything here is fault *enactment* on the hot path, so the module
//! is written panic-free (no unwraps, no indexing) and is held to that
//! by `adore-lint`'s L2 rule.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::det::wire;

/// How long a pump thread blocks in one read before re-checking the
/// link state, the shutdown flag, and the reset generation.
const POLL: Duration = Duration::from_millis(50);
/// Write deadline towards the real node (a wedged target must not hang
/// the proxy forever).
const PROXY_WRITE_DEADLINE: Duration = Duration::from_secs(5);
/// How long a slow-loris link stalls mid-frame.
const SLOW_STALL: Duration = Duration::from_millis(400);
/// Read chunk size.
const CHUNK: usize = 64 * 1024;

/// The live fault prescription for one directed link.
#[derive(Debug, Clone, Default)]
pub struct LinkState {
    /// Black-hole every frame (silent partition).
    pub cut: bool,
    /// Drop each frame with this percent probability.
    pub drop_pct: u32,
    /// Corrupt each frame (bit-flip after framing) with this percent
    /// probability.
    pub corrupt_pct: u32,
    /// Base forwarding delay per frame, milliseconds.
    pub delay_ms: u64,
    /// Uniform jitter on top of the base delay, milliseconds.
    pub jitter_ms: u64,
    /// Hold a frame back past its successor with this percent
    /// probability (bounded reorder, window 1).
    pub reorder_pct: u32,
    /// Stall mid-frame on every write (slow-loris half-frames).
    pub slow: bool,
    /// Bumped to tear down every connection on the link.
    pub generation: u64,
}

/// Monotonic per-link tallies, shared with the campaign driver.
#[derive(Debug, Default)]
pub struct LinkCounters {
    /// Frames forwarded unmodified (possibly delayed/reordered).
    pub forwarded: AtomicU64,
    /// Frames forwarded with a flipped payload bit under the original
    /// CRC.
    pub corrupted: AtomicU64,
    /// Frames black-holed by a cut or probabilistic loss.
    pub dropped: AtomicU64,
    /// Connection teardowns forced by a reset.
    pub resets: AtomicU64,
}

/// A point-in-time copy of one link's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkTally {
    /// Frames forwarded unmodified.
    pub forwarded: u64,
    /// Frames forwarded corrupted.
    pub corrupted: u64,
    /// Frames black-holed.
    pub dropped: u64,
    /// Forced connection teardowns.
    pub resets: u64,
}

struct Link {
    proxy_addr: String,
    state: Arc<Mutex<LinkState>>,
    counters: Arc<LinkCounters>,
}

fn lock_state(state: &Arc<Mutex<LinkState>>) -> std::sync::MutexGuard<'_, LinkState> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The mesh of per-directed-link proxies for one cluster.
pub struct ProxyNet {
    real_addrs: BTreeMap<u32, String>,
    links: BTreeMap<(u32, u32), Link>,
    shutdown: Arc<AtomicBool>,
}

impl ProxyNet {
    /// Builds one proxy listener per ordered pair of distinct nodes in
    /// `real_addrs` and starts their accept/pump threads.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn new(real_addrs: &BTreeMap<u32, String>, seed: u64) -> io::Result<ProxyNet> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut links = BTreeMap::new();
        for &from in real_addrs.keys() {
            for (&to, target) in real_addrs {
                if from == to {
                    continue;
                }
                let listener = TcpListener::bind("127.0.0.1:0")?;
                listener.set_nonblocking(true)?;
                let proxy_addr = listener.local_addr()?.to_string();
                let state: Arc<Mutex<LinkState>> = Arc::new(Mutex::new(LinkState::default()));
                let counters = Arc::new(LinkCounters::default());
                let link_seed =
                    seed ^ (u64::from(from) << 40) ^ (u64::from(to) << 20) ^ 0x70_72_6f_78;
                {
                    let state = Arc::clone(&state);
                    let counters = Arc::clone(&counters);
                    let shutdown = Arc::clone(&shutdown);
                    let target = target.clone();
                    thread::spawn(move || {
                        accept_loop(&listener, &target, &state, &counters, &shutdown, link_seed);
                    });
                }
                links.insert(
                    (from, to),
                    Link {
                        proxy_addr,
                        state,
                        counters,
                    },
                );
            }
        }
        Ok(ProxyNet {
            real_addrs: real_addrs.clone(),
            links,
            shutdown,
        })
    }

    /// The address book node `nid` should boot with: its own entry is
    /// its real listen address; every peer entry points at the proxy
    /// for the directed link `nid -> peer`.
    #[must_use]
    pub fn peers_spec_for(&self, nid: u32) -> String {
        let mut parts = Vec::new();
        for (&other, real) in &self.real_addrs {
            let addr = if other == nid {
                real.clone()
            } else {
                self.links
                    .get(&(nid, other))
                    .map(|l| l.proxy_addr.clone())
                    .unwrap_or_else(|| real.clone())
            };
            parts.push(format!("{other}={addr}"));
        }
        parts.join(",")
    }

    /// The real (un-proxied) address book, for clients and status
    /// probes.
    #[must_use]
    pub fn real_addrs(&self) -> BTreeMap<u32, String> {
        self.real_addrs.clone()
    }

    fn with_state(&self, from: u32, to: u32, f: impl FnOnce(&mut LinkState)) {
        if let Some(link) = self.links.get(&(from, to)) {
            f(&mut lock_state(&link.state));
        }
    }

    /// Black-holes the directed link.
    pub fn cut_one_way(&self, from: u32, to: u32) {
        self.with_state(from, to, |s| s.cut = true);
    }

    /// Black-holes both directions between two nodes.
    pub fn cut_both_ways(&self, a: u32, b: u32) {
        self.cut_one_way(a, b);
        self.cut_one_way(b, a);
    }

    /// Heals the directed link (leaves loss/corruption settings alone).
    pub fn heal_one_way(&self, from: u32, to: u32) {
        self.with_state(from, to, |s| s.cut = false);
    }

    /// Cuts every cross-group link of the partition described by
    /// `groups`; intra-group links heal.
    pub fn partition(&self, groups: &[Vec<u32>]) {
        let group_of = |nid: u32| groups.iter().position(|g| g.contains(&nid));
        for &(from, to) in self.links.keys().cloned().collect::<Vec<_>>().iter() {
            let severed = match (group_of(from), (group_of(to))) {
                (Some(a), Some(b)) => a != b,
                _ => false,
            };
            self.with_state(from, to, |s| s.cut = severed);
        }
    }

    /// Heals every link and clears loss, corruption, delay, reorder,
    /// and slow settings (generations are preserved).
    pub fn heal_all(&self) {
        for link in self.links.values() {
            let mut s = lock_state(&link.state);
            let generation = s.generation;
            *s = LinkState {
                generation,
                ..LinkState::default()
            };
        }
    }

    /// Sets probabilistic loss on the directed link.
    pub fn set_loss(&self, from: u32, to: u32, pct: u32) {
        self.with_state(from, to, |s| s.drop_pct = pct.min(100));
    }

    /// Sets probabilistic CRC-preserving corruption on the directed
    /// link.
    pub fn set_corrupt(&self, from: u32, to: u32, pct: u32) {
        self.with_state(from, to, |s| s.corrupt_pct = pct.min(100));
    }

    /// Sets per-frame delay and jitter on the directed link.
    pub fn set_delay(&self, from: u32, to: u32, delay_ms: u64, jitter_ms: u64) {
        self.with_state(from, to, |s| {
            s.delay_ms = delay_ms;
            s.jitter_ms = jitter_ms;
        });
    }

    /// Sets bounded reordering on the directed link.
    pub fn set_reorder(&self, from: u32, to: u32, pct: u32) {
        self.with_state(from, to, |s| s.reorder_pct = pct.min(100));
    }

    /// Turns slow-loris half-frame stalls on or off.
    pub fn set_slow(&self, from: u32, to: u32, on: bool) {
        self.with_state(from, to, |s| s.slow = on);
    }

    /// Tears down every connection on the directed link (the node's
    /// connector redials).
    pub fn reset(&self, from: u32, to: u32) {
        self.with_state(from, to, |s| s.generation = s.generation.wrapping_add(1));
    }

    /// A snapshot of one link's counters.
    #[must_use]
    pub fn tally(&self, from: u32, to: u32) -> LinkTally {
        self.links
            .get(&(from, to))
            .map(|l| LinkTally {
                forwarded: l.counters.forwarded.load(Ordering::Relaxed),
                corrupted: l.counters.corrupted.load(Ordering::Relaxed),
                dropped: l.counters.dropped.load(Ordering::Relaxed),
                resets: l.counters.resets.load(Ordering::Relaxed),
            })
            .unwrap_or_default()
    }

    /// The sum of every link's counters.
    #[must_use]
    pub fn totals(&self) -> LinkTally {
        let mut t = LinkTally::default();
        for &(from, to) in self.links.keys() {
            let l = self.tally(from, to);
            t.forwarded += l.forwarded;
            t.corrupted += l.corrupted;
            t.dropped += l.dropped;
            t.resets += l.resets;
        }
        t
    }

    /// Stops every accept and pump thread (connections close; nodes
    /// see dead links).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Drop for ProxyNet {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    target: &str,
    state: &Arc<Mutex<LinkState>>,
    counters: &Arc<LinkCounters>,
    shutdown: &Arc<AtomicBool>,
    seed: u64,
) {
    let mut conn_no: u64 = 0;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((inbound, _)) => {
                conn_no = conn_no.wrapping_add(1);
                let state = Arc::clone(state);
                let counters = Arc::clone(counters);
                let shutdown = Arc::clone(shutdown);
                let target = target.to_string();
                let conn_seed = seed ^ conn_no;
                // adore-lint: allow(L8, reason = "thread::spawn returns a JoinHandle rather than a Result; the workspace call-graph cannot tell it from ClusterProc::spawn and the pump thread is deliberately detached")
                thread::spawn(move || {
                    pump(&inbound, &target, &state, &counters, &shutdown, conn_seed);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL);
            }
            Err(_) => return,
        }
    }
}

/// Forwards frames from `inbound` to a fresh connection to `target`,
/// enacting the link's current fault prescription per frame.
fn pump(
    inbound: &TcpStream,
    target: &str,
    state: &Arc<Mutex<LinkState>>,
    counters: &Arc<LinkCounters>,
    shutdown: &Arc<AtomicBool>,
    seed: u64,
) {
    let born_gen = lock_state(state).generation;
    let mut inbound = match inbound.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if inbound.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut outbound = match TcpStream::connect(target) {
        Ok(s) => s,
        Err(_) => return,
    };
    let _ = outbound.set_nodelay(true);
    let _ = outbound.set_write_timeout(Some(PROXY_WRITE_DEADLINE));

    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; CHUNK];
    // The reorder hold-back window (one frame, already fault-encoded).
    let mut held: Option<Vec<u8>> = None;

    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        {
            let s = lock_state(state);
            if s.generation != born_gen {
                // A reset: tear the sockets down so the node's
                // connector exercises its redial path.
                counters.resets.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let n = match inbound.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        let Some(read) = chunk.get(..n) else { return };
        buf.extend_from_slice(read);

        // Peel complete frames off the buffer and forward each under
        // the current prescription.
        loop {
            let (payload, consumed) = match wire::split_frame(&buf) {
                Ok(Some((payload, consumed))) => (payload.to_vec(), consumed),
                Ok(None) => break,
                // An honest node never emits an invalid frame; if the
                // buffer desyncs, drop the connection rather than
                // forward garbage we did not choose to inject.
                Err(_) => return,
            };
            buf.drain(..consumed);

            let s = lock_state(state).clone();
            if s.cut || (s.drop_pct > 0 && rng.gen_range(0..100) < s.drop_pct) {
                counters.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let mut framed = match wire::encode_frame(&payload) {
                Ok(f) => f,
                Err(_) => return,
            };
            let corrupt = s.corrupt_pct > 0 && rng.gen_range(0..100) < s.corrupt_pct;
            if corrupt {
                // Flip one payload bit *under the original CRC*: the
                // receiver must detect this via its checksum, not us.
                let bit = rng.gen_range(0..payload.len().max(1) * 8);
                if let Some(byte) = framed.get_mut(wire::HEADER + bit / 8) {
                    *byte ^= 1 << (bit % 8);
                }
                counters.corrupted.fetch_add(1, Ordering::Relaxed);
            } else {
                counters.forwarded.fetch_add(1, Ordering::Relaxed);
            }
            if s.delay_ms > 0 || s.jitter_ms > 0 {
                let jitter = if s.jitter_ms > 0 {
                    rng.gen_range(0..=s.jitter_ms)
                } else {
                    0
                };
                thread::sleep(Duration::from_millis(s.delay_ms + jitter));
            }

            let reorder = s.reorder_pct > 0 && rng.gen_range(0..100) < s.reorder_pct;
            let to_send: Vec<Vec<u8>> = if reorder && held.is_none() {
                held = Some(framed);
                Vec::new()
            } else if let Some(earlier) = held.take() {
                // Emit the successor first, then the held frame: a
                // bounded (window 1) reordering.
                vec![framed, earlier]
            } else {
                vec![framed]
            };
            for frame in to_send {
                if write_faulted(&mut outbound, &frame, s.slow).is_err() {
                    return;
                }
            }
        }
    }
}

/// Writes one already-framed message, optionally stalling mid-frame
/// (slow-loris): header and half the payload, a pause, then the rest.
fn write_faulted(out: &mut TcpStream, frame: &[u8], slow: bool) -> io::Result<()> {
    if !slow || frame.len() <= wire::HEADER + 1 {
        return out.write_all(frame);
    }
    let mid = wire::HEADER + (frame.len() - wire::HEADER) / 2;
    let head = frame.get(..mid).unwrap_or(frame);
    let tail = frame.get(mid..).unwrap_or_default();
    out.write_all(head)?;
    out.flush()?;
    thread::sleep(SLOW_STALL);
    out.write_all(tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A sink node: accepts connections and reports each frame-read
    /// outcome (payload or typed error string) on a channel.
    fn sink_node() -> (String, mpsc::Receiver<Result<Vec<u8>, String>>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind sink");
        let addr = listener.local_addr().expect("addr").to_string();
        let (tx, rx) = mpsc::channel();
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { return };
                let tx = tx.clone();
                thread::spawn(move || loop {
                    match crate::node::read_frame(&mut stream) {
                        Ok(Some(payload)) => {
                            if tx.send(Ok(payload)).is_err() {
                                return;
                            }
                        }
                        Ok(None) => return,
                        Err(e) => {
                            let _ = tx.send(Err(e.to_string()));
                            return;
                        }
                    }
                });
            }
        });
        (addr, rx)
    }

    fn two_node_net() -> (ProxyNet, mpsc::Receiver<Result<Vec<u8>, String>>) {
        let (sink_addr, rx) = sink_node();
        let addrs =
            BTreeMap::from([(1, "127.0.0.1:1".to_string()), (2, sink_addr)]);
        (ProxyNet::new(&addrs, 42).expect("proxy net"), rx)
    }

    fn dial_link(net: &ProxyNet) -> TcpStream {
        let spec = net.peers_spec_for(1);
        let proxy_addr = spec
            .split(',')
            .find_map(|part| part.strip_prefix("2="))
            .expect("link 1->2 in the spec")
            .to_string();
        TcpStream::connect(proxy_addr).expect("dial proxy")
    }

    fn send(stream: &mut TcpStream, payload: &[u8]) {
        let frame = wire::encode_frame(payload).expect("encode");
        stream.write_all(&frame).expect("send");
    }

    #[test]
    fn a_healthy_link_forwards_frames_intact() {
        let (net, rx) = two_node_net();
        let mut link = dial_link(&net);
        send(&mut link, b"hello");
        let got = rx.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(got, Ok(b"hello".to_vec()));
        assert_eq!(net.tally(1, 2).forwarded, 1);
    }

    #[test]
    fn corruption_keeps_the_original_crc_so_the_receiver_rejects() {
        let (net, rx) = two_node_net();
        net.set_corrupt(1, 2, 100);
        let mut link = dial_link(&net);
        send(&mut link, b"payload-to-corrupt");
        let got = rx.recv_timeout(Duration::from_secs(5)).expect("outcome");
        let err = got.expect_err("the receiver must reject the corrupted frame");
        assert!(err.contains("checksum"), "typed corrupt rejection: {err}");
        assert_eq!(net.tally(1, 2).corrupted, 1);
    }

    #[test]
    fn a_cut_link_black_holes_frames_without_closing() {
        let (net, rx) = two_node_net();
        net.cut_one_way(1, 2);
        let mut link = dial_link(&net);
        send(&mut link, b"into the void");
        assert!(
            rx.recv_timeout(Duration::from_millis(600)).is_err(),
            "nothing crosses a cut link"
        );
        net.heal_one_way(1, 2);
        send(&mut link, b"after the heal");
        let got = rx.recv_timeout(Duration::from_secs(5)).expect("healed");
        assert_eq!(got, Ok(b"after the heal".to_vec()));
        assert_eq!(net.tally(1, 2).dropped, 1);
    }

    #[test]
    fn a_reset_tears_the_connection_down() {
        let (net, rx) = two_node_net();
        let mut link = dial_link(&net);
        send(&mut link, b"pre-reset");
        // Wait for delivery first: it proves the pump is running with
        // the pre-reset generation (a reset that lands before the
        // polled accept would be a no-op for this connection).
        let got = rx.recv_timeout(Duration::from_secs(5)).expect("pre-reset delivered");
        assert_eq!(got, Ok(b"pre-reset".to_vec()));
        net.reset(1, 2);
        // The pump notices the generation bump within a poll interval
        // and closes both sockets; writes then fail (or succeed into a
        // dead socket once) and the sink sees EOF.
        let mut saw_error = false;
        for _ in 0..50 {
            thread::sleep(Duration::from_millis(20));
            let frame = wire::encode_frame(b"x").expect("encode");
            if link.write_all(&frame).is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "the torn link must surface to the sender");
        assert!(net.tally(1, 2).resets >= 1);
    }

    #[test]
    fn slow_loris_stalls_but_the_frame_still_lands_whole() {
        let (net, rx) = two_node_net();
        net.set_slow(1, 2, true);
        let mut link = dial_link(&net);
        send(&mut link, b"half now, half later");
        let got = rx.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(got, Ok(b"half now, half later".to_vec()));
    }

    #[test]
    fn partitions_cut_cross_group_links_only() {
        let addrs = BTreeMap::from([
            (1, "127.0.0.1:1".to_string()),
            (2, "127.0.0.1:2".to_string()),
            (3, "127.0.0.1:3".to_string()),
        ]);
        let net = ProxyNet::new(&addrs, 7).expect("net");
        net.partition(&[vec![1, 2], vec![3]]);
        let cut = |from, to| {
            net.links
                .get(&(from, to))
                .map(|l| lock_state(&l.state).cut)
                .unwrap_or(false)
        };
        assert!(!cut(1, 2) && !cut(2, 1));
        assert!(cut(1, 3) && cut(3, 1) && cut(2, 3) && cut(3, 2));
        net.heal_all();
        assert!(!cut(1, 3) && !cut(3, 2));
    }
}
