//! `adored` — the networked ADORE cluster binary.
//!
//! Three subcommands:
//!
//! - `adored node` runs one replica (the fault-hardened runtime in
//!   [`adored::node`]).
//! - `adored smoke` is the real-process fault harness: it spawns a
//!   local cluster as child processes, drives writes, `kill -9`s the
//!   leader, restarts it into the same data directory, optionally walks
//!   a live 5→3→5 certified reconfiguration, then checks zero
//!   acked-write loss and zero duplicate applies, merges every node's
//!   journal, and audits the merged trace with `adore-obs`.
//! - `adored bench` measures a closed-loop write baseline against a
//!   3-node cluster and writes `results/BENCH_net.json`.
//! - `adored hunt` is the netmesis campaign driver: it compiles
//!   serializable nemesis `FaultSchedule`s into live wire and process
//!   faults (via the per-link proxies in [`adored::proxy`]), runs them
//!   against a real cluster under an availability monitor, audits the
//!   merged journals, and on failure persists a replayable,
//!   sim-minimized counterexample artifact.

mod hunt;

use std::collections::BTreeMap;
use std::fs;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use adore_obs::{
    audit_events, merge_journals, to_jsonl, EventKind, Histogram, TraceEvent, Tracer,
};
use adored::client::{ClientError, ClientParams, NetClient};
use adored::collect::OnlineCollector;
use adored::det::engine::EngineParams;
use adored::det::msg::{ClientReply, NetEntry, SessionCmd};
use adored::node::{run, NodeConfig};

/// How long the harness waits for a leader before declaring the
/// cluster dead.
const LEADER_WAIT: Duration = Duration::from_secs(30);
/// Watchdog handed to every child node: no orphan outlives a run.
const CHILD_MAX_RUNTIME_MS: u64 = 180_000;
/// Engine tick for harness-spawned nodes.
const CHILD_TICK_MS: u64 = 20;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("node") => cmd_node(&args[1..]),
        Some("smoke") => cmd_smoke(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("hunt") => hunt::cmd_hunt(&args[1..]),
        _ => {
            eprintln!(
                "usage: adored node --nid N --peers 1=host:port,2=... --data DIR \
                 [--seed S] [--tick-ms T] [--max-runtime-ms M] [--ablate-guard r1|r2|r3] \
                 [--peer-deadline-ms M] [--export host:port] [--metrics host:port]\n\
                 \x20      adored smoke [--nodes N] [--dir DIR] [--seed S] [--reconfig]\n\
                 \x20      adored bench [--writes N] [--dir DIR] [--out FILE] [--seed S]\n\
                 \x20      adored bench --open-loop [RATES] [--secs-per-rate S] [--dir DIR] \
                 [--out FILE] [--seed S]\n\
                 \x20      adored hunt [--gate | --seeds N] [--nodes N] [--dir DIR] \
                 [--seed S] [--ablate r1] [--out FILE]"
            );
            2
        }
    };
    std::process::exit(code);
}

// ---- argument plumbing --------------------------------------------------

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_u64(args: &[String], name: &str, default: u64) -> u64 {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parses `1=host:port,2=host:port,...`.
fn parse_peers(spec: &str) -> Option<Vec<(u32, String)>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let (nid, addr) = part.split_once('=')?;
        out.push((nid.trim().parse().ok()?, addr.trim().to_string()));
    }
    Some(out)
}

// ---- `adored node` ------------------------------------------------------

fn cmd_node(args: &[String]) -> i32 {
    let Some(nid) = arg_value(args, "--nid").and_then(|v| v.parse().ok()) else {
        eprintln!("adored node: --nid is required");
        return 2;
    };
    let Some(peers) = arg_value(args, "--peers").as_deref().and_then(parse_peers) else {
        eprintln!("adored node: --peers 1=host:port,2=... is required");
        return 2;
    };
    let Some(data_dir) = arg_value(args, "--data").map(PathBuf::from) else {
        eprintln!("adored node: --data DIR is required");
        return 2;
    };
    // `--ablate-guard r1,r3` drops the named conditions from the sound
    // guard — fault-harness use only, to manufacture counterexamples.
    let mut guard = adore_core::ReconfigGuard::all();
    if let Some(spec) = arg_value(args, "--ablate-guard") {
        for cond in spec.split(',') {
            match cond.trim() {
                "r1" => guard.r1 = false,
                "r2" => guard.r2 = false,
                "r3" => guard.r3 = false,
                other => {
                    eprintln!("adored node: unknown guard condition {other:?}");
                    return 2;
                }
            }
        }
    }
    let cfg = NodeConfig {
        nid,
        peers,
        data_dir,
        seed: arg_u64(args, "--seed", 1),
        tick_ms: arg_u64(args, "--tick-ms", CHILD_TICK_MS),
        max_runtime_ms: arg_value(args, "--max-runtime-ms").and_then(|v| v.parse().ok()),
        params: EngineParams::default(),
        guard,
        peer_read_deadline_ms: arg_u64(
            args,
            "--peer-deadline-ms",
            adored::node::DEFAULT_PEER_READ_DEADLINE_MS,
        ),
        export_addr: arg_value(args, "--export"),
        metrics_addr: arg_value(args, "--metrics"),
    };
    match run(cfg) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("adored node {nid}: {e}");
            1
        }
    }
}

// ---- shared harness machinery -------------------------------------------

/// Microseconds since the UNIX epoch, for the driver's own journal.
fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// A duration as saturating microseconds.
fn dur_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Reserves `n` distinct ephemeral localhost ports.
fn pick_ports(n: usize) -> std::io::Result<Vec<u16>> {
    let mut holds = Vec::new();
    let mut ports = Vec::new();
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0")?;
        ports.push(l.local_addr()?.port());
        holds.push(l);
    }
    Ok(ports)
}

/// A cluster of child-process nodes, killed on drop.
struct Harness {
    exe: PathBuf,
    dir: PathBuf,
    /// The `--peers` spec each node boots with. In plain runs every
    /// node shares one spec; in proxied (netmesis) runs each node's
    /// peer entries point at its own outbound-link proxies.
    node_peers: BTreeMap<u32, String>,
    /// Real (un-proxied) addresses, for clients and status probes.
    addrs: BTreeMap<u32, String>,
    /// Per-node streaming-export listen addresses, allocated once and
    /// reused across respawns so a collector's redial to one address
    /// spans every boot of that node.
    export_addrs: BTreeMap<u32, String>,
    /// Per-node `/metrics` scrape addresses, likewise stable.
    metrics_addrs: BTreeMap<u32, String>,
    children: BTreeMap<u32, Child>,
    seed: u64,
    /// Extra `adored node` flags appended to every spawn (e.g.
    /// `--ablate-guard r1`, `--peer-deadline-ms 120000`).
    extra_args: Vec<String>,
}

impl Harness {
    fn start(dir: &Path, nodes: u32, seed: u64) -> std::io::Result<Harness> {
        let ports = pick_ports(nodes as usize)?;
        let addrs: BTreeMap<u32, String> = (1..=nodes)
            .map(|n| (n, format!("127.0.0.1:{}", ports[(n - 1) as usize])))
            .collect();
        let peers_spec = addrs
            .iter()
            .map(|(n, a)| format!("{n}={a}"))
            .collect::<Vec<_>>()
            .join(",");
        let node_peers = addrs.keys().map(|n| (*n, peers_spec.clone())).collect();
        Harness::start_with(dir, addrs, node_peers, seed, Vec::new())
    }

    /// Starts a cluster with per-node `--peers` specs (the proxied
    /// netmesis topology) and extra per-node flags.
    fn start_with(
        dir: &Path,
        addrs: BTreeMap<u32, String>,
        node_peers: BTreeMap<u32, String>,
        seed: u64,
        extra_args: Vec<String>,
    ) -> std::io::Result<Harness> {
        fs::create_dir_all(dir)?;
        let exe = std::env::current_exe()?;
        let obs_ports = pick_ports(2 * addrs.len())?;
        let export_addrs = addrs
            .keys()
            .enumerate()
            .map(|(i, &n)| (n, format!("127.0.0.1:{}", obs_ports[2 * i])))
            .collect();
        let metrics_addrs = addrs
            .keys()
            .enumerate()
            .map(|(i, &n)| (n, format!("127.0.0.1:{}", obs_ports[2 * i + 1])))
            .collect();
        let mut h = Harness {
            exe,
            dir: dir.to_path_buf(),
            node_peers,
            addrs,
            export_addrs,
            metrics_addrs,
            children: BTreeMap::new(),
            seed,
            extra_args,
        };
        let nids: Vec<u32> = h.addrs.keys().copied().collect();
        for n in nids {
            h.spawn(n)?;
        }
        Ok(h)
    }

    /// Spawns (or respawns) node `nid` into its standing data dir.
    fn spawn(&mut self, nid: u32) -> std::io::Result<()> {
        let data = self.dir.join(format!("n{nid}"));
        let peers_spec = self
            .node_peers
            .get(&nid)
            .cloned()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "unknown nid"))?;
        let mut cmd = Command::new(&self.exe);
        cmd.args([
            "node",
            "--nid",
            &nid.to_string(),
            "--peers",
            &peers_spec,
            "--data",
            data.to_str().unwrap_or("."),
            // Every node gets the same base seed: the engine mixes
            // the node id in by XOR, which keeps per-node jitter
            // streams distinct for ANY base. (Passing seed+nid here
            // instead can collide — (s+a)^a == (s+b)^b for many
            // small values — leaving two survivors with identical
            // election jitter and a perpetual split vote.)
            "--seed",
            &self.seed.to_string(),
            "--tick-ms",
            &CHILD_TICK_MS.to_string(),
            "--max-runtime-ms",
            &CHILD_MAX_RUNTIME_MS.to_string(),
        ]);
        if let Some(addr) = self.export_addrs.get(&nid) {
            cmd.args(["--export", addr]);
        }
        if let Some(addr) = self.metrics_addrs.get(&nid) {
            cmd.args(["--metrics", addr]);
        }
        let child = cmd
            .args(&self.extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()?;
        self.children.insert(nid, child);
        Ok(())
    }

    /// `kill -9` for node `nid` (SIGKILL: no atexit, no flush, no FIN).
    fn kill(&mut self, nid: u32) {
        if let Some(mut child) = self.children.remove(&nid) {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// SIGSTOPs node `nid`: a gray pause — the process is frozen but
    /// its sockets stay open, so peers see silence, not FINs.
    fn pause(&self, nid: u32) -> bool {
        self.signal(nid, "-STOP")
    }

    /// SIGCONTs a paused node.
    fn resume(&self, nid: u32) -> bool {
        self.signal(nid, "-CONT")
    }

    fn signal(&self, nid: u32, sig: &str) -> bool {
        let Some(child) = self.children.get(&nid) else {
            return false;
        };
        Command::new("kill")
            .args([sig, &child.id().to_string()])
            .status()
            .map(|s| s.success())
            .unwrap_or(false)
    }

    fn client(&self, id: u64) -> NetClient {
        NetClient::new(self.addrs.clone(), id, ClientParams::default())
    }

    /// Every configured node id (running or not).
    fn node_ids(&self) -> Vec<u32> {
        self.addrs.keys().copied().collect()
    }

    /// Streaming-export addresses in nid order, for an online
    /// collector: one merger stream per address spans every boot of
    /// that node (the port is reused across respawns).
    fn export_addrs(&self) -> Vec<String> {
        self.export_addrs.values().cloned().collect()
    }

    /// The `/metrics` scrape address of node `nid`.
    fn metrics_addr(&self, nid: u32) -> Option<String> {
        self.metrics_addrs.get(&nid).cloned()
    }

    /// Polls until some node reports itself leader; returns its nid.
    fn wait_for_leader(&self, probe: &mut NetClient) -> Result<u32, String> {
        let deadline = Instant::now() + LEADER_WAIT;
        while Instant::now() < deadline {
            for &nid in self.addrs.keys() {
                if !self.children.contains_key(&nid) {
                    continue;
                }
                if let Ok(ClientReply::Status { role, .. }) = probe.status(nid) {
                    if role == "leader" {
                        return Ok(nid);
                    }
                }
            }
            thread::sleep(Duration::from_millis(100));
        }
        Err("no leader elected within the wait budget".to_string())
    }

    /// The members the current leader believes in, plus its nid.
    fn leader_view(&self, probe: &mut NetClient) -> Result<(u32, Vec<u32>), String> {
        let leader = self.wait_for_leader(probe)?;
        match probe.status(leader) {
            Ok(ClientReply::Status { members, .. }) => Ok((leader, members)),
            other => Err(format!("leader {leader} status failed: {other:?}")),
        }
    }

    /// Reads every journal file the cluster wrote, one string per file.
    fn journal_texts(&self) -> std::io::Result<Vec<String>> {
        let mut texts = Vec::new();
        for &nid in self.addrs.keys() {
            let data = self.dir.join(format!("n{nid}"));
            let mut files: Vec<PathBuf> = fs::read_dir(&data)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("journal-") && n.ends_with(".jsonl"))
                })
                .collect();
            files.sort();
            for f in files {
                texts.push(fs::read_to_string(f)?);
            }
        }
        Ok(texts)
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        let nids: Vec<u32> = self.children.keys().copied().collect();
        for nid in nids {
            self.kill(nid);
        }
    }
}

/// Retries a reconfiguration through transient guard refusals (R2 holds
/// until the previous configuration entry commits; R3 until the new
/// leader's barrier commits). Each retry is a fresh session request —
/// sound, because a guard refusal appends nothing.
fn reconfigure_eventually(client: &mut NetClient, members: &[u32]) -> Result<(), String> {
    let deadline = Instant::now() + LEADER_WAIT;
    loop {
        match client.reconfigure(members) {
            Ok(_) => return Ok(()),
            Err(ClientError::Rejected { reason }) if Instant::now() < deadline => {
                let _ = reason;
                thread::sleep(Duration::from_millis(200));
            }
            Err(e) => return Err(format!("reconfigure to {members:?} failed: {e}")),
        }
    }
}

// ---- journal forensics ---------------------------------------------------

/// Per-node `(log, commit_len)` reconstructed from journal events, the
/// same way the auditor does it.
fn rebuild_logs(events: &[TraceEvent]) -> BTreeMap<u32, (Vec<String>, usize)> {
    let mut nodes: BTreeMap<u32, (Vec<String>, usize)> = BTreeMap::new();
    for ev in events {
        match &ev.kind {
            EventKind::StateDelta {
                nid,
                truncate,
                append,
                commit_len,
                ..
            } => {
                let (log, commit) = nodes.entry(*nid).or_default();
                if let Some(t) = truncate {
                    log.truncate(*t as usize);
                }
                log.extend(append.iter().cloned());
                if let Some(c) = commit_len {
                    *commit = *c as usize;
                }
            }
            EventKind::WalRecover {
                nid,
                log,
                commit_len,
                ..
            } => {
                nodes.insert(*nid, (log.clone(), *commit_len as usize));
            }
            _ => {}
        }
    }
    nodes
}

/// Scans every node's committed prefix for a `(client, seq)` session
/// pair applied more than once. Returns offending descriptions.
fn duplicate_applies(nodes: &BTreeMap<u32, (Vec<String>, usize)>) -> Vec<String> {
    let mut bad = Vec::new();
    for (nid, (log, commit)) in nodes {
        let mut seen: BTreeMap<(u64, u64), u32> = BTreeMap::new();
        for raw in log.iter().take(*commit) {
            let Ok(entry) = serde_json::from_str::<NetEntry>(raw) else {
                bad.push(format!("node {nid}: unparseable committed entry"));
                continue;
            };
            if let adore_raft::Command::Method(SessionCmd {
                client,
                seq,
                op: Some(_),
            }) = entry.cmd
            {
                *seen.entry((client, seq)).or_insert(0) += 1;
            }
        }
        for ((client, seq), n) in seen {
            if n > 1 {
                bad.push(format!(
                    "node {nid}: session ({client}, {seq}) applied {n} times"
                ));
            }
        }
    }
    bad
}

// ---- `adored smoke` ------------------------------------------------------

#[allow(clippy::too_many_lines)]
fn cmd_smoke(args: &[String]) -> i32 {
    let nodes = arg_u64(args, "--nodes", 3) as u32;
    let seed = arg_u64(args, "--seed", 42);
    let reconfig = arg_flag(args, "--reconfig");
    let dir = arg_value(args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("target/smoke-{}", std::process::id())));
    if nodes < 3 {
        eprintln!("smoke: need at least 3 nodes");
        return 2;
    }
    if reconfig && nodes < 5 {
        eprintln!("smoke: --reconfig needs 5 nodes");
        return 2;
    }
    match smoke(&dir, nodes, seed, reconfig) {
        Ok(()) => {
            println!("smoke: PASS");
            0
        }
        Err(e) => {
            eprintln!("smoke: FAIL: {e}");
            1
        }
    }
}

fn smoke(dir: &Path, nodes: u32, seed: u64, reconfig: bool) -> Result<(), String> {
    let mut driver = Tracer::enabled();
    driver.record(
        now_us(),
        EventKind::RunStart {
            name: format!("smoke-{nodes}"),
            members: (1..=nodes).collect(),
        },
    );

    let mut harness = Harness::start(dir, nodes, seed).map_err(|e| e.to_string())?;
    let mut probe = harness.client(999);
    let mut client = harness.client(7);
    let mut acked: Vec<(String, String)> = Vec::new();

    // Phase 1: steady-state writes.
    driver.record(
        now_us(),
        EventKind::PhaseStart {
            index: 0,
            label: "steady-state writes".into(),
        },
    );
    let leader = harness.wait_for_leader(&mut probe)?;
    println!("smoke: leader is node {leader}");
    for i in 0..10 {
        let (k, v) = (format!("k{i}"), format!("v{i}"));
        client.put(&k, &v).map_err(|e| format!("put {k}: {e}"))?;
        acked.push((k, v));
    }

    // Phase 2: kill -9 the leader mid-traffic; writes must survive
    // failover, and the retry that spans the kill must not double-apply.
    driver.record(
        now_us(),
        EventKind::PhaseStart {
            index: 1,
            label: "kill -9 leader".into(),
        },
    );
    println!("smoke: kill -9 node {leader}");
    harness.kill(leader);
    for i in 10..20 {
        let (k, v) = (format!("k{i}"), format!("v{i}"));
        client.put(&k, &v).map_err(|e| format!("put {k} after kill: {e}"))?;
        acked.push((k, v));
    }
    let leader2 = harness.wait_for_leader(&mut probe)?;
    println!("smoke: failover to node {leader2}");

    // Phase 3: restart the killed node into the same data directory —
    // WAL recovery plus log catch-up from the new leader's heartbeats.
    driver.record(
        now_us(),
        EventKind::PhaseStart {
            index: 2,
            label: "restart killed node".into(),
        },
    );
    harness.spawn(leader).map_err(|e| e.to_string())?;

    // Phase 4 (5-node acceptance): a live 5→4→3→4→5 certified
    // reconfiguration, one node per step (R1⁺), with writes interleaved.
    if reconfig {
        driver.record(
            now_us(),
            EventKind::PhaseStart {
                index: 3,
                label: "live 5->3->5 reconfiguration".into(),
            },
        );
        let (lead, mut members) = harness.leader_view(&mut probe)?;
        members.sort_unstable();
        let dropped: Vec<u32> = members
            .iter()
            .rev()
            .copied()
            .filter(|n| *n != lead)
            .take(2)
            .collect();
        let mut current = members.clone();
        for (step, d) in dropped.iter().enumerate() {
            current.retain(|n| n != d);
            reconfigure_eventually(&mut client, &current)?;
            println!("smoke: shrank to {current:?}");
            let (k, v) = (format!("rk{step}"), format!("rv{step}"));
            client.put(&k, &v).map_err(|e| format!("put {k}: {e}"))?;
            acked.push((k, v));
        }
        for (step, d) in dropped.iter().rev().enumerate() {
            current.push(*d);
            current.sort_unstable();
            reconfigure_eventually(&mut client, &current)?;
            println!("smoke: grew to {current:?}");
            let (k, v) = (format!("gk{step}"), format!("gv{step}"));
            client.put(&k, &v).map_err(|e| format!("put {k}: {e}"))?;
            acked.push((k, v));
        }
    }

    // Phase 5: verification — every acked write must read back.
    driver.record(
        now_us(),
        EventKind::PhaseStart {
            index: 4,
            label: "verify".into(),
        },
    );
    let mut lost = Vec::new();
    for (k, v) in &acked {
        match client.get(k) {
            Ok(Some(got)) if got == *v => {}
            Ok(got) => lost.push(format!("{k}: acked {v:?}, read {got:?}")),
            Err(e) => lost.push(format!("{k}: read failed: {e}")),
        }
    }

    // Give the restarted node a moment to flush its catch-up journal
    // lines, then stop the cluster before reading journals.
    thread::sleep(Duration::from_millis(500));
    drop(probe);
    let texts = harness.journal_texts().map_err(|e| e.to_string())?;
    drop(harness);

    let mut node_events =
        merge_journals(texts.iter().map(String::as_str)).map_err(|e| e.to_string())?;
    let dupes = duplicate_applies(&rebuild_logs(&node_events));

    let safe = lost.is_empty() && dupes.is_empty();
    driver.record(
        now_us(),
        EventKind::Verdict {
            safe,
            kind: (!safe).then(|| "AckedWriteLossOrDuplicate".to_string()),
            detail: (!safe).then(|| {
                lost.iter().chain(dupes.iter()).cloned().collect::<Vec<_>>().join("; ")
            }),
            phase: 4,
        },
    );
    driver.record(
        now_us(),
        EventKind::RunEnd {
            committed: acked.len() as u64,
        },
    );

    // Merge the driver's journal in and audit the whole run.
    let driver_text = driver.to_jsonl();
    let mut texts_all: Vec<&str> = texts.iter().map(String::as_str).collect();
    texts_all.push(driver_text.as_str());
    node_events = merge_journals(texts_all).map_err(|e| e.to_string())?;
    let merged_path = dir.join("merged.jsonl");
    fs::write(&merged_path, to_jsonl(&node_events)).map_err(|e| e.to_string())?;
    let report = audit_events(&node_events);
    println!(
        "smoke: audit over {} events / {} nodes: consistent={}",
        report.events, report.nodes, report.consistent
    );

    if !lost.is_empty() {
        return Err(format!("acked-write loss: {}", lost.join("; ")));
    }
    if !dupes.is_empty() {
        return Err(format!("duplicate applies: {}", dupes.join("; ")));
    }
    if !report.consistent {
        return Err(format!(
            "audit rejected the run: errors={:?} divergence={:?}",
            report.errors, report.divergence
        ));
    }
    println!("smoke: merged journal at {}", merged_path.display());
    Ok(())
}

// ---- `adored bench` ------------------------------------------------------

fn cmd_bench(args: &[String]) -> i32 {
    let writes = arg_u64(args, "--writes", 300);
    let seed = arg_u64(args, "--seed", 42);
    let dir = arg_value(args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("target/bench-{}", std::process::id())));
    if arg_flag(args, "--open-loop") {
        let out = arg_value(args, "--out")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results/BENCH_live.json"));
        let rates: Vec<u64> = arg_value(args, "--open-loop")
            .map(|spec| spec.split(',').filter_map(|r| r.trim().parse().ok()).collect())
            .filter(|v: &Vec<u64>| !v.is_empty())
            .unwrap_or_else(|| vec![60, 120, 240]);
        let secs = arg_u64(args, "--secs-per-rate", 3).max(1);
        return match bench_open_loop(&dir, &rates, secs, seed, &out) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("bench --open-loop: FAIL: {e}");
                1
            }
        };
    }
    let out = arg_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/BENCH_net.json"));
    match bench(&dir, writes, seed, &out) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("bench: FAIL: {e}");
            1
        }
    }
}

/// The serialized shape of `results/BENCH_net.json`.
#[derive(serde::Serialize)]
struct BenchReport {
    name: &'static str,
    nodes: u32,
    /// `"closed-loop"`: the next write is issued only after the
    /// previous ack, so the measured latency folds queue wait into
    /// service time under overload — compare against the open-loop
    /// numbers in `BENCH_live.json`, which separate the two.
    mode: &'static str,
    writes: u64,
    seed: u64,
    elapsed_us: u64,
    /// The rate the loop *offered*. Closed-loop self-throttles, so
    /// offered equals achieved by construction; reported so the two
    /// bench modes share a comparable schema.
    offered_per_s: u64,
    /// The rate the cluster *achieved* (acked writes per second).
    achieved_per_s: u64,
    throughput_per_s: u64,
    latency_us: BenchLatency,
    histogram: adore_obs::HistogramSnapshot,
}

/// Summary latency quantiles of a bench run, in microseconds.
#[derive(serde::Serialize)]
struct BenchLatency {
    mean: u64,
    min: u64,
    p50: u64,
    p95: u64,
    p99: u64,
    max: u64,
}

fn bench(dir: &Path, writes: u64, seed: u64, out: &Path) -> Result<(), String> {
    let harness = Harness::start(dir, 3, seed).map_err(|e| e.to_string())?;
    let mut probe = harness.client(999);
    let leader = harness.wait_for_leader(&mut probe)?;
    println!("bench: leader is node {leader}; {writes} closed-loop writes");
    let mut client = harness.client(11);
    let mut hist = Histogram::default();
    let started = Instant::now();
    for i in 0..writes {
        let t0 = Instant::now();
        client
            .put(&format!("bk{i}"), &format!("bv{i}"))
            .map_err(|e| format!("put bk{i}: {e}"))?;
        hist.observe(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    let elapsed = started.elapsed();
    drop(probe);
    drop(harness);

    let elapsed_us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
    let throughput_per_s = writes
        .saturating_mul(1_000_000)
        .checked_div(elapsed_us)
        .unwrap_or(0);
    let snap = hist.snapshot();
    let report = BenchReport {
        name: "BENCH_net",
        nodes: 3,
        mode: "closed-loop",
        writes,
        seed,
        elapsed_us,
        offered_per_s: throughput_per_s,
        achieved_per_s: throughput_per_s,
        throughput_per_s,
        latency_us: BenchLatency {
            mean: snap.mean(),
            min: snap.min,
            p50: snap.quantile(0.50),
            p95: snap.quantile(0.95),
            p99: snap.quantile(0.99),
            max: snap.max,
        },
        histogram: snap.clone(),
    };
    adore_obs::write_json_report(out, &report).map_err(|e| e.to_string())?;
    println!(
        "bench: {throughput_per_s}/s, p50={}us p95={}us p99={}us -> {}",
        snap.quantile(0.50),
        snap.quantile(0.95),
        snap.quantile(0.99),
        out.display()
    );
    Ok(())
}

// ---- `adored bench --open-loop` ------------------------------------------

/// Worker threads sharing one offered-rate schedule. Eight keeps the
/// per-worker issue rate low enough that one slow ack rarely delays
/// the next intended start (and when it does, the latency is charged
/// from the *intended* start anyway).
const OPEN_LOOP_WORKERS: u64 = 8;

/// The serialized shape of `results/BENCH_live.json`.
#[derive(serde::Serialize)]
struct LiveBenchReport {
    name: &'static str,
    nodes: u32,
    mode: &'static str,
    seed: u64,
    secs_per_rate: u64,
    rates: Vec<RatePoint>,
    online: OnlineVerdict,
    /// The batch auditor's verdict over the same run's journal files,
    /// for the online ≡ batch cross-check. `None` if the files could
    /// not be merged.
    batch_consistent: Option<bool>,
}

/// One offered rate's measurements.
#[derive(serde::Serialize)]
struct RatePoint {
    offered_per_s: u64,
    achieved_per_s: u64,
    issued: u64,
    acked: u64,
    errors: u64,
    elapsed_us: u64,
    /// Series count from one live `/metrics` scrape of the leader
    /// during this rate, when the scrape succeeded.
    scraped_series: Option<u64>,
    latency_us: BenchLatency,
    histogram: adore_obs::HistogramSnapshot,
}

/// The online collector's close-out, serialized.
#[derive(serde::Serialize)]
struct OnlineVerdict {
    /// The headline: the live T1–T7 audit certified the run.
    certified: bool,
    events: usize,
    nodes: usize,
    acked: usize,
    /// Exporter-shed events, all accounted by `TraceDropped` markers.
    /// Zero means the online auditor saw every journaled event.
    trace_dropped: u64,
    flagged_at: Option<u64>,
    errors: Vec<String>,
}

/// One `/metrics` scrape: returns the exposition's sample-line count.
fn scrape_series(addr: &str) -> Option<u64> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    stream.set_write_timeout(Some(Duration::from_secs(2))).ok()?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").ok()?;
    let mut text = String::new();
    stream.read_to_string(&mut text).ok()?;
    let body = text.split_once("\r\n\r\n")?.1;
    Some(
        body.lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .count() as u64,
    )
}

/// What one open-loop worker measured: its latency histogram, the
/// `(seq, dup)` of every acked write, and its error count.
type WorkerTake = (adore_obs::HistogramSnapshot, Vec<(u64, bool)>, u64);

/// Issues `total` writes on a fixed schedule shared across workers
/// (worker `w` owns indices `w, w+W, w+2W, ...`). Latency is charged
/// from each write's *intended* start, never its actual dispatch, so a
/// stall delays the schedule without hiding its cost (no coordinated
/// omission).
fn open_loop_worker(
    mut client: NetClient,
    start: Instant,
    rate: u64,
    total: u64,
    w: u64,
    label: usize,
) -> WorkerTake {
    let mut hist = Histogram::default();
    let mut acks = Vec::new();
    let mut errors = 0u64;
    let mut i = w;
    while i < total {
        let intended = start + Duration::from_micros(i.saturating_mul(1_000_000) / rate.max(1));
        let now = Instant::now();
        if intended > now {
            thread::sleep(intended - now);
        }
        let key = format!("ol{label}-{w}-{i}");
        match client.put(&key, "x") {
            Ok(acked) => {
                hist.observe(dur_us(intended.elapsed()));
                acks.push((acked.seq, acked.duplicate));
            }
            Err(_) => errors += 1,
        }
        i += OPEN_LOOP_WORKERS;
    }
    (hist.snapshot(), acks, errors)
}

/// The open-loop campaign: a 3-node cluster with the online auditor
/// attached, driven at each offered rate in turn. Fails unless the
/// online audit certifies the run.
#[allow(clippy::too_many_lines)]
fn bench_open_loop(
    dir: &Path,
    rates: &[u64],
    secs: u64,
    seed: u64,
    out: &Path,
) -> Result<(), String> {
    let harness = Harness::start(dir, 3, seed).map_err(|e| e.to_string())?;
    let mut probe = harness.client(999);
    let leader = harness.wait_for_leader(&mut probe)?;
    println!("bench: leader is node {leader}; open-loop at {rates:?}/s, {secs}s per rate");

    // The live plane: one stream per node's export channel, plus the
    // driver's own stream (RunStart/SessionAck/Verdict/RunEnd), all
    // merged and audited as they arrive.
    let (collector, mut locals) = OnlineCollector::attach(&harness.export_addrs(), &[90]);
    let mut driver = locals.pop().ok_or("collector returned no driver stream")?;
    // `pushed` mirrors every driver event for the batch cross-check.
    let mut pushed: Vec<TraceEvent> = Vec::new();
    let record = |q: &mut adored::export::ExportQueue, pushed: &mut Vec<TraceEvent>, kind: EventKind| {
        let ev = TraceEvent::root(now_us(), kind);
        q.push(&ev);
        pushed.push(ev);
    };
    record(
        &mut driver,
        &mut pushed,
        EventKind::RunStart {
            name: "bench-open-loop".to_string(),
            members: harness.node_ids(),
        },
    );

    let mut points = Vec::new();
    let mut total_acked: u64 = 0;
    for (ri, &rate) in rates.iter().enumerate() {
        record(
            &mut driver,
            &mut pushed,
            EventKind::PhaseStart {
                index: u32::try_from(ri).unwrap_or(u32::MAX),
                label: format!("open-loop {rate}/s"),
            },
        );
        let total = rate.saturating_mul(secs);
        let start = Instant::now();
        let mut workers = Vec::new();
        for w in 0..OPEN_LOOP_WORKERS {
            let client = harness.client(100 + (ri as u64) * OPEN_LOOP_WORKERS + w);
            workers.push(thread::spawn(move || {
                open_loop_worker(client, start, rate, total, w, ri)
            }));
        }
        let mut merged = Histogram::default().snapshot();
        let mut acked = 0u64;
        let mut errors = 0u64;
        for (w, handle) in workers.into_iter().enumerate() {
            let (snap, acks, errs) = handle
                .join()
                .map_err(|_| format!("open-loop worker {w} panicked"))?;
            merged.merge(&snap);
            errors += errs;
            let client_id = 100 + (ri as u64) * OPEN_LOOP_WORKERS + w as u64;
            for (seq, dup) in acks {
                acked += 1;
                record(
                    &mut driver,
                    &mut pushed,
                    EventKind::SessionAck {
                        client: client_id,
                        seq,
                        dup,
                    },
                );
            }
        }
        let elapsed_us = dur_us(start.elapsed());
        let achieved_per_s = acked
            .saturating_mul(1_000_000)
            .checked_div(elapsed_us)
            .unwrap_or(0);
        let scraped_series = harness
            .metrics_addr(leader)
            .as_deref()
            .and_then(scrape_series);
        total_acked += acked;
        println!(
            "bench: offered {rate}/s -> achieved {achieved_per_s}/s \
             (p50={}us p95={}us p99={}us, {errors} errors)",
            merged.quantile(0.50),
            merged.quantile(0.95),
            merged.quantile(0.99)
        );
        points.push(RatePoint {
            offered_per_s: rate,
            achieved_per_s,
            issued: total,
            acked,
            errors,
            elapsed_us,
            scraped_series,
            latency_us: BenchLatency {
                mean: merged.mean(),
                min: merged.min,
                p50: merged.quantile(0.50),
                p95: merged.quantile(0.95),
                p99: merged.quantile(0.99),
                max: merged.max,
            },
            histogram: merged,
        });
    }

    // Let the nodes stream their final commits, then close the run out.
    thread::sleep(Duration::from_millis(700));
    record(
        &mut driver,
        &mut pushed,
        EventKind::Verdict {
            safe: true,
            kind: None,
            detail: None,
            phase: u32::try_from(rates.len()).unwrap_or(u32::MAX),
        },
    );
    record(
        &mut driver,
        &mut pushed,
        EventKind::RunEnd {
            committed: total_acked,
        },
    );
    drop(driver);
    let creport = collector.stop();

    // Batch cross-check: the same run, audited from the journal files
    // plus the driver's mirrored events.
    let texts = harness.journal_texts().map_err(|e| e.to_string())?;
    drop(probe);
    drop(harness);
    let driver_text = to_jsonl(&pushed);
    let mut all_texts: Vec<&str> = texts.iter().map(String::as_str).collect();
    all_texts.push(driver_text.as_str());
    let batch_consistent = merge_journals(all_texts)
        .ok()
        .map(|events| audit_events(&events).consistent);

    let online = OnlineVerdict {
        certified: creport.report.consistent,
        events: creport.report.events,
        nodes: creport.report.nodes,
        acked: creport.report.acked,
        trace_dropped: creport.dropped,
        flagged_at: creport.flagged_at,
        errors: creport.report.errors.clone(),
    };
    let verdict = if online.certified { "CERTIFIED" } else { "REJECTED" };
    println!(
        "bench: online audit {verdict} over {} events / {} nodes ({} acked obligations, {} trace-dropped)",
        online.events, online.nodes, online.acked, online.trace_dropped
    );
    let report = LiveBenchReport {
        name: "BENCH_live",
        nodes: 3,
        mode: "open-loop",
        seed,
        secs_per_rate: secs,
        rates: points,
        online,
        batch_consistent,
    };
    adore_obs::write_json_report(out, &report).map_err(|e| e.to_string())?;
    println!("bench: report -> {}", out.display());

    if !creport.report.consistent {
        return Err(format!(
            "online audit rejected the run: errors={:?} divergence={:?}",
            creport.report.errors, creport.report.divergence
        ));
    }
    // With zero shed events the online auditor saw the complete trace,
    // so the batch verdict over the files must agree (online ≡ batch).
    if creport.dropped == 0 && batch_consistent == Some(false) {
        return Err("batch audit disagrees with the certified online verdict".to_string());
    }
    Ok(())
}
