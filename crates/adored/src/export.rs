//! Streaming trace export: a node's journal, live over TCP.
//!
//! Each node can serve its per-boot [`adore_obs::TraceEvent`] stream
//! on a side-channel socket, framed with the same `[len][crc32][JSON]`
//! wire codec as the data plane. The design keeps the protocol loop
//! honest and the loss model explicit:
//!
//! - **Bounded tee, never blocking**: the journal tees each event into
//!   a bounded queue with `try_send`. A full queue sheds the event and
//!   the *next* successful push is preceded by a synthesized
//!   [`EventKind::TraceDropped`] marker carrying the shed count — so
//!   backpressure is visible in the stream itself, never silent, and
//!   the engine loop never waits on a slow observer.
//! - **Replay on subscribe**: the pump retains this boot's frames (up
//!   to [`RETAIN_FRAMES`]); a subscriber connecting late — or redialing
//!   a restarted node — receives the boot's history first, then live
//!   events. Trimmed history is announced with a leading
//!   `TraceDropped` marker, same accounting as queue loss.
//! - **Slow subscribers stall the pump, not the node**: subscriber
//!   writes carry no deadline, so an unread socket eventually blocks
//!   the pump thread — at which point the bounded queue fills and
//!   sheds with markers. The node's event loop is never the party that
//!   waits.
//!
//! The consumer half ([`ExportReader`]) reads frames through its own
//! buffer with a poll timeout, so a silent stream (a SIGSTOPped node)
//! is distinguishable from a dead one.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use adore_obs::{EventKind, TraceEvent};

use crate::det::msg::{decode_msg, encode_msg};
use crate::det::wire;

/// Bound on the export queue between the engine loop's tee and the
/// pump thread. Deep enough to ride out scheduling hiccups at bench
/// rates; overflow sheds with `TraceDropped` markers.
pub const EXPORT_QUEUE_DEPTH: usize = 8_192;

/// Frames of the current boot retained for late subscribers. Above
/// this the oldest are trimmed and announced via a `TraceDropped`
/// marker on subscribe.
const RETAIN_FRAMES: usize = 65_536;

/// How long the pump waits for the next event before re-checking for
/// new subscribers.
const PUMP_POLL: Duration = Duration::from_millis(50);

/// Read-poll timeout on the consumer side.
const READ_POLL: Duration = Duration::from_millis(200);

/// Shared export counters, readable from the node's metrics loop.
#[derive(Debug, Clone, Default)]
pub struct ExportStats {
    dropped: Arc<AtomicU64>,
    depth: Arc<AtomicU64>,
}

impl ExportStats {
    /// Total events shed under backpressure so far (every one of them
    /// accounted by a `TraceDropped` marker in the stream).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently queued between the tee and the pump.
    #[must_use]
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }
}

/// The producer half of an export stream: a bounded, loss-accounting
/// tee for trace events.
///
/// Owned by whatever records the journal (the node's [`crate::node`]
/// event loop, the availability monitor, a harness driver). `push`
/// never blocks.
#[derive(Debug)]
pub struct ExportQueue {
    nid: u32,
    tx: SyncSender<TraceEvent>,
    /// Events shed since the last marker made it into the stream.
    pending_dropped: u64,
    stats: ExportStats,
}

impl ExportQueue {
    /// A fresh queue and its consumer end — the in-process form, used
    /// for local streams (drivers, monitors) feeding a collector
    /// directly.
    #[must_use]
    pub fn new(nid: u32, depth: usize) -> (ExportQueue, Receiver<TraceEvent>) {
        let (tx, rx) = mpsc::sync_channel(depth.max(1));
        (
            ExportQueue {
                nid,
                tx,
                pending_dropped: 0,
                stats: ExportStats::default(),
            },
            rx,
        )
    }

    /// Shared counter handles (clone of the atomics, safe to keep
    /// after the queue moves into the journal).
    #[must_use]
    pub fn stats(&self) -> ExportStats {
        self.stats.clone()
    }

    /// Tee one event into the stream; sheds (with accounting) instead
    /// of blocking when the queue is full.
    pub fn push(&mut self, ev: &TraceEvent) {
        if self.pending_dropped > 0 {
            // Announce prior loss before the event that found room.
            // The marker borrows the event's stamp so the stream stays
            // clock-monotone.
            let marker = TraceEvent::root(
                ev.at_us,
                EventKind::TraceDropped {
                    nid: self.nid,
                    count: self.pending_dropped,
                },
            );
            match self.tx.try_send(marker) {
                Ok(()) => {
                    self.pending_dropped = 0;
                    self.stats.depth.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                    // Still no room: the event below will be shed too.
                }
            }
        }
        if self.pending_dropped > 0 {
            self.shed();
            return;
        }
        match self.tx.try_send(ev.clone()) {
            Ok(()) => {
                self.stats.depth.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => self.shed(),
        }
    }

    fn shed(&mut self) {
        self.pending_dropped += 1;
        self.stats.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// Binds the export listener and spawns the accept + pump threads.
/// Returns the producer queue for the journal tee and the bound
/// address.
///
/// # Errors
///
/// Socket bind failure.
pub fn serve(nid: u32, addr: &str) -> io::Result<(ExportQueue, SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let (queue, rx) = ExportQueue::new(nid, EXPORT_QUEUE_DEPTH);
    let stats = queue.stats();
    let (sub_tx, sub_rx) = mpsc::sync_channel::<TcpStream>(16);
    thread::spawn(move || accept_loop(&listener, &sub_tx));
    thread::spawn(move || pump(&rx, &sub_rx, &stats, nid));
    Ok((queue, local))
}

fn accept_loop(listener: &TcpListener, sub_tx: &SyncSender<TcpStream>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        match sub_tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                // Subscriber burst beyond the handoff bound: the
                // dropped socket closes, and the consumer's redial
                // loop tries again.
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// The pump: single owner of the subscriber set and the replay buffer.
fn pump(
    rx: &Receiver<TraceEvent>,
    sub_rx: &Receiver<TcpStream>,
    stats: &ExportStats,
    nid: u32,
) {
    let mut subs: Vec<TcpStream> = Vec::new();
    // (stamp, frame) of every event pumped this boot, for late joiners.
    let mut retained: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut trimmed: u64 = 0;
    loop {
        while let Ok(mut stream) = sub_rx.try_recv() {
            if replay(&mut stream, &retained, trimmed, nid).is_ok() {
                subs.push(stream);
            }
        }
        match rx.recv_timeout(PUMP_POLL) {
            Ok(ev) => {
                stats.depth.fetch_sub(1, Ordering::Relaxed);
                let Ok(frame) = encode_msg(&ev) else { continue };
                subs.retain_mut(|s| s.write_all(&frame).is_ok());
                retained.push((ev.at_us, frame));
                if retained.len() > RETAIN_FRAMES {
                    let excess = retained.len() - RETAIN_FRAMES;
                    retained.drain(..excess);
                    trimmed += excess as u64;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Sends a new subscriber the boot's retained history (prefixed with a
/// loss marker if the buffer was trimmed).
fn replay(
    stream: &mut TcpStream,
    retained: &[(u64, Vec<u8>)],
    trimmed: u64,
    nid: u32,
) -> io::Result<()> {
    if trimmed > 0 {
        let at_us = retained.first().map_or(0, |(at, _)| *at);
        let marker = TraceEvent::root(
            at_us,
            EventKind::TraceDropped {
                nid,
                count: trimmed,
            },
        );
        let frame = encode_msg(&marker)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        stream.write_all(&frame)?;
    }
    for (_, frame) in retained {
        stream.write_all(frame)?;
    }
    Ok(())
}

/// The consumer half: connects to a node's export socket and yields
/// decoded [`TraceEvent`]s.
#[derive(Debug)]
pub struct ExportReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ExportReader {
    /// Dials an export socket.
    ///
    /// # Errors
    ///
    /// Connection failure (the node may not be up yet — redial).
    pub fn connect(addr: &str) -> io::Result<ExportReader> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(READ_POLL));
        Ok(ExportReader {
            stream,
            buf: Vec::new(),
        })
    }

    /// The next event, if one is available within the poll timeout.
    ///
    /// `Ok(None)` means "nothing yet, stream alive" — a silent or
    /// paused node, not a dead one.
    ///
    /// # Errors
    ///
    /// A dead link (EOF, reset) or an undecodable frame; either way
    /// the stream is done and the caller should redial (a restarted
    /// node replays its new boot from the start).
    pub fn poll_event(&mut self) -> io::Result<Option<TraceEvent>> {
        loop {
            match wire::split_frame(&self.buf) {
                Ok(Some((payload, used))) => {
                    let ev = decode_msg::<TraceEvent>(payload)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    self.buf.drain(..used);
                    return Ok(Some(ev));
                }
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "export stream closed",
                    ));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, nid: u32) -> TraceEvent {
        TraceEvent::root(at_us, EventKind::WalSync { nid })
    }

    /// The export frame is the data-plane codec applied to the pinned
    /// event JSON — pin the exact bytes so an exporter drift breaks
    /// loudly.
    #[test]
    fn export_frame_bytes_are_pinned() {
        let event = TraceEvent::root(7, EventKind::TraceDropped { nid: 2, count: 3 });
        let frame = encode_msg(&event).expect("encodes");
        let payload = br#"{"seq":0,"at_us":7,"parent":null,"kind":{"TraceDropped":{"nid":2,"count":3}}}"#;
        assert_eq!(&frame[wire::HEADER..], payload.as_slice());
        let header: [u8; wire::HEADER] = frame[..wire::HEADER].try_into().expect("header width");
        let (len, crc) = wire::decode_header(&header).expect("header");
        assert_eq!(len, payload.len());
        wire::verify_payload(payload, crc).expect("crc of pinned payload");
        let back: TraceEvent = decode_msg(&frame[wire::HEADER..]).expect("decodes");
        assert_eq!(back, event);
    }

    #[test]
    fn overflow_sheds_with_an_accounting_marker_never_blocks() {
        let (mut q, rx) = ExportQueue::new(1, 2);
        q.push(&ev(10, 1));
        q.push(&ev(20, 1));
        q.push(&ev(30, 1)); // full: shed
        q.push(&ev(40, 1)); // full: shed
        assert_eq!(q.stats().dropped(), 2);
        // Drain, making room: the next push emits the marker first.
        let first = rx.recv().expect("queued");
        assert_eq!(first.at_us, 10);
        let _ = rx.recv().expect("queued");
        q.push(&ev(50, 1));
        let marker = rx.recv().expect("marker");
        assert!(
            matches!(marker.kind, EventKind::TraceDropped { nid: 1, count: 2 }),
            "got {marker:?}"
        );
        assert_eq!(marker.at_us, 50, "marker borrows the unblocking stamp");
        let live = rx.recv().expect("event after marker");
        assert_eq!(live.at_us, 50);
    }

    #[test]
    fn served_stream_replays_history_then_streams_live() {
        let (mut queue, addr) = serve(3, "127.0.0.1:0").expect("bind");

        // History before anyone subscribes.
        queue.push(&ev(10, 3));
        queue.push(&ev(20, 3));
        thread::sleep(Duration::from_millis(120)); // let the pump retain them
        let mut reader = ExportReader::connect(&addr.to_string()).expect("connect");
        let mut got = Vec::new();
        while got.len() < 2 {
            if let Some(e) = reader.poll_event().expect("alive") {
                got.push(e.at_us);
            }
        }
        assert_eq!(got, vec![10, 20], "late joiner got the boot history");
        // Live tail.
        queue.push(&ev(30, 3));
        loop {
            if let Some(e) = reader.poll_event().expect("alive") {
                assert_eq!(e.at_us, 30);
                break;
            }
        }
    }
}
