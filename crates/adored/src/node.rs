//! The threaded runtime shell around one [`Engine`].
//!
//! All nondeterminism lives here, at the edges: the TCP listener, the
//! per-peer connector threads, the tick timer, and the wall clock that
//! stamps journal lines. The protocol itself runs single-threaded in
//! [`run`]'s engine loop, fed through one channel — so the state
//! machine the simulations certified is byte-for-byte the one a real
//! cluster runs.
//!
//! # Partial-failure hardening
//!
//! - **Connection supervision**: each outbound peer link is owned by a
//!   connector thread that redials with capped exponential backoff and
//!   seeded jitter; inbound links are re-accepted by the listener. A
//!   dead link drops messages (the protocol's heartbeats retransmit the
//!   full log, so loss is repaired, never compensated for here).
//! - **Failure detection**: peers are declared suspect by silence — a
//!   follower that misses heartbeats past its jittered election
//!   deadline campaigns; a read deadline reaps sockets whose far end
//!   vanished without a FIN (the kill -9 case).
//! - **Deadlines**: every socket carries a write timeout, so one hung
//!   peer can never wedge a thread that other links depend on.
//! - **Crash-restart recovery**: the WAL device image is mirrored to
//!   `data_dir/wal.bin` append-only and flushed before any ack leaves
//!   the node; a restart replays it through `adore-storage` recovery
//!   and journals the `Crash`/`WalRecover` pair the auditor expects.
//! - **Journals**: one JSONL file per boot (`journal-<boot_us>.jsonl`),
//!   flushed per line, so a SIGKILL can tear at most the final line —
//!   which `adore-obs`'s journal merge drops by design.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use adore_core::NodeId;
use adore_obs::{EventKind, Metrics, Tracer};
use adore_schemes::SingleNode;
use adore_storage::{DurabilityPolicy, Recovery, Wal};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

use crate::det::engine::{Engine, EngineConfig, EngineParams, Input, Output};
use crate::det::msg::{decode_msg, encode_msg, ClientMsg, ClientReply, Hello, PeerMsg, SessionCmd};
use crate::det::wire;
use crate::export::{self, ExportQueue, ExportStats};
use crate::scrape;

/// Write timeout on every socket: a hung peer fails fast instead of
/// wedging a sender thread.
const WRITE_DEADLINE: Duration = Duration::from_secs(2);
/// Default read deadline on peer links, milliseconds; heartbeats
/// arrive hundreds of times more often, so a silent link this long is
/// dead (kill -9 without a FIN) and the socket is reaped. The fault
/// harness raises it per node so a SIGSTOP gray pause shorter than the
/// deadline resumes on the same sockets instead of looking like a
/// crash.
pub const DEFAULT_PEER_READ_DEADLINE_MS: u64 = 30_000;
/// How long a fresh connection has to introduce itself.
const HELLO_DEADLINE: Duration = Duration::from_secs(5);
/// Reconnect backoff base for the capped exponential.
const BACKOFF_BASE_MS: u64 = 50;
/// Reconnect backoff cap.
const BACKOFF_CAP_MS: u64 = 2_000;
/// Bound on the engine inbox (IO threads block briefly when full).
const INBOX_DEPTH: usize = 1_024;
/// Bound on each per-peer outbox (overflow drops; heartbeats repair).
const PEER_OUTBOX_DEPTH: usize = 256;

/// Everything needed to run one node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's id.
    pub nid: u32,
    /// The full address book: `(nid, host:port)` for every node,
    /// including this one (its own entry is the listen address).
    pub peers: Vec<(u32, String)>,
    /// Data directory: WAL file and per-boot journals live here.
    pub data_dir: PathBuf,
    /// Seed for election jitter and reconnect jitter.
    pub seed: u64,
    /// Milliseconds per engine tick.
    pub tick_ms: u64,
    /// Optional watchdog: exit cleanly after this long (used by the
    /// fault harness so orphaned children cannot outlive a run).
    pub max_runtime_ms: Option<u64>,
    /// Engine tunables.
    pub params: EngineParams,
    /// The reconfiguration guard predicate. Production is
    /// [`adore_core::ReconfigGuard::all`]; the fault harness ablates
    /// individual conditions to manufacture live counterexamples.
    pub guard: adore_core::ReconfigGuard,
    /// Read deadline on inbound peer links, milliseconds
    /// ([`DEFAULT_PEER_READ_DEADLINE_MS`] in production). Gray pauses
    /// (SIGSTOP) longer than this reap the link and force a redial.
    pub peer_read_deadline_ms: u64,
    /// Optional listen address for the streaming trace export
    /// side-channel (the journal, live over TCP — see
    /// [`crate::export`]). `None` disables export.
    pub export_addr: Option<String>,
    /// Optional listen address for the read-only `/metrics` scrape
    /// endpoint (see [`crate::scrape`]). `None` disables it.
    pub metrics_addr: Option<String>,
}

/// Events flowing into the engine loop from the IO threads.
pub(crate) enum Event {
    Tick,
    Peer(PeerMsg),
    Client { conn: u64, msg: ClientMsg },
    ClientGone { conn: u64 },
    /// A frame the wire layer rejected (`corrupt`, `oversized`) or a
    /// crc-valid frame whose payload is not the expected message type
    /// (`bad-payload`, i.e. protocol-version confusion). Journaled so
    /// the auditor can certify the rejection path actually fired.
    BadFrame { reason: String },
    /// A thread found a mutex poisoned and adopted the value instead
    /// of panicking (see [`lock_clients`]). Journaled so the adoption
    /// is auditable rather than silent.
    LockPoisoned { lock: &'static str },
    /// The `/metrics` endpoint served a scrape; journaled as a
    /// `MetricsScrape` event by the single journal writer.
    Scraped { series: u32 },
    Shutdown,
}

/// Locks the client map, adopting a poisoned value instead of
/// panicking the thread. Safe because the map's invariant is
/// per-entry — each value is an independent writer handle, inserted or
/// removed in a single map operation — so a thread that panicked while
/// holding the lock cannot have left it torn. The adoption is reported
/// through the engine inbox and journaled, never silent; `try_send`
/// keeps this path non-blocking (a full inbox drops the report, and
/// the next adoption re-reports).
fn lock_clients<'m>(
    clients: &'m Mutex<BTreeMap<u64, TcpStream>>,
    tx: &SyncSender<Event>,
) -> MutexGuard<'m, BTreeMap<u64, TcpStream>> {
    clients.lock().unwrap_or_else(|poisoned| {
        let _ = tx.try_send(Event::LockPoisoned { lock: "clients" });
        poisoned.into_inner()
    })
}

/// Locks the shared metrics registry with the same poison-adoption
/// discipline as [`lock_clients`]: registry mutations are single-map
/// operations, so a panicking holder cannot leave it torn, and the
/// adoption is journaled, never silent. Shared with the scrape
/// endpoint — the only other reader.
pub(crate) fn lock_metrics<'m>(
    metrics: &'m Mutex<Metrics>,
    tx: &SyncSender<Event>,
) -> MutexGuard<'m, Metrics> {
    metrics.lock().unwrap_or_else(|poisoned| {
        let _ = tx.try_send(Event::LockPoisoned { lock: "metrics" });
        poisoned.into_inner()
    })
}

/// Microseconds since the UNIX epoch; journal stamps must be
/// comparable across the processes of one host-local cluster.
fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// The per-boot journal: every event is stamped, serialized, and
/// flushed immediately, so a SIGKILL tears at most the last line.
pub(crate) struct Journal {
    tracer: Tracer,
    file: fs::File,
    /// Optional live tee: every journaled event is also pushed (non-
    /// blocking, loss-accounted) to the streaming export channel.
    export: Option<ExportQueue>,
}

impl Journal {
    pub(crate) fn open(dir: &Path, boot_us: u64) -> io::Result<Journal> {
        let path = dir.join(format!("journal-{boot_us}.jsonl"));
        Ok(Journal {
            tracer: Tracer::enabled(),
            file: fs::File::create(path)?,
            export: None,
        })
    }

    /// Attaches the streaming export tee. Do this before the first
    /// `record` so subscribers see the whole boot.
    pub(crate) fn attach_export(&mut self, queue: ExportQueue) {
        self.export = Some(queue);
    }

    pub(crate) fn record(&mut self, kind: EventKind) {
        self.tracer.record(now_us(), kind);
        for ev in self.tracer.take() {
            if let Ok(line) = serde_json::to_string(&ev) {
                let _ = writeln!(self.file, "{line}");
                let _ = self.file.flush();
            }
            if let Some(queue) = &mut self.export {
                queue.push(&ev);
            }
        }
    }
}

/// Reads one frame off a stream. `Ok(None)` is a clean EOF at a frame
/// boundary; a deadline expiry or mid-frame EOF is an error (the link
/// is dead or misbehaving either way).
pub(crate) fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; wire::HEADER];
    if let Err(e) = stream.read_exact(&mut header) {
        return if e.kind() == io::ErrorKind::UnexpectedEof {
            Ok(None)
        } else {
            Err(e)
        };
    }
    let (len, crc) = wire::decode_header(&header).map_err(wire_to_io)?;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    wire::verify_payload(&payload, crc).map_err(wire_to_io)?;
    Ok(Some(payload))
}

/// Frames and writes one message.
pub(crate) fn write_frame<T: Serialize>(stream: &mut TcpStream, msg: &T) -> io::Result<()> {
    let frame = encode_msg(msg).map_err(wire_to_io)?;
    stream.write_all(&frame)
}

fn wire_to_io(e: wire::WireError) -> io::Error {
    // Carry the typed error through so `bad_frame_reason` can name the
    // rejection class for the journal.
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Names the journal reason when an IO error is a frame-level
/// rejection (as opposed to a plain transport failure, which is not a
/// `BadFrame`).
fn bad_frame_reason(e: &io::Error) -> Option<&'static str> {
    match e.get_ref()?.downcast_ref::<wire::WireError>()? {
        wire::WireError::Oversized { .. } => Some("oversized"),
        wire::WireError::Corrupt => Some("corrupt"),
        wire::WireError::BadPayload { .. } => Some("bad-payload"),
    }
}

/// Loads (or creates) the node's WAL from `data_dir/wal.bin`, runs
/// recovery, and journals the crash/recovery pair when prior state
/// existed. Returns the WAL, the recovered durable state, and whether
/// the replica must abstain (media loss). Fail-stops on corruption.
#[allow(clippy::type_complexity)]
fn load_wal(
    nid: NodeId,
    wal_path: &Path,
    journal: &mut Journal,
) -> io::Result<(
    Wal<SingleNode, SessionCmd>,
    adore_storage::DurableState<SingleNode, SessionCmd>,
    bool,
)> {
    let existing = fs::read(wal_path).unwrap_or_default();
    let had_state = !existing.is_empty();
    let mut wal = Wal::from_bytes(nid, &existing);
    let recovery = wal.recover(&DurabilityPolicy::strict());
    if had_state {
        // A prior WAL file means the previous boot ended without
        // ceremony: journal the crash the way the fault model names
        // it. "kill-9" is not "lose-tail" — the page cache survives a
        // SIGKILL, so the auditor's strict clean-crash equality check
        // does not apply; committed-prefix agreement (T3) still does.
        journal.record(EventKind::Crash {
            nid: nid.0,
            disk: "kill-9".to_string(),
        });
    }
    let (state, abstaining) = match recovery {
        Recovery::Intact(state) => {
            if had_state {
                journal.record(EventKind::WalRecover {
                    nid: nid.0,
                    outcome: "intact".to_string(),
                    term: state.time.0,
                    log: state
                        .log
                        .iter()
                        .map(|e| serde_json::to_string(e).expect("entries serialize"))
                        .collect(),
                    commit_len: state.commit_len as u64,
                });
            }
            (state, false)
        }
        Recovery::DataLoss => {
            journal.record(EventKind::WalRecover {
                nid: nid.0,
                outcome: "data-loss".to_string(),
                term: 0,
                log: Vec::new(),
                commit_len: 0,
            });
            (adore_storage::DurableState::default(), true)
        }
        Recovery::Corrupt { record } => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("WAL record {record} failed its checksum: fail-stop"),
            ));
        }
    };
    // Recovery may have truncated an invalid tail; rewrite the file to
    // the post-recovery device image so the append-only mirror below
    // starts from an exact prefix.
    fs::write(wal_path, wal.disk().bytes())?;
    Ok((wal, state, abstaining))
}

/// Runs one node until shutdown (watchdog expiry) or listener failure.
///
/// # Errors
///
/// Socket bind/IO failures and WAL corruption (fail-stop).
pub fn run(cfg: NodeConfig) -> io::Result<()> {
    fs::create_dir_all(&cfg.data_dir)?;
    let nid = NodeId(cfg.nid);
    let boot_us = now_us();
    let mut journal = Journal::open(&cfg.data_dir, boot_us)?;
    // Attach the streaming export tee before recovery runs, so a
    // subscriber sees this boot's Crash/WalRecover pair too.
    let export_stats: Option<ExportStats> = match &cfg.export_addr {
        Some(addr) => {
            let (queue, _bound) = export::serve(cfg.nid, addr)?;
            let stats = queue.stats();
            journal.attach_export(queue);
            Some(stats)
        }
        None => None,
    };
    let wal_path = cfg.data_dir.join("wal.bin");
    let (wal, state, abstaining) = load_wal(nid, &wal_path, &mut journal)?;
    let mut wal_file = fs::OpenOptions::new().append(true).open(&wal_path)?;

    let members: Vec<u32> = cfg.peers.iter().map(|(n, _)| *n).collect();
    let engine_cfg = EngineConfig {
        nid,
        peers: members.iter().map(|n| NodeId(*n)).collect(),
        conf0: SingleNode::new(members.iter().copied()),
        guard: cfg.guard,
        params: cfg.params.clone(),
        seed: cfg.seed,
    };
    let mut engine = Engine::new(engine_cfg, wal, state, abstaining);

    let (inbox_tx, inbox_rx) = mpsc::sync_channel::<Event>(INBOX_DEPTH);
    let clients: Arc<Mutex<BTreeMap<u64, TcpStream>>> = Arc::new(Mutex::new(BTreeMap::new()));

    // The metrics registry: written by the engine loop, snapshotted by
    // the scrape endpoint. Never held together with the clients lock
    // (L9) and never across a blocking call (L11).
    let metrics: Arc<Mutex<Metrics>> = Arc::new(Mutex::new(Metrics::new()));
    if let Some(addr) = &cfg.metrics_addr {
        scrape::serve(addr, Arc::clone(&metrics), inbox_tx.clone())?;
    }

    // Tick timer + watchdog.
    {
        let tx = inbox_tx.clone();
        let tick = Duration::from_millis(cfg.tick_ms.max(1));
        let deadline = cfg.max_runtime_ms.map(Duration::from_millis);
        thread::spawn(move || {
            let started = std::time::Instant::now();
            loop {
                thread::sleep(tick);
                if deadline.is_some_and(|d| started.elapsed() >= d) {
                    let _ = tx.send(Event::Shutdown);
                    return;
                }
                if tx.send(Event::Tick).is_err() {
                    return;
                }
            }
        });
    }

    // Outbound peer links: one supervised connector thread per peer.
    let mut peer_tx: BTreeMap<u32, SyncSender<PeerMsg>> = BTreeMap::new();
    for (pid, addr) in cfg.peers.iter().filter(|(n, _)| *n != cfg.nid) {
        let (tx, rx) = mpsc::sync_channel::<PeerMsg>(PEER_OUTBOX_DEPTH);
        peer_tx.insert(*pid, tx);
        let addr = addr.clone();
        let my_nid = cfg.nid;
        let seed = cfg.seed ^ (u64::from(cfg.nid) << 32) ^ u64::from(*pid);
        thread::spawn(move || peer_connector(my_nid, &addr, &rx, seed));
    }

    // Listener: inbound peer links and client sessions.
    let listen_addr = cfg
        .peers
        .iter()
        .find(|(n, _)| *n == cfg.nid)
        .map(|(_, a)| a.clone())
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "own nid missing from peer list")
        })?;
    let listener = TcpListener::bind(&listen_addr)?;
    {
        let tx = inbox_tx.clone();
        let clients = Arc::clone(&clients);
        let peer_deadline = Duration::from_millis(cfg.peer_read_deadline_ms.max(1));
        thread::spawn(move || {
            let next_conn = Arc::new(AtomicU64::new(1));
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let tx = tx.clone();
                let clients = Arc::clone(&clients);
                let next_conn = Arc::clone(&next_conn);
                thread::spawn(move || {
                    serve_connection(stream, &tx, &clients, &next_conn, peer_deadline);
                });
            }
        });
    }

    // The engine loop: the single deterministic thread.
    //
    // `in_flight` times acked requests for the `request_latency_us`
    // histogram: one pending (seq, start) per client connection —
    // sessions are serial per client, and a retry overwrite restarts
    // the clock, which only biases the measurement pessimistically.
    let mut in_flight: BTreeMap<u64, (u64, Instant)> = BTreeMap::new();
    while let Ok(event) = inbox_rx.recv() {
        let input = match event {
            Event::Tick => Input::Tick,
            Event::Peer(msg) => Input::Peer(msg),
            Event::Client { conn, msg } => {
                match &msg {
                    ClientMsg::Put { seq, .. } | ClientMsg::Reconfigure { seq, .. } => {
                        in_flight.insert(conn, (*seq, Instant::now()));
                    }
                    ClientMsg::Get { .. } | ClientMsg::Status => {}
                }
                Input::Client { conn, msg }
            }
            Event::ClientGone { conn } => {
                in_flight.remove(&conn);
                Input::ClientGone { conn }
            }
            Event::BadFrame { reason } => {
                // Rejected frames never reach the engine; journal the
                // rejection so `adore-obs --audit` can certify the
                // crc/length/protocol checks actually fired.
                journal.record(EventKind::BadFrame {
                    nid: cfg.nid,
                    reason,
                });
                continue;
            }
            Event::LockPoisoned { lock } => {
                journal.record(EventKind::LockPoisoned {
                    nid: cfg.nid,
                    lock: lock.to_string(),
                });
                continue;
            }
            Event::Scraped { series } => {
                journal.record(EventKind::MetricsScrape {
                    nid: cfg.nid,
                    series,
                });
                continue;
            }
            Event::Shutdown => break,
        };
        let mut dead_conns = Vec::new();
        for output in engine.step(input) {
            match output {
                Output::Persist { bytes } => {
                    // The write-ahead rule: on disk before any later
                    // Send/Reply of this batch leaves the process.
                    wal_file.write_all(&bytes)?;
                    wal_file.flush()?;
                }
                Output::Journal(kind) => journal.record(kind),
                Output::Send { to, msg } => {
                    if let Some(tx) = peer_tx.get(&to.0) {
                        match tx.try_send(msg) {
                            Ok(()) | Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                            }
                        }
                    }
                }
                Output::Reply { conn, reply } => {
                    match &reply {
                        ClientReply::Acked { seq, .. } => {
                            if let Some(&(want, started)) = in_flight.get(&conn) {
                                if want == *seq {
                                    in_flight.remove(&conn);
                                    let us = u64::try_from(started.elapsed().as_micros())
                                        .unwrap_or(u64::MAX);
                                    lock_metrics(&metrics, &inbox_tx)
                                        .observe("request_latency_us", us);
                                }
                            }
                        }
                        ClientReply::Redirect { .. }
                        | ClientReply::Overloaded
                        | ClientReply::SessionStale { .. }
                        | ClientReply::Rejected { .. } => {
                            // The request resolved without committing:
                            // its timer must not bleed into a later ack.
                            in_flight.remove(&conn);
                        }
                        ClientReply::Value { .. } | ClientReply::Status { .. } => {}
                    }
                    // Clone the writer handle under the lock, write
                    // outside it: the socket write carries a deadline,
                    // and a slow client must not stall every thread
                    // that needs the map while it drains.
                    let writer = lock_clients(&clients, &inbox_tx)
                        .get(&conn)
                        .map(TcpStream::try_clone);
                    let gone = match writer {
                        Some(Ok(mut stream)) => write_frame(&mut stream, &reply).is_err(),
                        Some(Err(_)) => true,
                        None => false,
                    };
                    if gone {
                        lock_clients(&clients, &inbox_tx).remove(&conn);
                        dead_conns.push(conn);
                    }
                }
            }
        }
        for conn in dead_conns {
            // A reply we could not deliver: drop the connection's
            // remaining waiters too.
            in_flight.remove(&conn);
            let _ = engine.step(Input::ClientGone { conn });
        }
        // Refresh the scrapeable gauges once per engine step. The
        // guard's scope is exactly these registry writes (L11), and it
        // never overlaps the clients lock (L9).
        {
            let gauge = |v: usize| i64::try_from(v).unwrap_or(i64::MAX);
            let mut m = lock_metrics(&metrics, &inbox_tx);
            m.set_gauge("node.commit_index", gauge(engine.commit_len()));
            m.set_gauge("node.config_epoch", gauge(engine.config_epoch()));
            m.set_gauge("node.session_occupancy", gauge(engine.session_occupancy()));
            if let Some(stats) = &export_stats {
                let wide = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
                m.set_gauge("export.queue_depth", wide(stats.depth()));
                m.set_gauge("export.dropped_total", wide(stats.dropped()));
            }
        }
    }
    Ok(())
}

/// Supervised outbound link: dial, introduce, pump messages; on any
/// failure back off (capped exponential + seeded jitter) and redial.
fn peer_connector(my_nid: u32, addr: &str, rx: &Receiver<PeerMsg>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures: u32 = 0;
    loop {
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                failures = 0;
                let _ = stream.set_nodelay(true);
                let _ = stream.set_write_timeout(Some(WRITE_DEADLINE));
                if write_frame(&mut stream, &Hello::Peer { from: my_nid }).is_err() {
                    continue;
                }
                // Anything queued while the link was down is stale
                // (heartbeats supersede it); start fresh.
                while rx.try_recv().is_ok() {}
                loop {
                    match rx.recv() {
                        Ok(msg) => {
                            if write_frame(&mut stream, &msg).is_err() {
                                break; // dead link: redial
                            }
                        }
                        Err(_) => return, // engine gone: shut down
                    }
                }
            }
            Err(_) => {
                failures = failures.saturating_add(1);
                let exp = BACKOFF_BASE_MS.saturating_mul(1 << failures.min(6));
                let cap = exp.min(BACKOFF_CAP_MS);
                let jitter = rng.gen_range(0..=cap / 2 + 1);
                thread::sleep(Duration::from_millis(cap / 2 + jitter));
                // Drop queued messages while unreachable: the engine's
                // bounded outbox must never block on a dead peer.
                while rx.try_recv().is_ok() {}
            }
        }
    }
}

/// Journals a frame rejection if `e` is a frame-level fault. Transport
/// failures (deadline expiry, reset) pass through silently — they are
/// link deaths, not protocol violations.
fn report_frame_error(tx: &SyncSender<Event>, e: &io::Error) {
    if let Some(reason) = bad_frame_reason(e) {
        let _ = tx.send(Event::BadFrame {
            reason: reason.to_string(),
        });
    }
}

/// Handles one accepted connection: a `Hello` within the deadline, then
/// a peer pump or a client session.
///
/// A frame the wire layer rejects (bad crc, oversized length) or a
/// crc-valid frame that does not decode as the expected message type
/// (protocol-version confusion) drops the connection *and* journals a
/// `BadFrame` event — never a silent discard, so the audit can prove
/// the rejection path fired.
fn serve_connection(
    mut stream: TcpStream,
    tx: &SyncSender<Event>,
    clients: &Arc<Mutex<BTreeMap<u64, TcpStream>>>,
    next_conn: &AtomicU64,
    peer_read_deadline: Duration,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(WRITE_DEADLINE));
    let _ = stream.set_read_timeout(Some(HELLO_DEADLINE));
    let hello: Hello = match read_frame(&mut stream) {
        Ok(Some(payload)) => match decode_msg(&payload) {
            Ok(h) => h,
            Err(_) => {
                let _ = tx.send(Event::BadFrame {
                    reason: "bad-payload".to_string(),
                });
                return;
            }
        },
        Ok(None) => return,
        Err(e) => {
            report_frame_error(tx, &e);
            return;
        }
    };
    match hello {
        Hello::Peer { from: _ } => {
            let _ = stream.set_read_timeout(Some(peer_read_deadline));
            loop {
                match read_frame(&mut stream) {
                    Ok(Some(payload)) => match decode_msg::<PeerMsg>(&payload) {
                        Ok(msg) => {
                            if tx.send(Event::Peer(msg)).is_err() {
                                return;
                            }
                        }
                        Err(_) => {
                            // A crc-valid frame that is not a PeerMsg:
                            // a peer speaking another protocol version.
                            // Journal and drop the link.
                            let _ = tx.send(Event::BadFrame {
                                reason: "bad-payload".to_string(),
                            });
                            return;
                        }
                    },
                    Ok(None) => return,
                    Err(e) => {
                        report_frame_error(tx, &e);
                        return;
                    }
                }
            }
        }
        Hello::Client { client: _ } => {
            let conn = next_conn.fetch_add(1, Ordering::Relaxed);
            let Ok(writer) = stream.try_clone() else {
                return;
            };
            lock_clients(clients, tx).insert(conn, writer);
            let _ = stream.set_read_timeout(None);
            loop {
                match read_frame(&mut stream) {
                    Ok(Some(payload)) => match decode_msg::<ClientMsg>(&payload) {
                        Ok(msg) => {
                            if tx.send(Event::Client { conn, msg }).is_err() {
                                break;
                            }
                        }
                        Err(_) => {
                            // Tell the well-framed-but-unintelligible
                            // client why before hanging up on it.
                            let _ = write_frame(
                                &mut stream,
                                &crate::det::msg::ClientReply::Rejected {
                                    reason: "protocol-version mismatch: undecodable frame"
                                        .to_string(),
                                },
                            );
                            let _ = tx.send(Event::BadFrame {
                                reason: "bad-payload".to_string(),
                            });
                            break;
                        }
                    },
                    Ok(None) => break,
                    Err(e) => {
                        report_frame_error(tx, &e);
                        break;
                    }
                }
            }
            lock_clients(clients, tx).remove(&conn);
            let _ = tx.send(Event::ClientGone { conn });
        }
    }
}
