//! The retrying cluster client with exactly-once write semantics.
//!
//! A write allocates its `(client, seq)` pair **once** and reuses it on
//! every retry — across redirects, timeouts, and leader changes — so an
//! ambiguous outcome (the classic "acked but the reply was lost" case)
//! resolves to [`ClientReply::Acked`]` { duplicate: true }` instead of
//! a second application. This is the real-wire twin of the simulated
//! `nemesis` client's sessioned retry path.

use std::collections::BTreeMap;
use std::io::{self};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::det::msg::{decode_msg, ClientMsg, ClientReply, Hello};
use crate::node::{read_frame, write_frame};

/// Client-side retry tunables.
#[derive(Debug, Clone)]
pub struct ClientParams {
    /// Total attempts per operation before giving up.
    pub max_attempts: u32,
    /// Base backoff between attempts (milliseconds).
    pub backoff_base_ms: u64,
    /// Backoff cap (milliseconds).
    pub backoff_cap_ms: u64,
    /// Per-request socket timeout.
    pub request_timeout: Duration,
    /// Leader-`Redirect` hops followed per operation before the client
    /// stops trusting hints and falls back to round-robin probing.
    /// During an election two nodes can hold stale hints pointing at
    /// each other; without a cap that cycle spins the client through
    /// its whole attempt budget without ever probing the real leader.
    pub max_redirect_hops: u32,
}

impl Default for ClientParams {
    fn default() -> Self {
        ClientParams {
            max_attempts: 12,
            backoff_base_ms: 40,
            backoff_cap_ms: 1_500,
            request_timeout: Duration::from_secs(3),
            max_redirect_hops: 3,
        }
    }
}

/// Why an operation definitively failed.
#[derive(Debug)]
pub enum ClientError {
    /// All attempts exhausted without a definitive reply.
    Exhausted {
        /// Last transport error observed, if any.
        last: Option<io::Error>,
    },
    /// The cluster refused the request (e.g. a reconfiguration guard).
    Rejected {
        /// The node's reason.
        reason: String,
    },
    /// The session window no longer covers this sequence number.
    SessionStale {
        /// The server-side floor.
        floor: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { last: Some(e) } => {
                write!(f, "attempts exhausted (last transport error: {e})")
            }
            ClientError::Exhausted { last: None } => f.write_str("attempts exhausted"),
            ClientError::Rejected { reason } => write!(f, "rejected: {reason}"),
            ClientError::SessionStale { floor } => {
                write!(f, "session stale (floor {floor})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// The outcome of a successful write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Acked {
    /// The sequence number acknowledged.
    pub seq: u64,
    /// Whether the cluster deduplicated a retry (the write was already
    /// applied; this ack is the at-most-once guarantee showing itself).
    pub duplicate: bool,
    /// How many attempts the operation took.
    pub attempts: u32,
}

/// A cluster client: tracks the leader hint, retries with capped
/// backoff, and never re-allocates a sequence number mid-operation.
pub struct NetClient {
    addrs: BTreeMap<u32, String>,
    client_id: u64,
    next_seq: u64,
    leader: Option<u32>,
    conns: BTreeMap<u32, TcpStream>,
    params: ClientParams,
    rng: StdRng,
}

impl NetClient {
    /// Creates a client over the cluster's address book.
    #[must_use]
    pub fn new(addrs: BTreeMap<u32, String>, client_id: u64, params: ClientParams) -> Self {
        NetClient {
            addrs,
            client_id,
            next_seq: 1,
            leader: None,
            conns: BTreeMap::new(),
            params,
            rng: StdRng::seed_from_u64(client_id ^ 0x5e55_10f5),
        }
    }

    /// The client's id (embedded in every sessioned write).
    #[must_use]
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    fn conn(&mut self, nid: u32) -> io::Result<&mut TcpStream> {
        if !self.conns.contains_key(&nid) {
            let addr = self.addrs.get(&nid).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("unknown node {nid}"))
            })?;
            let mut stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(self.params.request_timeout))?;
            stream.set_write_timeout(Some(self.params.request_timeout))?;
            write_frame(
                &mut stream,
                &Hello::Client {
                    client: self.client_id,
                },
            )?;
            self.conns.insert(nid, stream);
        }
        Ok(self.conns.get_mut(&nid).expect("just inserted"))
    }

    /// One request/reply exchange with a specific node; drops the
    /// cached connection on any transport failure.
    ///
    /// # Errors
    ///
    /// Transport failures (connect, deadline expiry, torn frame).
    pub fn request(&mut self, nid: u32, msg: &ClientMsg) -> io::Result<ClientReply> {
        let result = (|| {
            let stream = self.conn(nid)?;
            write_frame(stream, msg)?;
            match read_frame(stream)? {
                Some(payload) => decode_msg::<ClientReply>(&payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
                None => Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                )),
            }
        })();
        if result.is_err() {
            self.conns.remove(&nid);
        }
        result
    }

    /// The node to try next: the leader hint if any, else rotate
    /// through the address book.
    fn pick_target(&mut self, attempt: u32) -> u32 {
        if let Some(l) = self.leader {
            return l;
        }
        let n = self.addrs.len().max(1);
        self.addrs
            .keys()
            .copied()
            .nth(attempt as usize % n)
            .unwrap_or_default()
    }

    /// Follows (or, past the hop cap, discards) a leader hint from a
    /// `Redirect` reply. Returns the updated hop count.
    fn follow_redirect(&mut self, leader: Option<u32>, target: u32, hops: u32) -> u32 {
        let hops = hops.saturating_add(1);
        if hops > self.params.max_redirect_hops {
            // Two nodes with stale hints can redirect at each other
            // indefinitely during an election; stop chasing hints and
            // let `pick_target` round-robin over the address book.
            self.leader = None;
        } else {
            self.leader = leader.filter(|l| *l != target);
        }
        hops
    }

    fn backoff(&mut self, attempt: u32) {
        let exp = self
            .params
            .backoff_base_ms
            .saturating_mul(1 << attempt.min(5));
        let cap = exp.min(self.params.backoff_cap_ms);
        let jitter = self.rng.gen_range(0..=cap / 2 + 1);
        thread::sleep(Duration::from_millis(cap / 2 + jitter));
    }

    /// Writes `key = value` exactly once. The sequence number is
    /// allocated here, before the first attempt, and reused verbatim on
    /// every retry.
    ///
    /// # Errors
    ///
    /// [`ClientError`] when attempts are exhausted or the cluster
    /// definitively refuses.
    pub fn put(&mut self, key: &str, value: &str) -> Result<Acked, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let msg = ClientMsg::Put {
            client: self.client_id,
            seq,
            key: key.to_string(),
            value: value.to_string(),
        };
        self.retry_write(seq, &msg)
    }

    /// Proposes a membership change exactly once (same session
    /// discipline as [`NetClient::put`]).
    ///
    /// # Errors
    ///
    /// [`ClientError`]; guard refusals surface as
    /// [`ClientError::Rejected`].
    pub fn reconfigure(&mut self, members: &[u32]) -> Result<Acked, ClientError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let msg = ClientMsg::Reconfigure {
            client: self.client_id,
            seq,
            members: members.to_vec(),
        };
        self.retry_write(seq, &msg)
    }

    fn retry_write(&mut self, seq: u64, msg: &ClientMsg) -> Result<Acked, ClientError> {
        let mut last_err: Option<io::Error> = None;
        let mut hops = 0u32;
        for attempt in 0..self.params.max_attempts {
            if attempt > 0 {
                self.backoff(attempt - 1);
            }
            let target = self.pick_target(attempt);
            match self.request(target, msg) {
                Ok(ClientReply::Acked { seq: s, duplicate }) if s == seq => {
                    return Ok(Acked {
                        seq,
                        duplicate,
                        attempts: attempt + 1,
                    });
                }
                Ok(ClientReply::Acked { .. }) => {
                    // A reply for some other request on this connection:
                    // treat as transport confusion and re-dial.
                    self.conns.remove(&target);
                }
                Ok(ClientReply::Redirect { leader }) => {
                    hops = self.follow_redirect(leader, target, hops);
                }
                Ok(ClientReply::Overloaded) => {
                    // Shed under load: back off harder, same leader.
                }
                Ok(ClientReply::SessionStale { floor }) => {
                    return Err(ClientError::SessionStale { floor });
                }
                Ok(ClientReply::Rejected { reason }) => {
                    return Err(ClientError::Rejected { reason });
                }
                Ok(ClientReply::Value { .. } | ClientReply::Status { .. }) => {
                    self.conns.remove(&target);
                }
                Err(e) => {
                    last_err = Some(e);
                    self.leader = None;
                }
            }
        }
        Err(ClientError::Exhausted { last: last_err })
    }

    /// Reads a key from the committed store (retries through redirects).
    ///
    /// # Errors
    ///
    /// [`ClientError::Exhausted`] when no leader answers in time.
    pub fn get(&mut self, key: &str) -> Result<Option<String>, ClientError> {
        let msg = ClientMsg::Get {
            key: key.to_string(),
        };
        let mut last_err: Option<io::Error> = None;
        let mut hops = 0u32;
        for attempt in 0..self.params.max_attempts {
            if attempt > 0 {
                self.backoff(attempt - 1);
            }
            let target = self.pick_target(attempt);
            match self.request(target, &msg) {
                Ok(ClientReply::Value { value, .. }) => return Ok(value),
                Ok(ClientReply::Redirect { leader }) => {
                    hops = self.follow_redirect(leader, target, hops);
                }
                Ok(_) => self.backoff(attempt),
                Err(e) => {
                    last_err = Some(e);
                    self.leader = None;
                }
            }
        }
        Err(ClientError::Exhausted { last: last_err })
    }

    /// Asks one node about itself.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn status(&mut self, nid: u32) -> io::Result<ClientReply> {
        self.request(nid, &ClientMsg::Status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A one-thread fake node: consumes the hello, then answers every
    /// client frame with `behavior(msg)` until the peer hangs up.
    fn fake_node(behavior: impl Fn(&ClientMsg) -> ClientReply + Send + 'static) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake node");
        let addr = listener.local_addr().expect("local addr").to_string();
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { return };
                if read_frame(&mut stream).ok().flatten().is_none() {
                    continue;
                }
                while let Ok(Some(payload)) = read_frame(&mut stream) {
                    let Ok(msg) = decode_msg::<ClientMsg>(&payload) else {
                        break;
                    };
                    if write_frame(&mut stream, &behavior(&msg)).is_err() {
                        break;
                    }
                }
            }
        });
        addr
    }

    fn fast_params() -> ClientParams {
        ClientParams {
            backoff_base_ms: 1,
            backoff_cap_ms: 2,
            ..ClientParams::default()
        }
    }

    #[test]
    fn a_stale_redirect_cycle_falls_back_to_round_robin_probing() {
        // Nodes 1 and 2 hold stale hints pointing at each other (the
        // post-election two-node cycle); only node 3 actually acks.
        // Without the hop cap the client ping-pongs 1 <-> 2 until its
        // attempt budget is gone and never probes node 3.
        let a1 = fake_node(|_| ClientReply::Redirect { leader: Some(2) });
        let a2 = fake_node(|_| ClientReply::Redirect { leader: Some(1) });
        let a3 = fake_node(|msg| match msg {
            ClientMsg::Put { seq, .. } => ClientReply::Acked {
                seq: *seq,
                duplicate: false,
            },
            _ => ClientReply::Rejected {
                reason: "unexpected".to_string(),
            },
        });
        let addrs = BTreeMap::from([(1, a1), (2, a2), (3, a3)]);
        let mut client = NetClient::new(addrs, 7, fast_params());
        let acked = client
            .put("k", "v")
            .expect("the hop cap must break the 1 <-> 2 redirect cycle");
        assert_eq!(acked.seq, 1);
        assert!(!acked.duplicate);
        assert!(
            acked.attempts <= ClientParams::default().max_attempts,
            "resolved within the attempt budget"
        );
    }

    #[test]
    fn reads_survive_the_same_redirect_cycle() {
        let a1 = fake_node(|_| ClientReply::Redirect { leader: Some(2) });
        let a2 = fake_node(|_| ClientReply::Redirect { leader: Some(1) });
        let a3 = fake_node(|msg| match msg {
            ClientMsg::Get { key } => ClientReply::Value {
                key: key.clone(),
                value: Some("v".to_string()),
            },
            _ => ClientReply::Rejected {
                reason: "unexpected".to_string(),
            },
        });
        let addrs = BTreeMap::from([(1, a1), (2, a2), (3, a3)]);
        let mut client = NetClient::new(addrs, 8, fast_params());
        let value = client.get("k").expect("read resolves past the cycle");
        assert_eq!(value.as_deref(), Some("v"));
    }

    #[test]
    fn without_a_leader_hint_targets_rotate_through_the_address_book() {
        let addrs: BTreeMap<u32, String> = [1, 2, 5]
            .into_iter()
            .map(|nid| (nid, String::new()))
            .collect();
        let mut client = NetClient::new(addrs, 1, ClientParams::default());
        let order: Vec<u32> = (0..4).map(|a| client.pick_target(a)).collect();
        assert_eq!(order, vec![1, 2, 5, 1]);
    }
}
