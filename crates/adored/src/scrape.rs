//! The `/metrics` scrape endpoint: read-only Prometheus text over TCP.
//!
//! The *only* layer of the runtime where a wall clock and ad-hoc
//! socket I/O are acceptable: scraping observes, it never participates.
//! The endpoint snapshots the shared metrics registry under a short
//! lock, renders outside it with [`adore_obs::render_prometheus`]
//! (pure, byte-pinned), and answers any request on the socket with one
//! exposition — there is exactly one resource, so the request line is
//! read for politeness and otherwise ignored.
//!
//! Each served scrape is reported into the node's event loop
//! (non-blocking `try_send`), which journals a `MetricsScrape` event —
//! the journal keeps its single writer, and scrapes stay auditable.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use adore_obs::{render_prometheus, series_count, Metrics};

use crate::node::{lock_metrics, Event};

/// Per-request socket deadline: a stalled scraper is dropped, not
/// waited on.
const SCRAPE_DEADLINE: Duration = Duration::from_secs(2);

/// Binds the scrape listener and serves expositions until the process
/// exits. Returns the bound address. Crate-internal: the endpoint
/// reports into the node's private event loop, so only [`crate::node`]
/// can wire it up.
///
/// # Errors
///
/// Socket bind failure.
pub(crate) fn serve(
    addr: &str,
    metrics: Arc<Mutex<Metrics>>,
    tx: SyncSender<Event>,
) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let _ = stream.set_read_timeout(Some(SCRAPE_DEADLINE));
            let _ = stream.set_write_timeout(Some(SCRAPE_DEADLINE));
            // One resource: read (and discard) the request line, then
            // answer with the exposition.
            let mut req = [0u8; 1024];
            let _ = stream.read(&mut req);
            let snap = {
                let m = lock_metrics(&metrics, &tx);
                m.snapshot()
            };
            let body = render_prometheus(&snap);
            let head = format!(
                "HTTP/1.1 200 OK\r\ncontent-type: text/plain; version=0.0.4; charset=utf-8\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
                body.len()
            );
            let ok = stream
                .write_all(head.as_bytes())
                .and_then(|()| stream.write_all(body.as_bytes()))
                .is_ok();
            if ok {
                // Report the served scrape for journaling; a full
                // inbox drops the report, never blocks the endpoint.
                let _ = tx.try_send(Event::Scraped {
                    series: series_count(&snap),
                });
            }
        }
    });
    Ok(local)
}
