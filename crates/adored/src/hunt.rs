//! `adored hunt` — the netmesis campaign driver.
//!
//! Compiles nemesis [`FaultSchedule`]s into [`WireTimeline`]s and
//! enacts them against a *real* cluster: every peer link runs through a
//! fault-injecting proxy ([`adored::proxy`]), process faults land as
//! real signals (`SIGKILL`, `SIGSTOP`/`SIGCONT`), and an availability
//! monitor ([`adored::monitor`]) drives sessioned writes whose acks
//! become audit obligations. After each run the driver merges every
//! journal (nodes, monitor, its own) and audits the trace with
//! `adore-obs`: zero acked-write loss, zero duplicate applies,
//! committed-prefix agreement.
//!
//! Three modes:
//!
//! - `--seeds N` (default): the 25-seed campaign of
//!   [`netmesis_schedule`]s — partitions, gray pauses, corruption,
//!   resets, each overlapping a live 5→3→5 reconfiguration walk.
//! - `--gate`: the fixed 3-node [`gate_schedule`], bounded for CI.
//! - `--ablate r1`: boots the cluster with `--ablate-guard r1`, aims
//!   the canonical R1⁺-ablation schedule at the live leader, expects
//!   the audit to catch the divergence, and persists a replayable
//!   [`NetCounterexample`] with a sim-twin ddmin minimization.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::{Duration, Instant};

use adore_nemesis::{
    compile_schedule, gate_schedule, netmesis_schedule, r1_ablation_schedule, swap_labels,
    FaultSchedule, NetCounterexample, WireAction, WireTimeline,
};
use adore_obs::{audit_events, merge_journals, to_jsonl, EventKind, TraceEvent, Tracer};
use adored::client::{ClientError, ClientParams, NetClient};
use adored::collect::OnlineCollector;
use adored::export::ExportQueue;
use adored::monitor::{self, MonitorConfig, MonitorReport};
use adored::proxy::{LinkTally, ProxyNet};

use crate::{
    arg_flag, arg_u64, arg_value, duplicate_applies, now_us, pick_ports, rebuild_logs, Harness,
};

/// Peer read deadline handed to every hunted node: long enough that a
/// sub-second gray pause resumes on the same sockets.
const HUNT_PEER_DEADLINE_MS: u64 = 120_000;
/// Budget for waiting out a live election (`AwaitElection`).
const ELECTION_WAIT: Duration = Duration::from_secs(12);
/// Budget for driving one reconfiguration through transient refusals.
const RECONFIG_WAIT: Duration = Duration::from_secs(25);

pub(crate) fn cmd_hunt(args: &[String]) -> i32 {
    let gate = arg_flag(args, "--gate");
    let ablate = arg_value(args, "--ablate");
    let seeds = arg_u64(args, "--seeds", 25);
    let base = arg_u64(args, "--seed", 0);
    let dir = arg_value(args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("target/hunt-{}", std::process::id())));
    // The CI gate keeps its report beside its journals so it never
    // clobbers the full campaign's results/BENCH_netmesis.json.
    let out = arg_value(args, "--out").map(PathBuf::from).unwrap_or_else(|| {
        if gate {
            dir.join("gate_report.json")
        } else {
            PathBuf::from("results/BENCH_netmesis.json")
        }
    });

    if let Some(cond) = ablate {
        return match hunt_ablated(&cond, &dir) {
            Ok(artifact) => {
                println!("hunt: counterexample artifact at {}", artifact.display());
                0
            }
            Err(e) => {
                eprintln!("hunt --ablate {cond}: FAIL: {e}");
                1
            }
        };
    }

    let schedules: Vec<FaultSchedule> = if gate {
        vec![gate_schedule()]
    } else {
        (0..seeds).map(|i| netmesis_schedule(base + i)).collect()
    };
    match campaign(&schedules, &dir, &out) {
        Ok(()) => {
            println!("hunt: PASS");
            0
        }
        Err(e) => {
            eprintln!("hunt: FAIL: {e}");
            1
        }
    }
}

// ---- campaign orchestration ---------------------------------------------

/// Per-seed results serialized into `results/BENCH_netmesis.json`.
#[derive(serde::Serialize)]
struct SeedResult {
    name: String,
    seed: u64,
    pass: bool,
    violation: Option<String>,
    attempted: u64,
    acked: u64,
    refused: u64,
    lost: u64,
    crc_rejections: u64,
    proxy_forwarded: u64,
    proxy_corrupted: u64,
    proxy_dropped: u64,
    proxy_resets: u64,
    audit_events: usize,
    /// The live collector's verdict, raised while the run was still
    /// going (vs. the batch audit after the fact).
    online_certified: bool,
    online_events: usize,
    /// Export-channel events shed under backpressure, all accounted by
    /// `TraceDropped` markers in the online stream.
    trace_dropped: u64,
    elapsed_ms: u64,
}

#[derive(serde::Serialize)]
struct CampaignReport {
    name: &'static str,
    seeds: Vec<SeedResult>,
    passed: usize,
    failed: usize,
    crc_rejections_total: u64,
}

fn campaign(schedules: &[FaultSchedule], dir: &Path, out: &Path) -> Result<(), String> {
    let mut results = Vec::new();
    for schedule in schedules {
        let seed_dir = dir.join(&schedule.name);
        let started = Instant::now();
        println!(
            "hunt: {} ({} faults, {} members)...",
            schedule.name,
            schedule.faults.len(),
            schedule.members.len()
        );
        let outcome = run_live(schedule, &seed_dir, &[]);
        let result = seal_result(schedule, outcome, started, &seed_dir)?;
        println!(
            "hunt: {} -> {} ({} acked, {} refused, {} lost, {} crc rejections, {}ms)",
            result.name,
            if result.pass { "SAFE" } else { "VIOLATION" },
            result.acked,
            result.refused,
            result.lost,
            result.crc_rejections,
            result.elapsed_ms
        );
        results.push(result);
    }
    let passed = results.iter().filter(|r| r.pass).count();
    let failed = results.len() - passed;
    let crc_total: u64 = results.iter().map(|r| r.crc_rejections).sum();
    let report = CampaignReport {
        name: "BENCH_netmesis",
        seeds: results,
        passed,
        failed,
        crc_rejections_total: crc_total,
    };
    adore_obs::write_json_report(out, &report).map_err(|e| e.to_string())?;
    println!(
        "hunt: {passed}/{} seeds safe, {crc_total} crc rejections -> {}",
        passed + failed,
        out.display()
    );
    if failed > 0 {
        return Err(format!("{failed} seed(s) violated safety"));
    }
    if crc_total == 0 {
        return Err("no crc rejection observed: the corruption path never fired".to_string());
    }
    Ok(())
}

/// Finalizes one seed: computes pass/fail, persists a counterexample
/// artifact on failure.
fn seal_result(
    schedule: &FaultSchedule,
    outcome: Result<LiveOutcome, String>,
    started: Instant,
    seed_dir: &Path,
) -> Result<SeedResult, String> {
    let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    match outcome {
        Ok(live) => {
            let pass = live.violation.is_none();
            if let Some(violation) = &live.violation {
                let artifact = persist_counterexample(schedule, violation, &live.journal, seed_dir)?;
                eprintln!("hunt: counterexample artifact at {}", artifact.display());
            }
            Ok(SeedResult {
                name: schedule.name.clone(),
                seed: schedule.seed,
                pass,
                violation: live.violation,
                attempted: live.monitor.attempted,
                acked: live.monitor.acked.len() as u64,
                refused: live.monitor.refused,
                lost: live.monitor.lost,
                crc_rejections: live.crc_rejections,
                proxy_forwarded: live.proxy.forwarded,
                proxy_corrupted: live.proxy.corrupted,
                proxy_dropped: live.proxy.dropped,
                proxy_resets: live.proxy.resets,
                audit_events: live.audit_events,
                online_certified: live.online_certified,
                online_events: live.online_events,
                trace_dropped: live.trace_dropped,
                elapsed_ms,
            })
        }
        Err(e) => Err(format!("{}: harness error: {e}", schedule.name)),
    }
}

/// Runs the sim twin of a failing schedule and persists the replayable
/// counterexample artifact.
fn persist_counterexample(
    schedule: &FaultSchedule,
    violation: &str,
    journal: &str,
    seed_dir: &Path,
) -> Result<PathBuf, String> {
    // The sim twin: replay the same canonical schedule in the
    // simulator; when it reproduces a violation, ddmin-minimize it.
    let sim_twin = adore_nemesis::hunt(schedule, &adore_nemesis::EngineParams::default());
    let ce = NetCounterexample {
        schedule: schedule.clone(),
        violation: violation.to_string(),
        journal: journal.to_string(),
        sim_twin,
    };
    let path = seed_dir.join("counterexample.json");
    adore_obs::write_json_report(&path, &ce).map_err(|e| e.to_string())?;
    Ok(path)
}

// ---- the ablated hunt ----------------------------------------------------

/// Boots a guard-ablated cluster, aims the canonical ablation schedule
/// at the live leader, and demands that the audit catch the resulting
/// divergence. Returns the artifact path.
fn hunt_ablated(cond: &str, dir: &Path) -> Result<PathBuf, String> {
    if cond != "r1" {
        return Err(format!("only --ablate r1 is supported (got {cond:?})"));
    }
    let canonical = r1_ablation_schedule();
    let seed_dir = dir.join("ablate-r1");
    let live = run_live(
        &canonical,
        &seed_dir,
        &["--ablate-guard".to_string(), "r1".to_string()],
    )?;
    let Some(violation) = live.violation else {
        return Err(
            "the guard-ablated run stayed safe: the harness failed to reproduce the R1+ bug"
                .to_string(),
        );
    };
    println!("hunt: ablated run violated as expected: {violation}");
    let artifact = persist_counterexample(&canonical, &violation, &live.journal, &seed_dir)?;
    // The artifact is only replayable if the sim twin reproduced (and
    // minimized) the divergence from the same canonical schedule.
    let text = fs::read_to_string(&artifact).map_err(|e| e.to_string())?;
    let parsed: NetCounterexample = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let Some(twin) = parsed.sim_twin else {
        return Err("sim twin did not reproduce the violation; artifact is not minimized".into());
    };
    println!(
        "hunt: sim twin minimized {} faults down to {}",
        parsed.schedule.faults.len(),
        twin.schedule.faults.len()
    );
    Ok(artifact)
}

// ---- one live run --------------------------------------------------------

struct LiveOutcome {
    /// None when the run was safe; a description otherwise.
    violation: Option<String>,
    monitor: MonitorReport,
    proxy: LinkTally,
    /// `BadFrame { reason: "corrupt" }` events across all journals.
    crc_rejections: u64,
    audit_events: usize,
    /// The online collector certified the run (live T1–T7 verdict).
    online_certified: bool,
    online_events: usize,
    /// Exporter-shed events, accounted by `TraceDropped` markers.
    trace_dropped: u64,
    /// The merged JSONL journal.
    journal: String,
}

/// The driver's journal, written twice at once: into the batch tracer
/// (merged and audited after the run) and onto the collector's live
/// stream. One record call, two sinks, no divergence between them.
struct DriverLog {
    tracer: Tracer,
    tee: ExportQueue,
}

impl DriverLog {
    fn record(&mut self, at_us: u64, kind: EventKind) {
        self.tee.push(&TraceEvent::root(at_us, kind.clone()));
        self.tracer.record(at_us, kind);
    }

    fn to_jsonl(&self) -> String {
        self.tracer.to_jsonl()
    }
}

/// Boots a proxied cluster, enacts the schedule's wire timeline under
/// an availability monitor, quiesces, merges journals, audits.
#[allow(clippy::too_many_lines)]
fn run_live(
    canonical: &FaultSchedule,
    seed_dir: &Path,
    extra_node_args: &[String],
) -> Result<LiveOutcome, String> {
    fs::create_dir_all(seed_dir).map_err(|e| e.to_string())?;
    let nodes = canonical.members.len();
    let ports = pick_ports(nodes).map_err(|e| e.to_string())?;
    let addrs: BTreeMap<u32, String> = canonical
        .members
        .iter()
        .zip(&ports)
        .map(|(&n, p)| (n, format!("127.0.0.1:{p}")))
        .collect();
    let proxy = ProxyNet::new(&addrs, canonical.seed).map_err(|e| e.to_string())?;
    let node_peers: BTreeMap<u32, String> = addrs
        .keys()
        .map(|&n| (n, proxy.peers_spec_for(n)))
        .collect();
    let mut extra = vec![
        "--peer-deadline-ms".to_string(),
        HUNT_PEER_DEADLINE_MS.to_string(),
    ];
    extra.extend(extra_node_args.iter().cloned());
    let mut harness = Harness::start_with(seed_dir, addrs.clone(), node_peers, canonical.seed, extra)
        .map_err(|e| e.to_string())?;

    // The online plane: one live stream per node's export channel
    // (readers redial across restarts), plus local streams for the
    // driver's and the monitor's own journals.
    let (collector, mut locals) =
        OnlineCollector::attach(&harness.export_addrs(), &[90, 91]);
    let monitor_tee = locals.pop();
    let driver_tee = locals
        .pop()
        .ok_or("collector returned no driver stream")?;

    let mut probe = harness.client(999);
    let first_leader = harness.wait_for_leader(&mut probe)?;

    // Aim the canonical schedule at the live topology: relabel so the
    // canonical "node 1" (the member the schedule assumes leads first)
    // is whichever node actually won the election. The *canonical*
    // schedule is what gets persisted and sim-replayed.
    let enacted = if first_leader == 1 {
        canonical.clone()
    } else {
        swap_labels(canonical, 1, first_leader)
    };
    let timeline = compile_schedule(&enacted);

    let mut driver = DriverLog {
        tracer: Tracer::enabled(),
        tee: driver_tee,
    };
    driver.record(
        now_us(),
        EventKind::RunStart {
            name: enacted.name.clone(),
            members: enacted.members.clone(),
        },
    );

    let boot_us = now_us();
    let mon = monitor::start(
        addrs.clone(),
        seed_dir,
        boot_us,
        MonitorConfig::default(),
        monitor_tee,
    )
    .map_err(|e| e.to_string())?;

    let mut client = NetClient::new(
        addrs.clone(),
        77,
        ClientParams {
            max_attempts: 6,
            backoff_base_ms: 20,
            backoff_cap_ms: 300,
            request_timeout: Duration::from_millis(1_500),
            max_redirect_hops: 3,
        },
    );

    let walk = enact_timeline(
        &timeline,
        &enacted,
        &proxy,
        &mut harness,
        &mut probe,
        &mut client,
        &mut driver,
    );

    // Quiesce: heal everything, resume and restart everyone, let the
    // cluster converge, then stop the monitor and the cluster.
    let ever_killed = walk.kill_count > 0;
    proxy.heal_all();
    driver.record(now_us(), EventKind::Heal);
    for nid in walk.paused {
        harness.resume(nid);
    }
    for nid in walk.killed {
        let _ = harness.spawn(nid);
    }
    thread::sleep(Duration::from_millis(1_500));
    let _ = harness.wait_for_leader(&mut probe);
    thread::sleep(Duration::from_millis(800));
    let monitor_report = mon.stop();
    thread::sleep(Duration::from_millis(400));

    let texts = harness.journal_texts().map_err(|e| e.to_string())?;
    let proxy_totals = proxy.totals();
    drop(probe);
    drop(harness);
    proxy.stop();

    // The monitor journaled into the seed dir root.
    let monitor_text = fs::read_to_string(seed_dir.join(format!("journal-{boot_us}.jsonl")))
        .unwrap_or_default();

    // Forensics pass over node journals, then the driver's verdict.
    let node_events =
        merge_journals(texts.iter().map(String::as_str)).map_err(|e| e.to_string())?;
    let dupes = duplicate_applies(&rebuild_logs(&node_events));
    let mut problems: Vec<String> = Vec::new();
    if let Some(err) = walk.error {
        problems.push(err);
    }
    problems.extend(dupes);
    driver.record(
        now_us(),
        EventKind::Verdict {
            safe: problems.is_empty(),
            kind: (!problems.is_empty()).then(|| "NetmesisViolation".to_string()),
            detail: (!problems.is_empty()).then(|| problems.join("; ")),
            phase: 0,
        },
    );
    driver.record(
        now_us(),
        EventKind::RunEnd {
            committed: monitor_report.acked.len() as u64,
        },
    );

    let driver_text = driver.to_jsonl();
    // Close the driver's live stream, then the whole collector: the
    // monitor's stream already closed when `mon.stop()` joined it.
    drop(driver);
    let online = collector.stop();

    let mut all_texts: Vec<&str> = texts.iter().map(String::as_str).collect();
    all_texts.push(monitor_text.as_str());
    all_texts.push(driver_text.as_str());
    let events = merge_journals(all_texts).map_err(|e| e.to_string())?;
    let journal = to_jsonl(&events);
    fs::write(seed_dir.join("merged.jsonl"), &journal).map_err(|e| e.to_string())?;

    let report = audit_events(&events);
    let crc_rejections = count_crc_rejections(&events);
    if !report.consistent {
        problems.push(format!(
            "audit rejected the run: errors={:?} divergence={:?}",
            report.errors, report.divergence
        ));
    }
    // Online ≡ batch: with no kills and nothing shed, the collector
    // saw the complete trace and the two verdicts must agree. (A
    // SIGKILL can eat a node's last unpumped export frames — frames
    // the flushed journal file still has — so kills relax the check.)
    if !ever_killed && online.dropped == 0 && online.report.consistent != report.consistent {
        problems.push(format!(
            "online/batch audit verdict mismatch: online={} batch={}",
            online.report.consistent, report.consistent
        ));
    }
    println!(
        "hunt: online audit {} over {} events ({} trace-dropped)",
        if online.report.consistent { "CERTIFIED" } else { "REJECTED" },
        online.report.events,
        online.dropped
    );
    Ok(LiveOutcome {
        violation: (!problems.is_empty()).then(|| problems.join("; ")),
        monitor: monitor_report,
        proxy: proxy_totals,
        crc_rejections,
        audit_events: report.events,
        online_certified: online.report.consistent,
        online_events: online.report.events,
        trace_dropped: online.dropped,
        journal,
    })
}

fn count_crc_rejections(events: &[TraceEvent]) -> u64 {
    events
        .iter()
        .filter(|ev| matches!(&ev.kind, EventKind::BadFrame { reason, .. } if reason == "corrupt"))
        .count() as u64
}

// ---- timeline enactment --------------------------------------------------

struct WalkState {
    paused: BTreeSet<u32>,
    killed: BTreeSet<u32>,
    /// Kills enacted over the whole walk (including nodes restarted
    /// later). A SIGKILL can eat a node's last unpumped export frames,
    /// so the strict online ≡ batch comparison only applies when this
    /// stays zero.
    kill_count: u64,
    /// First hard failure during the walk (a reconfiguration or burst
    /// that could not complete even through retries), if any.
    error: Option<String>,
}

/// Walks the compiled timeline against the live cluster. Soft faults
/// (an exhausted burst write) are availability costs, not errors; a
/// reconfiguration that cannot complete is an error because the rest of
/// the schedule depends on it.
fn enact_timeline(
    timeline: &WireTimeline,
    schedule: &FaultSchedule,
    proxy: &ProxyNet,
    harness: &mut Harness,
    probe: &mut NetClient,
    client: &mut NetClient,
    driver: &mut DriverLog,
) -> WalkState {
    let started = Instant::now();
    let mut walk = WalkState {
        paused: BTreeSet::new(),
        killed: BTreeSet::new(),
        kill_count: 0,
        error: None,
    };
    let mut members: Vec<u32> = schedule.members.clone();
    let mut burst_no: u64 = 0;
    for step in &timeline.steps {
        let target = Duration::from_millis(step.at_ms);
        let elapsed = started.elapsed();
        if target > elapsed {
            thread::sleep(target - elapsed);
        }
        if let Ok(fault_json) = serde_json::to_string(&step.action) {
            driver.record(now_us(), EventKind::FaultInject { fault: fault_json });
        }
        match &step.action {
            WireAction::Cut { from, to } => proxy.cut_one_way(*from, *to),
            WireAction::Heal { from, to } => proxy.heal_one_way(*from, *to),
            WireAction::Partition { groups } => {
                proxy.heal_all();
                proxy.partition(groups);
            }
            WireAction::HealAll => {
                proxy.heal_all();
                driver.record(now_us(), EventKind::Heal);
            }
            WireAction::Loss { from, to, pct } => proxy.set_loss(*from, *to, *pct),
            WireAction::Corrupt { from, to, pct } => proxy.set_corrupt(*from, *to, *pct),
            WireAction::Delay {
                from,
                to,
                ms,
                jitter_ms,
            } => proxy.set_delay(*from, *to, *ms, *jitter_ms),
            WireAction::Reorder { from, to, pct } => proxy.set_reorder(*from, *to, *pct),
            WireAction::Slow { from, to } => proxy.set_slow(*from, *to, true),
            WireAction::Reset { from, to } => proxy.reset(*from, *to),
            WireAction::Kill { nid } => {
                harness.kill(*nid);
                walk.killed.insert(*nid);
                walk.kill_count += 1;
            }
            WireAction::KillLeader => {
                if let Ok(leader) = harness.wait_for_leader(probe) {
                    harness.kill(leader);
                    walk.killed.insert(leader);
                    walk.kill_count += 1;
                }
            }
            WireAction::Restart { nid } => {
                if harness.spawn(*nid).is_ok() {
                    walk.killed.remove(nid);
                }
            }
            WireAction::Pause { nid } => {
                if harness.pause(*nid) {
                    walk.paused.insert(*nid);
                }
            }
            WireAction::Resume { nid } => {
                if harness.resume(*nid) {
                    walk.paused.remove(nid);
                }
            }
            WireAction::Reconfig { members: target } => {
                reconfig(client, target, &mut walk);
                members = target.clone();
            }
            WireAction::ReconfigAdd { nid } => {
                if !members.contains(nid) {
                    members.push(*nid);
                    members.sort_unstable();
                }
                let target = members.clone();
                reconfig(client, &target, &mut walk);
            }
            WireAction::ReconfigRemove { nid } => {
                members.retain(|n| n != nid);
                let target = members.clone();
                reconfig(client, &target, &mut walk);
            }
            WireAction::AwaitElection => await_election(harness, probe),
            WireAction::Burst { writes } => {
                for _ in 0..*writes {
                    burst_no += 1;
                    let key = format!("hb-{}-{burst_no}", schedule.seed);
                    // An exhausted or refused write under active
                    // faults is an availability cost, not a safety
                    // problem: nothing was acked, nothing is owed.
                    if let Ok(acked) = client.put(&key, &format!("hv{burst_no}")) {
                        driver.record(
                            now_us(),
                            EventKind::SessionAck {
                                client: client.client_id(),
                                seq: acked.seq,
                                dup: acked.duplicate,
                            },
                        );
                    }
                }
            }
            WireAction::Settle { ms } => thread::sleep(Duration::from_millis(*ms)),
        }
    }
    walk
}

/// Drives one membership change through transient refusals and
/// fault-window timeouts. Failure is recorded on the walk (the
/// schedule's later steps assume the change happened).
fn reconfig(client: &mut NetClient, target: &[u32], walk: &mut WalkState) {
    let deadline = Instant::now() + RECONFIG_WAIT;
    loop {
        match client.reconfigure(target) {
            Ok(_) => return,
            Err(ClientError::Rejected { .. } | ClientError::Exhausted { .. })
                if Instant::now() < deadline =>
            {
                thread::sleep(Duration::from_millis(250));
            }
            Err(e) => {
                if walk.error.is_none() {
                    walk.error = Some(format!("reconfigure to {target:?} failed: {e}"));
                }
                return;
            }
        }
    }
}

/// Waits for a leader at a term strictly above the highest term
/// currently visible (a *new* election), up to the election budget.
/// Elections on the wire happen through real timeouts; this only
/// observes them.
fn await_election(harness: &Harness, probe: &mut NetClient) {
    let floor = max_term(harness, probe);
    let deadline = Instant::now() + ELECTION_WAIT;
    while Instant::now() < deadline {
        for &nid in &harness.node_ids() {
            if let Ok(adored::det::msg::ClientReply::Status { role, term, .. }) = probe.status(nid)
            {
                if role == "leader" && term > floor {
                    return;
                }
            }
        }
        thread::sleep(Duration::from_millis(150));
    }
}

fn max_term(harness: &Harness, probe: &mut NetClient) -> u64 {
    let mut max = 0;
    for &nid in &harness.node_ids() {
        if let Ok(adored::det::msg::ClientReply::Status { term, .. }) = probe.status(nid) {
            max = max.max(term);
        }
    }
    max
}
