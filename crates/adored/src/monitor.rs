//! The availability monitor: a steady client workload whose every
//! acknowledgement becomes an auditable obligation.
//!
//! While a netmesis campaign walks its fault timeline, one monitor
//! thread drives unique-key writes through the ordinary [`NetClient`]
//! retry path and buckets outcomes into fixed wall-clock windows:
//!
//! - **acked** — the cluster acknowledged the write. The monitor
//!   journals a `SessionAck` event, which the auditor's T7 check later
//!   requires to appear in some replica's committed prefix (zero
//!   acked-write loss) and at most once per replica (zero duplicate
//!   applies).
//! - **refused** — a definitive refusal (guard rejection, session
//!   staleness). Refusals are the *correct* behaviour under partition:
//!   they cost availability, never safety.
//! - **lost** — the client exhausted its attempts with no definitive
//!   reply. The op's fate is unknown; nothing is claimed about it, so
//!   it cannot create an audit obligation.
//!
//! Each completed window is journaled as an `AvailabilityWindow` event,
//! so the merged journal tells the whole availability story alongside
//! the safety story.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use adore_obs::EventKind;
use serde::Serialize;

use crate::client::{ClientError, ClientParams, NetClient};
use crate::node::Journal;

/// One completed availability window.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct WindowStat {
    /// Window index since the monitor started.
    pub index: u32,
    /// Writes attempted in the window.
    pub attempted: u32,
    /// Writes acknowledged.
    pub acked: u32,
    /// Writes definitively refused.
    pub refused: u32,
    /// Writes whose outcome the client never learned.
    pub lost: u32,
}

/// A write the cluster acknowledged (and therefore owes the audit).
#[derive(Debug, Clone, Serialize)]
pub struct AckedWrite {
    /// The unique key written.
    pub key: String,
    /// The value written.
    pub value: String,
    /// The session sequence number acknowledged.
    pub seq: u64,
    /// Whether the ack was a dedup of a retried write.
    pub duplicate: bool,
}

/// What the monitor observed over its whole run.
#[derive(Debug, Serialize)]
pub struct MonitorReport {
    /// Per-window availability stats.
    pub windows: Vec<WindowStat>,
    /// Every acknowledged write.
    pub acked: Vec<AckedWrite>,
    /// Total writes attempted.
    pub attempted: u64,
    /// Total writes refused.
    pub refused: u64,
    /// Total writes with unknown outcome.
    pub lost: u64,
}

/// A running monitor; [`MonitorHandle::stop`] joins it and returns the
/// report.
pub struct MonitorHandle {
    stop: Arc<AtomicBool>,
    join: JoinHandle<MonitorReport>,
}

impl MonitorHandle {
    /// Signals the monitor to finish its current op and joins it.
    #[must_use]
    pub fn stop(self) -> MonitorReport {
        self.stop.store(true, Ordering::SeqCst);
        self.join.join().unwrap_or(MonitorReport {
            windows: Vec::new(),
            acked: Vec::new(),
            attempted: 0,
            refused: 0,
            lost: 0,
        })
    }
}

/// Monitor tunables.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// The session client id (must be unique in the campaign).
    pub client_id: u64,
    /// Window length, milliseconds.
    pub window_ms: u64,
    /// Pause between ops, milliseconds.
    pub op_gap_ms: u64,
    /// Client retry tunables.
    pub params: ClientParams,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            client_id: 0xA11B,
            window_ms: 1_000,
            op_gap_ms: 50,
            params: ClientParams {
                max_attempts: 8,
                backoff_base_ms: 20,
                backoff_cap_ms: 400,
                request_timeout: Duration::from_millis(1_500),
                max_redirect_hops: 3,
            },
        }
    }
}

/// Starts the monitor against the cluster's (un-proxied) address book,
/// journaling into `dir`.
///
/// # Errors
///
/// Journal creation failures.
pub fn start(
    addrs: BTreeMap<u32, String>,
    dir: &Path,
    boot_us: u64,
    cfg: MonitorConfig,
) -> io::Result<MonitorHandle> {
    let mut journal = Journal::open(dir, boot_us)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = thread::spawn(move || {
        let mut client = NetClient::new(addrs, cfg.client_id, cfg.params.clone());
        let started = Instant::now();
        let window = Duration::from_millis(cfg.window_ms.max(1));
        let mut report = MonitorReport {
            windows: Vec::new(),
            acked: Vec::new(),
            attempted: 0,
            refused: 0,
            lost: 0,
        };
        let mut cur = WindowStat {
            index: 0,
            attempted: 0,
            acked: 0,
            refused: 0,
            lost: 0,
        };
        let mut op: u64 = 0;
        loop {
            // Roll windows forward to wherever the clock is now (an op
            // stalled in retries can span several windows).
            #[allow(clippy::cast_possible_truncation)]
            let now_index =
                (started.elapsed().as_millis() / window.as_millis().max(1)) as u32;
            while cur.index < now_index {
                journal.record(EventKind::AvailabilityWindow {
                    index: cur.index,
                    attempted: cur.attempted,
                    acked: cur.acked,
                    refused: cur.refused,
                    lost: cur.lost,
                });
                report.windows.push(cur);
                cur = WindowStat {
                    index: cur.index + 1,
                    attempted: 0,
                    acked: 0,
                    refused: 0,
                    lost: 0,
                };
            }
            if stop_flag.load(Ordering::SeqCst) {
                break;
            }
            op += 1;
            let key = format!("mon-{}-{op}", cfg.client_id);
            let value = format!("v{op}");
            cur.attempted += 1;
            report.attempted += 1;
            match client.put(&key, &value) {
                Ok(acked) => {
                    cur.acked += 1;
                    journal.record(EventKind::SessionAck {
                        client: cfg.client_id,
                        seq: acked.seq,
                        dup: acked.duplicate,
                    });
                    report.acked.push(AckedWrite {
                        key,
                        value,
                        seq: acked.seq,
                        duplicate: acked.duplicate,
                    });
                }
                Err(ClientError::Rejected { .. } | ClientError::SessionStale { .. }) => {
                    cur.refused += 1;
                    report.refused += 1;
                }
                Err(ClientError::Exhausted { .. }) => {
                    cur.lost += 1;
                    report.lost += 1;
                }
            }
            thread::sleep(Duration::from_millis(cfg.op_gap_ms));
        }
        // Flush the final, partial window.
        journal.record(EventKind::AvailabilityWindow {
            index: cur.index,
            attempted: cur.attempted,
            acked: cur.acked,
            refused: cur.refused,
            lost: cur.lost,
        });
        report.windows.push(cur);
        report
    });
    Ok(MonitorHandle { stop, join })
}
