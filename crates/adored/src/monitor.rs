//! The availability monitor: a steady client workload whose every
//! acknowledgement becomes an auditable obligation.
//!
//! While a netmesis campaign walks its fault timeline, one monitor
//! thread drives unique-key writes through the ordinary [`NetClient`]
//! retry path and buckets outcomes into fixed wall-clock windows:
//!
//! - **acked** — the cluster acknowledged the write. The monitor
//!   journals a `SessionAck` event, which the auditor's T7 check later
//!   requires to appear in some replica's committed prefix (zero
//!   acked-write loss) and at most once per replica (zero duplicate
//!   applies).
//! - **refused** — a definitive refusal (guard rejection, session
//!   staleness). Refusals are the *correct* behaviour under partition:
//!   they cost availability, never safety.
//! - **lost** — the client exhausted its attempts with no definitive
//!   reply. The op's fate is unknown; nothing is claimed about it, so
//!   it cannot create an audit obligation.
//!
//! Each completed window is journaled as an `AvailabilityWindow` event,
//! so the merged journal tells the whole availability story alongside
//! the safety story.
//!
//! All counting flows through one metrics registry — the same registry
//! type the nodes scrape — and the per-window stats are *derived* from
//! counter deltas at each window roll, which also sets the live
//! `monitor.acked_per_s` gauge. One number pipeline: the gauge, the
//! windows, and the report totals cannot disagree.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use adore_obs::{EventKind, Metrics, MetricsSnapshot};
use serde::Serialize;

use crate::client::{ClientError, ClientParams, NetClient};
use crate::export::ExportQueue;
use crate::node::Journal;

/// One completed availability window.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct WindowStat {
    /// Window index since the monitor started.
    pub index: u32,
    /// Writes attempted in the window.
    pub attempted: u32,
    /// Writes acknowledged.
    pub acked: u32,
    /// Writes definitively refused.
    pub refused: u32,
    /// Writes whose outcome the client never learned.
    pub lost: u32,
}

/// A write the cluster acknowledged (and therefore owes the audit).
#[derive(Debug, Clone, Serialize)]
pub struct AckedWrite {
    /// The unique key written.
    pub key: String,
    /// The value written.
    pub value: String,
    /// The session sequence number acknowledged.
    pub seq: u64,
    /// Whether the ack was a dedup of a retried write.
    pub duplicate: bool,
}

/// What the monitor observed over its whole run.
#[derive(Debug, Serialize)]
pub struct MonitorReport {
    /// Per-window availability stats.
    pub windows: Vec<WindowStat>,
    /// Every acknowledged write.
    pub acked: Vec<AckedWrite>,
    /// Total writes attempted.
    pub attempted: u64,
    /// Total writes refused.
    pub refused: u64,
    /// Total writes with unknown outcome.
    pub lost: u64,
    /// The final registry snapshot: the `monitor.*` counters the
    /// windows were derived from, plus the last `monitor.acked_per_s`
    /// gauge value.
    pub metrics: MetricsSnapshot,
}

/// A running monitor; [`MonitorHandle::stop`] joins it and returns the
/// report.
pub struct MonitorHandle {
    stop: Arc<AtomicBool>,
    metrics: Arc<Mutex<Metrics>>,
    join: JoinHandle<MonitorReport>,
}

/// Locks the monitor's registry, adopting a poisoned value: every
/// critical section is a single registry operation, so a panicking
/// holder cannot leave it torn.
fn lock_registry(metrics: &Mutex<Metrics>) -> MutexGuard<'_, Metrics> {
    metrics.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MonitorHandle {
    /// A live snapshot of the monitor's registry — counters plus the
    /// `monitor.acked_per_s` gauge — while the monitor is still
    /// running.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        lock_registry(&self.metrics).snapshot()
    }

    /// Signals the monitor to finish its current op and joins it.
    #[must_use]
    pub fn stop(self) -> MonitorReport {
        self.stop.store(true, Ordering::SeqCst);
        self.join.join().unwrap_or_else(|_| MonitorReport {
            windows: Vec::new(),
            acked: Vec::new(),
            attempted: 0,
            refused: 0,
            lost: 0,
            metrics: Metrics::new().snapshot(),
        })
    }
}

/// Monitor tunables.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// The session client id (must be unique in the campaign).
    pub client_id: u64,
    /// Window length, milliseconds.
    pub window_ms: u64,
    /// Pause between ops, milliseconds.
    pub op_gap_ms: u64,
    /// Client retry tunables.
    pub params: ClientParams,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            client_id: 0xA11B,
            window_ms: 1_000,
            op_gap_ms: 50,
            params: ClientParams {
                max_attempts: 8,
                backoff_base_ms: 20,
                backoff_cap_ms: 400,
                request_timeout: Duration::from_millis(1_500),
                max_redirect_hops: 3,
            },
        }
    }
}

/// Running totals read from the registry at the last window roll.
#[derive(Clone, Copy, Default)]
struct Totals {
    attempted: u64,
    acked: u64,
    refused: u64,
    lost: u64,
}

/// One registry read: the four `monitor.*` counters.
fn totals(metrics: &Mutex<Metrics>) -> Totals {
    let m = lock_registry(metrics);
    Totals {
        attempted: m.counter("monitor.attempted"),
        acked: m.counter("monitor.acked"),
        refused: m.counter("monitor.refused"),
        lost: m.counter("monitor.lost"),
    }
}

/// Rolls one window closed: derives its stats from the counter deltas
/// since the previous roll, refreshes the live `monitor.acked_per_s`
/// gauge from the same delta, journals the window, and returns the new
/// baseline.
fn roll_window(
    metrics: &Mutex<Metrics>,
    journal: &mut Journal,
    windows: &mut Vec<WindowStat>,
    index: u32,
    prev: Totals,
    window_ms: u64,
) -> Totals {
    let now = totals(metrics);
    let delta = |a: u64, b: u64| u32::try_from(a.saturating_sub(b)).unwrap_or(u32::MAX);
    let stat = WindowStat {
        index,
        attempted: delta(now.attempted, prev.attempted),
        acked: delta(now.acked, prev.acked),
        refused: delta(now.refused, prev.refused),
        lost: delta(now.lost, prev.lost),
    };
    let per_s = now
        .acked
        .saturating_sub(prev.acked)
        .saturating_mul(1_000)
        .checked_div(window_ms.max(1))
        .unwrap_or(0);
    lock_registry(metrics).set_gauge("monitor.acked_per_s", i64::try_from(per_s).unwrap_or(i64::MAX));
    journal.record(EventKind::AvailabilityWindow {
        index: stat.index,
        attempted: stat.attempted,
        acked: stat.acked,
        refused: stat.refused,
        lost: stat.lost,
    });
    windows.push(stat);
    now
}

/// Starts the monitor against the cluster's (un-proxied) address book,
/// journaling into `dir`. When `tee` is given, every journaled event
/// also streams to the online collector behind it.
///
/// # Errors
///
/// Journal creation failures.
pub fn start(
    addrs: BTreeMap<u32, String>,
    dir: &Path,
    boot_us: u64,
    cfg: MonitorConfig,
    tee: Option<ExportQueue>,
) -> io::Result<MonitorHandle> {
    let mut journal = Journal::open(dir, boot_us)?;
    if let Some(queue) = tee {
        journal.attach_export(queue);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let metrics: Arc<Mutex<Metrics>> = Arc::new(Mutex::new(Metrics::new()));
    let registry = Arc::clone(&metrics);
    let join = thread::spawn(move || {
        let mut client = NetClient::new(addrs, cfg.client_id, cfg.params.clone());
        let started = Instant::now();
        let window = Duration::from_millis(cfg.window_ms.max(1));
        let mut windows: Vec<WindowStat> = Vec::new();
        let mut acked: Vec<AckedWrite> = Vec::new();
        let mut prev = Totals::default();
        let mut index: u32 = 0;
        let mut op: u64 = 0;
        loop {
            // Roll windows forward to wherever the clock is now (an op
            // stalled in retries can span several windows).
            #[allow(clippy::cast_possible_truncation)]
            let now_index =
                (started.elapsed().as_millis() / window.as_millis().max(1)) as u32;
            while index < now_index {
                prev = roll_window(&registry, &mut journal, &mut windows, index, prev, cfg.window_ms);
                index += 1;
            }
            if stop_flag.load(Ordering::SeqCst) {
                break;
            }
            op += 1;
            let key = format!("mon-{}-{op}", cfg.client_id);
            let value = format!("v{op}");
            lock_registry(&registry).inc("monitor.attempted");
            match client.put(&key, &value) {
                Ok(ack) => {
                    lock_registry(&registry).inc("monitor.acked");
                    journal.record(EventKind::SessionAck {
                        client: cfg.client_id,
                        seq: ack.seq,
                        dup: ack.duplicate,
                    });
                    acked.push(AckedWrite {
                        key,
                        value,
                        seq: ack.seq,
                        duplicate: ack.duplicate,
                    });
                }
                Err(ClientError::Rejected { .. } | ClientError::SessionStale { .. }) => {
                    lock_registry(&registry).inc("monitor.refused");
                }
                Err(ClientError::Exhausted { .. }) => {
                    lock_registry(&registry).inc("monitor.lost");
                }
            }
            thread::sleep(Duration::from_millis(cfg.op_gap_ms));
        }
        // Flush the final, partial window.
        let _ = roll_window(&registry, &mut journal, &mut windows, index, prev, cfg.window_ms);
        let snap = lock_registry(&registry).snapshot();
        MonitorReport {
            windows,
            acked,
            attempted: snap.counter("monitor.attempted"),
            refused: snap.counter("monitor.refused"),
            lost: snap.counter("monitor.lost"),
            metrics: snap,
        }
    });
    Ok(MonitorHandle {
        stop,
        metrics,
        join,
    })
}
