//! The length-prefixed wire frame codec.
//!
//! Every message on an `adored` TCP connection is one frame:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes of JSON]
//! ```
//!
//! The format deliberately mirrors the WAL's record framing
//! (`adore-storage`): the same CRC-32 (IEEE) over the payload only, the
//! same little-endian header. A frame read off the wire is validated
//! *before* any allocation proportional to its claimed length: a length
//! above [`MAX_FRAME`] is rejected as [`WireError::Oversized`] from the
//! 8 header bytes alone, so a corrupt or hostile length prefix can
//! never drive an over-allocation, and a checksum mismatch is a typed
//! [`WireError::Corrupt`], never a panic.
//!
//! Everything in this module is pure byte manipulation — no sockets, no
//! clocks — so the codec is property-testable in isolation and sits in
//! the deterministic (`det`) half of the crate.

use adore_storage::crc32;

/// Frame header size: 4-byte length + 4-byte CRC.
pub const HEADER: usize = 8;

/// Maximum payload size accepted on the wire (8 MiB). A full-log
/// commit broadcast for the smoke/bench workloads is well under this;
/// anything larger is a corrupt length or an abusive peer.
pub const MAX_FRAME: usize = 8 << 20;

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix claims a payload larger than [`MAX_FRAME`].
    Oversized {
        /// The claimed payload length.
        len: u64,
    },
    /// The payload checksum does not match the header CRC.
    Corrupt,
    /// The payload is not valid JSON for the expected message type.
    BadPayload {
        /// The decoder's reason.
        msg: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::Corrupt => f.write_str("frame payload fails its checksum"),
            WireError::BadPayload { msg } => write!(f, "frame payload undecodable: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes one payload as a framed byte string.
///
/// # Errors
///
/// [`WireError::Oversized`] if the payload exceeds [`MAX_FRAME`] (the
/// encoder enforces the same cap the decoder does, so a frame this
/// node sends is always one a peer will accept).
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::Oversized {
            len: payload.len() as u64,
        });
    }
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Validates a header read off the wire, returning the payload length
/// to read next.
///
/// # Errors
///
/// [`WireError::Oversized`] when the claimed length exceeds
/// [`MAX_FRAME`] — decided from the 8 header bytes alone, before any
/// payload allocation.
pub fn decode_header(header: &[u8; HEADER]) -> Result<(usize, u32), WireError> {
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len: len as u64 });
    }
    Ok((len, crc))
}

/// Checks a fully read payload against its header CRC.
///
/// # Errors
///
/// [`WireError::Corrupt`] on checksum mismatch.
pub fn verify_payload(payload: &[u8], crc: u32) -> Result<(), WireError> {
    if crc32(payload) == crc {
        Ok(())
    } else {
        Err(WireError::Corrupt)
    }
}

/// Splits the first complete frame off `bytes`.
///
/// Returns `Ok(None)` when the buffer ends mid-frame (more bytes are
/// needed — the streaming case, and a truncated frame at EOF), or
/// `Ok(Some((payload, consumed)))` with the validated payload and the
/// total number of bytes the frame occupied.
///
/// # Errors
///
/// [`WireError::Oversized`] for a length prefix past [`MAX_FRAME`]
/// (checked before anything is copied), [`WireError::Corrupt`] for a
/// checksum mismatch.
pub fn split_frame(bytes: &[u8]) -> Result<Option<(&[u8], usize)>, WireError> {
    let Some(header) = bytes.get(..HEADER) else {
        return Ok(None);
    };
    let header: [u8; HEADER] = header.try_into().expect("sliced exactly HEADER bytes");
    let (len, crc) = decode_header(&header)?;
    let Some(payload) = bytes.get(HEADER..HEADER + len) else {
        return Ok(None);
    };
    verify_payload(payload, crc)?;
    Ok(Some((payload, HEADER + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_one_frame() {
        let framed = encode_frame(b"hello").unwrap();
        let (payload, used) = split_frame(&framed).unwrap().unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(used, framed.len());
    }

    #[test]
    fn truncated_frames_ask_for_more_bytes() {
        let framed = encode_frame(b"payload").unwrap();
        for cut in 0..framed.len() {
            assert_eq!(split_frame(&framed[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_is_rejected_from_the_header_alone() {
        let mut bytes = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 4]);
        assert_eq!(
            split_frame(&bytes),
            Err(WireError::Oversized {
                len: (MAX_FRAME + 1) as u64
            })
        );
    }

    #[test]
    fn corrupt_payload_is_a_typed_error() {
        let mut framed = encode_frame(b"payload").unwrap();
        let last = framed.len() - 1;
        framed[last] ^= 0x01;
        assert_eq!(split_frame(&framed), Err(WireError::Corrupt));
    }
}
