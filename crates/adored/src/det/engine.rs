//! The deterministic per-node protocol engine.
//!
//! The certified model ([`adore_raft::NetState`]) is *global*: all
//! servers live in one struct and an acknowledgement is the synchronous
//! return half of a delivery. A real cluster has no global struct, so
//! this module decomposes the model into a per-node state machine with
//! the acks reified as wire messages ([`PeerMsg::ElectAck`],
//! [`PeerMsg::CommitAck`], [`PeerMsg::Nack`]). Every transition here
//! mirrors a `NetState` rule; where this engine goes beyond the model
//! (the no-op barrier on election win, Nack-driven step-down,
//! heartbeat retransmission) the divergence is a liveness mechanism
//! that leaves the safety-relevant state transitions identical.
//!
//! The engine is **pure** with respect to the outside world: it
//! consumes [`Input`]s and returns [`Output`]s, touching no sockets, no
//! clocks, and no filesystem. Time is an abstract tick stream; the only
//! randomness is a seeded [`StdRng`] jittering election deadlines. The
//! same input sequence therefore always produces the same output
//! sequence — the runtime (`crate::node`) is a thin shell that feeds
//! ticks and frames in and carries bytes, journal lines, and replies
//! out. That boundary is what keeps the protocol state machine inside
//! the `det` lint scope (L1/L7) while IO threads live at the edges.
//!
//! # Durability ordering
//!
//! Outputs are ordered so that obeying them sequentially preserves the
//! write-ahead discipline: the journal delta and WAL persist come
//! *before* any `Send` or `Reply`, so an acknowledgement never leaves
//! the node before the state it acknowledges is on disk.

use std::collections::BTreeMap;

use adore_core::{Configuration, NodeId, NodeSet, ReconfigGuard, Timestamp};
use adore_kv::{KvCommand, KvStore};
use adore_obs::EventKind;
use adore_raft::{effective_config, log_up_to_date, Command, Entry, Request, Role};
use adore_schemes::SingleNode;
use adore_storage::{DurableState, Wal, WalRecord};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::det::msg::{Cfg, ClientMsg, ClientReply, NetEntry, NetRequest, PeerMsg, SessionCmd};
use crate::det::session::{SeqVerdict, SessionTable};

/// Tunables of one engine. All times are abstract ticks; the runtime
/// decides how long a tick is.
#[derive(Debug, Clone)]
pub struct EngineParams {
    /// Leader re-broadcast (heartbeat) period in ticks. Doubles as the
    /// retransmission schedule: a lost commit broadcast is repaired by
    /// the next heartbeat, which always ships the full log.
    pub heartbeat_ticks: u64,
    /// Minimum election timeout in ticks.
    pub election_ticks_min: u64,
    /// Maximum election timeout in ticks (jittered per deadline).
    pub election_ticks_max: u64,
    /// Maximum client requests waiting for commit before the engine
    /// sheds new ones as [`ClientReply::Overloaded`].
    pub inflight_cap: usize,
    /// Session dedup window in sequence numbers.
    pub session_window: u64,
    /// Maximum distinct client sessions retained.
    pub session_clients: usize,
}

impl Default for EngineParams {
    fn default() -> Self {
        EngineParams {
            heartbeat_ticks: 5,
            election_ticks_min: 20,
            election_ticks_max: 40,
            inflight_cap: 64,
            session_window: 128,
            session_clients: 64,
        }
    }
}

/// Static identity and wiring of one engine, bundled so construction
/// stays readable.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// This node.
    pub nid: NodeId,
    /// Every node the runtime can dial (the address book), self
    /// included. Broadcasts go to all of them — including nodes outside
    /// the effective configuration, which still replicate (they may be
    /// re-added, and they must learn they were removed).
    pub peers: NodeSet,
    /// The genesis configuration.
    pub conf0: Cfg,
    /// Which of R1⁺/R2/R3 gate reconfiguration.
    pub guard: ReconfigGuard,
    /// Tunables.
    pub params: EngineParams,
    /// Seed for the election-jitter generator (mix the node id in so
    /// replicas sharing a cluster seed still desynchronize).
    pub seed: u64,
}

/// One event fed into the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// One abstract clock tick.
    Tick,
    /// A message from a cluster peer.
    Peer(PeerMsg),
    /// A request from a client connection (`conn` is the runtime's
    /// handle for routing the eventual reply).
    Client {
        /// Runtime connection handle.
        conn: u64,
        /// The request.
        msg: ClientMsg,
    },
    /// A client connection went away; its pending replies are dropped.
    ClientGone {
        /// Runtime connection handle.
        conn: u64,
    },
}

/// One effect the runtime must carry out, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Output {
    /// Append these bytes to the node's WAL file and flush before
    /// acting on any later output of this batch (the write-ahead rule).
    Persist {
        /// Newly synced device bytes (suffix of the WAL image).
        bytes: Vec<u8>,
    },
    /// Append this event to the node's journal.
    Journal(EventKind),
    /// Send this message to peer `to` (best-effort; the protocol
    /// retransmits via heartbeats).
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: PeerMsg,
    },
    /// Reply on client connection `conn`.
    Reply {
        /// Runtime connection handle.
        conn: u64,
        /// The reply.
        reply: ClientReply,
    },
}

/// A client request waiting for its log entry to commit.
#[derive(Debug, Clone)]
struct Waiter {
    conn: u64,
    seq: u64,
    /// 1-based log length that must be committed to acknowledge.
    len: usize,
    /// Whether this ack deduplicates a retry.
    duplicate: bool,
}

/// Effects accumulated while handling one input.
#[derive(Debug, Default)]
struct Step {
    term: Option<u64>,
    truncate: Option<u64>,
    append: Vec<String>,
    commit_len: Option<u64>,
    records: Vec<WalRecord<Cfg, SessionCmd>>,
    events: Vec<EventKind>,
    sends: Vec<(NodeId, PeerMsg)>,
    replies: Vec<(u64, ClientReply)>,
}

impl Step {
    fn has_delta(&self) -> bool {
        self.term.is_some()
            || self.truncate.is_some()
            || !self.append.is_empty()
            || self.commit_len.is_some()
    }
}

/// The per-node deterministic protocol engine. See the module docs.
#[derive(Debug)]
pub struct Engine {
    nid: NodeId,
    peers: NodeSet,
    conf0: Cfg,
    guard: ReconfigGuard,
    params: EngineParams,

    time: Timestamp,
    log: Vec<NetEntry>,
    commit_len: usize,
    role: Role,
    votes: NodeSet,
    acks: BTreeMap<usize, NodeSet>,
    abstaining: bool,

    sessions: SessionTable,
    waiters: Vec<Waiter>,
    leader_hint: Option<NodeId>,
    applied: KvStore,

    wal: Wal<Cfg, SessionCmd>,
    /// Device bytes already handed to the runtime via `Persist`.
    persisted: usize,

    ticks: u64,
    election_deadline: u64,
    next_heartbeat: u64,
    rng: StdRng,
}

impl Engine {
    /// Builds an engine over a recovered durable state and its WAL.
    /// `abstaining` is sticky: a replica that lost its media must never
    /// vote again (it has forgotten promises), though it still
    /// replicates.
    #[must_use]
    pub fn new(
        cfg: EngineConfig,
        wal: Wal<Cfg, SessionCmd>,
        state: DurableState<Cfg, SessionCmd>,
        abstaining: bool,
    ) -> Self {
        let mut sessions =
            SessionTable::new(cfg.params.session_window, cfg.params.session_clients);
        rebuild_sessions(&mut sessions, &state.log);
        let mut applied = KvStore::new();
        apply_prefix(&mut applied, &state.log[..state.commit_len.min(state.log.len())]);
        let persisted = wal.disk().synced_bytes().len();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ u64::from(cfg.nid.0));
        let election_deadline =
            rng.gen_range(cfg.params.election_ticks_min..=cfg.params.election_ticks_max);
        Engine {
            nid: cfg.nid,
            peers: cfg.peers,
            conf0: cfg.conf0,
            guard: cfg.guard,
            params: cfg.params,
            time: state.time,
            log: state.log,
            commit_len: state.commit_len,
            role: Role::Follower,
            votes: NodeSet::new(),
            acks: BTreeMap::new(),
            abstaining,
            sessions,
            waiters: Vec::new(),
            leader_hint: None,
            applied,
            wal,
            persisted,
            ticks: 0,
            election_deadline,
            next_heartbeat: 0,
            rng,
        }
    }

    /// Feeds one input through the state machine and returns the
    /// effects, in the order the runtime must honor them.
    pub fn step(&mut self, input: Input) -> Vec<Output> {
        let mut st = Step::default();
        match input {
            Input::Tick => self.on_tick(&mut st),
            Input::Peer(msg) => self.on_peer(&mut st, msg),
            Input::Client { conn, msg } => self.on_client(&mut st, conn, msg),
            Input::ClientGone { conn } => self.waiters.retain(|w| w.conn != conn),
        }
        self.finish(st)
    }

    // ---- timers ---------------------------------------------------------

    fn on_tick(&mut self, st: &mut Step) {
        self.ticks += 1;
        if self.role == Role::Leader {
            if self.ticks >= self.next_heartbeat {
                self.next_heartbeat = self.ticks + self.params.heartbeat_ticks;
                self.broadcast_commit(st);
            }
        } else if self.ticks >= self.election_deadline {
            self.start_election(st);
        }
    }

    fn reset_election_deadline(&mut self) {
        let span = self.params.election_ticks_min..=self.params.election_ticks_max;
        self.election_deadline = self.ticks + self.rng.gen_range(span);
    }

    /// Mirrors `NetState::elect`: non-members and abstainers do not
    /// campaign; a campaign adopts a fresh term, votes for itself, and
    /// broadcasts its log for the up-to-dateness check.
    fn start_election(&mut self, st: &mut Step) {
        self.reset_election_deadline();
        if self.abstaining
            || !effective_config(&self.conf0, &self.log)
                .members()
                .contains(&self.nid)
        {
            return;
        }
        self.adopt_time(st, self.time.next());
        self.role = Role::Candidate;
        self.votes = std::iter::once(self.nid).collect();
        self.acks.clear();
        let req: NetRequest = Request::Elect {
            from: self.nid,
            time: self.time,
            log: self.log.clone(),
        };
        self.broadcast(st, &req);
        self.maybe_win(st);
    }

    // ---- peer protocol --------------------------------------------------

    fn on_peer(&mut self, st: &mut Step, msg: PeerMsg) {
        match msg {
            PeerMsg::Req(Request::Elect { from, time, log }) => {
                self.on_elect(st, from, time, &log);
            }
            PeerMsg::Req(Request::Commit {
                from,
                time,
                log,
                commit_len,
            }) => self.on_commit(st, from, time, log, commit_len),
            PeerMsg::ElectAck { from, time } => {
                if self.role == Role::Candidate && self.time.0 == time {
                    self.votes.insert(NodeId(from));
                    self.maybe_win(st);
                }
            }
            PeerMsg::CommitAck { from, time, len } => {
                if self.role == Role::Leader && self.time.0 == time {
                    let len = len as usize;
                    self.acks.entry(len).or_default().insert(NodeId(from));
                    self.maybe_advance_commit(st, len);
                }
            }
            PeerMsg::Nack { from: _, time } => {
                // A peer at a higher term: adopt it and step down. This
                // is how a zombie leader (deposed during a partition)
                // retires instead of disrupting the new term.
                if time > self.time.0 {
                    self.adopt_time(st, Timestamp(time));
                    self.step_down(st);
                    self.leader_hint = None;
                    self.reset_election_deadline();
                }
            }
        }
    }

    /// Mirrors the model's `Elect` delivery. Rejections follow the
    /// model's visibility: a stale-term candidacy gets a `Nack` (the
    /// reified ack return path), an outdated log is rejected *silently*
    /// — no term adoption, so a removed node with a long-stale log
    /// cannot disrupt the cluster by campaigning (disruption-freedom).
    fn on_elect(&mut self, st: &mut Step, from: NodeId, time: Timestamp, log: &[NetEntry]) {
        if self.abstaining {
            return;
        }
        if time <= self.time {
            st.sends.push((
                from,
                PeerMsg::Nack {
                    from: self.nid.0,
                    time: self.time.0,
                },
            ));
            return;
        }
        if !log_up_to_date(log, &self.log) {
            return;
        }
        self.adopt_time(st, time);
        self.step_down(st);
        self.leader_hint = None;
        self.reset_election_deadline();
        st.sends.push((
            from,
            PeerMsg::ElectAck {
                from: self.nid.0,
                time: time.0,
            },
        ));
    }

    /// Mirrors the model's `Commit` delivery: adopt the shipped log if
    /// it is at least as up-to-date, advance the watermark, ack. The
    /// `CommitAck` leaves this node only after the `Persist` output —
    /// the durability the ack claims is real by the time it is sent.
    fn on_commit(
        &mut self,
        st: &mut Step,
        from: NodeId,
        time: Timestamp,
        log: Vec<NetEntry>,
        req_commit: usize,
    ) {
        if time < self.time {
            st.sends.push((
                from,
                PeerMsg::Nack {
                    from: self.nid.0,
                    time: self.time.0,
                },
            ));
            return;
        }
        if !log_up_to_date(&log, &self.log) {
            // A leader's earlier, shorter broadcast arriving late must
            // not truncate newer entries; its next heartbeat supersedes.
            return;
        }
        if time > self.time {
            self.adopt_time(st, time);
        }
        if from != self.nid {
            self.step_down(st);
        }
        self.leader_hint = Some(from);
        self.reset_election_deadline();
        self.adopt_log(st, log);
        let len = self.log.len();
        let target = self.commit_len.max(req_commit.min(len));
        if target > self.commit_len {
            self.advance_commit(st, target);
        }
        st.sends.push((
            from,
            PeerMsg::CommitAck {
                from: self.nid.0,
                time: time.0,
                len: len as u64,
            },
        ));
    }

    /// Mirrors `NetState::maybe_win`, plus the no-op barrier: a fresh
    /// leader appends an entry of its own term immediately, so the
    /// current-term commit rule is satisfiable without client traffic
    /// and earlier-term entries commit as soon as the barrier does.
    fn maybe_win(&mut self, st: &mut Step) {
        if self.role != Role::Candidate {
            return;
        }
        let config = effective_config(&self.conf0, &self.log);
        if !config.is_quorum(&self.votes) {
            return;
        }
        self.role = Role::Leader;
        self.leader_hint = Some(self.nid);
        self.next_heartbeat = self.ticks + self.params.heartbeat_ticks;
        st.events.push(EventKind::LeaderElected {
            nid: self.nid.0,
            term: self.time.0,
        });
        self.push_entry(
            st,
            Entry {
                time: self.time,
                cmd: Command::Method(SessionCmd::noop()),
            },
        );
        self.broadcast_commit(st);
    }

    /// Mirrors `NetState::commit`: requires the log to end with an
    /// own-term entry (guaranteed by the barrier), self-acks, and
    /// broadcasts the full log.
    fn broadcast_commit(&mut self, st: &mut Step) {
        if self.role != Role::Leader {
            return;
        }
        if self.log.last().map(|e| e.time) != Some(self.time) {
            return;
        }
        let len = self.log.len();
        self.acks.entry(len).or_default().insert(self.nid);
        let req: NetRequest = Request::Commit {
            from: self.nid,
            time: self.time,
            log: self.log.clone(),
            commit_len: self.commit_len,
        };
        self.broadcast(st, &req);
        self.maybe_advance_commit(st, len);
    }

    /// Mirrors `NetState::maybe_advance_commit`: quorum per the
    /// configuration effective at the acked prefix.
    fn maybe_advance_commit(&mut self, st: &mut Step, len: usize) {
        if self.role != Role::Leader {
            return;
        }
        let Some(ackers) = self.acks.get(&len) else {
            return;
        };
        let prefix = self.log.get(..len.min(self.log.len())).unwrap_or(&[]);
        let config = effective_config(&self.conf0, prefix);
        if config.is_quorum(ackers) && len > self.commit_len {
            self.advance_commit(st, len);
        }
    }

    // ---- client protocol ------------------------------------------------

    fn on_client(&mut self, st: &mut Step, conn: u64, msg: ClientMsg) {
        match msg {
            ClientMsg::Status => {
                let members = effective_config(&self.conf0, &self.log)
                    .members()
                    .iter()
                    .map(|n| n.0)
                    .collect();
                st.replies.push((
                    conn,
                    ClientReply::Status {
                        nid: self.nid.0,
                        role: role_name(self.role).to_string(),
                        term: self.time.0,
                        log_len: self.log.len() as u64,
                        commit_len: self.commit_len as u64,
                        leader: self.leader_hint.map(|n| n.0),
                        members,
                    },
                ));
            }
            ClientMsg::Get { key } => {
                if self.role != Role::Leader {
                    st.replies.push((conn, self.redirect()));
                    return;
                }
                let value = self.applied.get(&key).map(str::to_string);
                st.replies.push((conn, ClientReply::Value { key, value }));
            }
            ClientMsg::Put {
                client,
                seq,
                key,
                value,
            } => {
                if self.role != Role::Leader {
                    st.replies.push((conn, self.redirect()));
                    return;
                }
                if !self.admit(st, conn, client, seq) {
                    return;
                }
                self.push_entry(
                    st,
                    Entry {
                        time: self.time,
                        cmd: Command::Method(SessionCmd {
                            client,
                            seq,
                            op: Some(KvCommand::put(key, value)),
                        }),
                    },
                );
                self.waiters.push(Waiter {
                    conn,
                    seq,
                    len: self.log.len(),
                    duplicate: false,
                });
                self.broadcast_commit(st);
            }
            ClientMsg::Reconfigure {
                client,
                seq,
                members,
            } => {
                if self.role != Role::Leader {
                    st.replies.push((conn, self.redirect()));
                    return;
                }
                if !self.admit(st, conn, client, seq) {
                    return;
                }
                if let Some(reason) = self.reconfig_rejection(&members) {
                    st.replies.push((conn, ClientReply::Rejected { reason }));
                    return;
                }
                self.push_entry(
                    st,
                    Entry {
                        time: self.time,
                        cmd: Command::Config(SingleNode::new(members)),
                    },
                );
                // Config entries carry no session envelope, so their
                // dedup record is volatile (lost on a log rebuild). That
                // is sound: re-appending the same membership is
                // idempotent and R1⁺ admits the no-change transition.
                self.sessions.record(client, seq, self.log.len() as u64);
                self.waiters.push(Waiter {
                    conn,
                    seq,
                    len: self.log.len(),
                    duplicate: false,
                });
                self.broadcast_commit(st);
            }
        }
    }

    /// Session admission for a leader-side write: replies and returns
    /// `false` for duplicates, stale seqs, and overload; returns `true`
    /// when the caller should append.
    fn admit(&mut self, st: &mut Step, conn: u64, client: u64, seq: u64) -> bool {
        match self.sessions.check(client, seq) {
            SeqVerdict::Duplicate { len } => {
                let len = len as usize;
                if len <= self.commit_len {
                    st.replies.push((
                        conn,
                        ClientReply::Acked {
                            seq,
                            duplicate: true,
                        },
                    ));
                } else {
                    // Appended but not yet committed: acknowledge when
                    // the original commits, without re-appending.
                    self.waiters.push(Waiter {
                        conn,
                        seq,
                        len,
                        duplicate: true,
                    });
                }
                false
            }
            SeqVerdict::Stale { floor } => {
                st.replies.push((conn, ClientReply::SessionStale { floor }));
                false
            }
            SeqVerdict::Fresh => {
                if self.waiters.len() >= self.params.inflight_cap {
                    st.replies.push((conn, ClientReply::Overloaded));
                    false
                } else {
                    true
                }
            }
        }
    }

    /// The R1⁺/R2/R3 guard, verbatim from `NetState::reconfig`, as a
    /// rejection reason (`None` = admitted).
    fn reconfig_rejection(&self, members: &[u32]) -> Option<String> {
        let next = SingleNode::new(members.iter().copied());
        let current = effective_config(&self.conf0, &self.log);
        if self.guard.r1 && !current.r1_plus(&next) {
            return Some("R1+: membership may change by at most one node".to_string());
        }
        if self.guard.r2
            && self.log[self.commit_len..]
                .iter()
                .any(|e| e.cmd.config().is_some())
        {
            return Some("R2: an uncommitted config entry is already in flight".to_string());
        }
        if self.guard.r3 && !self.log[..self.commit_len].iter().any(|e| e.time == self.time) {
            return Some("R3: no entry of the current term is committed yet".to_string());
        }
        None
    }

    fn redirect(&self) -> ClientReply {
        ClientReply::Redirect {
            leader: self.leader_hint.filter(|n| *n != self.nid).map(|n| n.0),
        }
    }

    // ---- mutation helpers (each journals + persists what it changes) ----

    fn adopt_time(&mut self, st: &mut Step, t: Timestamp) {
        self.time = t;
        st.term = Some(t.0);
        st.records.push(WalRecord::Term { time: t.0 });
    }

    fn push_entry(&mut self, st: &mut Step, e: NetEntry) {
        st.append
            .push(serde_json::to_string(&e).expect("entries serialize"));
        st.records.push(WalRecord::Append { entry: e.clone() });
        if let Command::Method(sc) = &e.cmd {
            if sc.client != 0 {
                self.sessions.record(sc.client, sc.seq, (self.log.len() + 1) as u64);
            }
        }
        self.log.push(e);
    }

    /// Installs a shipped log that passed `log_up_to_date`: truncates
    /// the divergent suffix (rebuilding the session index, whose
    /// entries above the cut are gone) and appends the rest.
    fn adopt_log(&mut self, st: &mut Step, new_log: Vec<NetEntry>) {
        let common = self
            .log
            .iter()
            .zip(new_log.iter())
            .take_while(|(a, b)| a == b)
            .count();
        if common < self.log.len() {
            self.log.truncate(common);
            st.truncate = Some(common as u64);
            st.records.push(WalRecord::Truncate {
                len: common as u64,
            });
            self.sessions.clear();
            rebuild_sessions(&mut self.sessions, &self.log);
        }
        for e in new_log.into_iter().skip(common) {
            self.push_entry(st, e);
        }
    }

    /// Advances the watermark to `target` (never backwards), applying
    /// the newly committed entries and releasing their waiters.
    fn advance_commit(&mut self, st: &mut Step, target: usize) {
        let target = target.min(self.log.len());
        for e in &self.log[self.commit_len.min(target)..target] {
            match &e.cmd {
                Command::Method(sc) => {
                    if let Some(op) = &sc.op {
                        self.applied.apply(op);
                    }
                }
                Command::Config(c) => st.events.push(EventKind::ReconfigCommitted {
                    nid: self.nid.0,
                    members: c.members().iter().map(|n| n.0).collect(),
                }),
            }
        }
        self.commit_len = target;
        st.commit_len = Some(target as u64);
        st.records.push(WalRecord::CommitLen {
            len: target as u64,
        });
        let mut kept = Vec::with_capacity(self.waiters.len());
        for w in self.waiters.drain(..) {
            if w.len <= target {
                st.replies.push((
                    w.conn,
                    ClientReply::Acked {
                        seq: w.seq,
                        duplicate: w.duplicate,
                    },
                ));
            } else {
                kept.push(w);
            }
        }
        self.waiters = kept;
    }

    /// Leaves leadership/candidacy; pending client requests are
    /// redirected (graceful degradation, not silence: the client learns
    /// immediately instead of timing out).
    fn step_down(&mut self, st: &mut Step) {
        if self.role == Role::Follower {
            return;
        }
        self.role = Role::Follower;
        self.votes.clear();
        self.acks.clear();
        let redirect = self.redirect();
        for w in self.waiters.drain(..) {
            st.replies.push((w.conn, redirect.clone()));
        }
    }

    fn broadcast(&self, st: &mut Step, req: &NetRequest) {
        for peer in &self.peers {
            if *peer != self.nid {
                st.sends.push((*peer, PeerMsg::Req(req.clone())));
            }
        }
    }

    /// Orders a step's effects for the runtime: journal delta, WAL
    /// persist, sync marker, protocol events, then sends and replies —
    /// so nothing leaves the node before its durable basis.
    fn finish(&mut self, st: Step) -> Vec<Output> {
        let mut out = Vec::new();
        if st.has_delta() {
            out.push(Output::Journal(EventKind::StateDelta {
                nid: self.nid.0,
                term: st.term,
                truncate: st.truncate,
                append: st.append,
                commit_len: st.commit_len,
            }));
        }
        if !st.records.is_empty() {
            for rec in &st.records {
                self.wal.append(rec);
            }
            self.wal.sync();
            let synced = self.wal.disk().synced_bytes();
            let bytes = synced[self.persisted.min(synced.len())..].to_vec();
            self.persisted = synced.len();
            out.push(Output::Persist { bytes });
            out.push(Output::Journal(EventKind::WalSync { nid: self.nid.0 }));
        }
        out.extend(st.events.into_iter().map(Output::Journal));
        out.extend(
            st.sends
                .into_iter()
                .map(|(to, msg)| Output::Send { to, msg }),
        );
        out.extend(
            st.replies
                .into_iter()
                .map(|(conn, reply)| Output::Reply { conn, reply }),
        );
        out
    }

    // ---- accessors ------------------------------------------------------

    /// This node's id.
    #[must_use]
    pub fn nid(&self) -> NodeId {
        self.nid
    }

    /// Current role.
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    #[must_use]
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// Log length.
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Commit watermark.
    #[must_use]
    pub fn commit_len(&self) -> usize {
        self.commit_len
    }

    /// Best current guess at the leader.
    #[must_use]
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.leader_hint
    }

    /// Members of the effective configuration.
    #[must_use]
    pub fn members(&self) -> NodeSet {
        effective_config(&self.conf0, &self.log).members()
    }

    /// A committed value, from the applied store.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.applied.get(key)
    }

    /// Configuration epoch: how many configuration entries the log
    /// holds (0 while still on the bootstrap configuration). Exposed
    /// as a `/metrics` gauge so a scrape shows reconfiguration
    /// progress without parsing the journal.
    #[must_use]
    pub fn config_epoch(&self) -> usize {
        self.log
            .iter()
            .filter(|e| matches!(e.cmd, Command::Config(_)))
            .count()
    }

    /// Distinct clients tracked in the session table (the session-table
    /// occupancy gauge).
    #[must_use]
    pub fn session_occupancy(&self) -> usize {
        self.sessions.clients()
    }
}

fn role_name(role: Role) -> &'static str {
    match role {
        Role::Follower => "follower",
        Role::Candidate => "candidate",
        Role::Leader => "leader",
    }
}

/// Rebuilds the session index from a log: every non-noop method entry
/// contributes its `(client, seq)` at its 1-based position.
fn rebuild_sessions(sessions: &mut SessionTable, log: &[NetEntry]) {
    for (i, e) in log.iter().enumerate() {
        if let Command::Method(sc) = &e.cmd {
            if sc.client != 0 {
                sessions.record(sc.client, sc.seq, (i + 1) as u64);
            }
        }
    }
}

/// Applies the committed prefix to a store.
fn apply_prefix(store: &mut KvStore, prefix: &[NetEntry]) {
    for e in prefix {
        if let Command::Method(sc) = &e.cmd {
            if let Some(op) = &sc.op {
                store.apply(op);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn fresh(nid: u32, members: &[u32], params: EngineParams) -> Engine {
        let cfg = EngineConfig {
            nid: NodeId(nid),
            peers: members.iter().map(|n| NodeId(*n)).collect(),
            conf0: SingleNode::new(members.iter().copied()),
            guard: ReconfigGuard::all(),
            params,
            seed: 42,
        };
        let wal = Wal::new(NodeId(nid));
        Engine::new(cfg, wal, DurableState::default(), false)
    }

    /// Routes `Send` outputs between engines until quiescent, returning
    /// every client reply seen.
    fn pump(
        engines: &mut BTreeMap<u32, Engine>,
        seed_outputs: Vec<Output>,
    ) -> Vec<(u64, ClientReply)> {
        let mut queue: VecDeque<(u32, PeerMsg)> = VecDeque::new();
        let mut replies = Vec::new();
        let absorb = |outs: Vec<Output>,
                          queue: &mut VecDeque<(u32, PeerMsg)>,
                          replies: &mut Vec<(u64, ClientReply)>| {
            for o in outs {
                match o {
                    Output::Send { to, msg } => queue.push_back((to.0, msg)),
                    Output::Reply { conn, reply } => replies.push((conn, reply)),
                    Output::Persist { .. } | Output::Journal(_) => {}
                }
            }
        };
        absorb(seed_outputs, &mut queue, &mut replies);
        while let Some((to, msg)) = queue.pop_front() {
            if let Some(engine) = engines.get_mut(&to) {
                let outs = engine.step(Input::Peer(msg));
                absorb(outs, &mut queue, &mut replies);
            }
        }
        replies
    }

    /// Ticks node 1 past its deadline so it campaigns, with the full
    /// message exchange routed between all three engines.
    fn elect_node_one(engines: &mut BTreeMap<u32, Engine>) {
        for _ in 0..EngineParams::default().election_ticks_max + 1 {
            let outs = engines.get_mut(&1).unwrap().step(Input::Tick);
            pump(engines, outs);
            if engines[&1].role() == Role::Leader {
                return;
            }
        }
        panic!("node 1 failed to win its election");
    }

    fn three() -> BTreeMap<u32, Engine> {
        [1, 2, 3]
            .into_iter()
            .map(|n| (n, fresh(n, &[1, 2, 3], EngineParams::default())))
            .collect()
    }

    #[test]
    fn three_engines_elect_replicate_and_commit() {
        let mut engines = three();
        elect_node_one(&mut engines);
        // The no-op barrier commits across the quorum.
        assert_eq!(engines[&1].commit_len(), 1);

        let outs = engines.get_mut(&1).unwrap().step(Input::Client {
            conn: 7,
            msg: ClientMsg::Put {
                client: 9,
                seq: 1,
                key: "k".into(),
                value: "v".into(),
            },
        });
        let replies = pump(&mut engines, outs);
        assert_eq!(
            replies,
            vec![(
                7,
                ClientReply::Acked {
                    seq: 1,
                    duplicate: false
                }
            )]
        );
        assert_eq!(engines[&1].get("k"), Some("v"));
        // Followers learn the advanced watermark on the next heartbeat.
        for _ in 0..EngineParams::default().heartbeat_ticks + 1 {
            let outs = engines.get_mut(&1).unwrap().step(Input::Tick);
            pump(&mut engines, outs);
        }
        for n in [2, 3] {
            assert_eq!(engines[&n].log_len(), 2);
            assert_eq!(engines[&n].commit_len(), 2);
        }
    }

    #[test]
    fn retried_put_is_acked_but_applied_once() {
        let mut engines = three();
        elect_node_one(&mut engines);
        let put = ClientMsg::Put {
            client: 9,
            seq: 1,
            key: "k".into(),
            value: "v".into(),
        };
        let outs = engines.get_mut(&1).unwrap().step(Input::Client {
            conn: 1,
            msg: put.clone(),
        });
        pump(&mut engines, outs);
        let len_before = engines[&1].log_len();
        // The retry: same (client, seq), acknowledged as a duplicate,
        // nothing re-appended.
        let outs = engines.get_mut(&1).unwrap().step(Input::Client {
            conn: 2,
            msg: put,
        });
        let replies = pump(&mut engines, outs);
        assert_eq!(
            replies,
            vec![(
                2,
                ClientReply::Acked {
                    seq: 1,
                    duplicate: true
                }
            )]
        );
        assert_eq!(engines[&1].log_len(), len_before);
    }

    #[test]
    fn followers_redirect_clients_to_the_leader() {
        let mut engines = three();
        elect_node_one(&mut engines);
        let outs = engines.get_mut(&2).unwrap().step(Input::Client {
            conn: 5,
            msg: ClientMsg::Get { key: "k".into() },
        });
        assert_eq!(
            outs,
            vec![Output::Reply {
                conn: 5,
                reply: ClientReply::Redirect { leader: Some(1) }
            }]
        );
    }

    #[test]
    fn bounded_inflight_sheds_overload() {
        // A leader whose peers never answer: waiters pile up.
        let params = EngineParams {
            inflight_cap: 2,
            ..EngineParams::default()
        };
        let mut leader = fresh(1, &[1, 2, 3], params);
        // Campaign; votes never arrive, so force the win via a second
        // engine voting.
        let mut engines: BTreeMap<u32, Engine> =
            [(1, leader)].into_iter().collect();
        let mut voter = fresh(2, &[1, 2, 3], EngineParams::default());
        for _ in 0..41 {
            let outs = engines.get_mut(&1).unwrap().step(Input::Tick);
            for o in outs {
                if let Output::Send { to, msg } = o {
                    if to == NodeId(2) {
                        for v in voter.step(Input::Peer(msg)) {
                            if let Output::Send { to, msg } = v {
                                if to == NodeId(1) {
                                    engines.get_mut(&1).unwrap().step(Input::Peer(msg));
                                }
                            }
                        }
                    }
                }
            }
            if engines[&1].role() == Role::Leader {
                break;
            }
        }
        leader = engines.remove(&1).unwrap();
        assert_eq!(leader.role(), Role::Leader);
        // Node 2's ack committed the barrier; further acks are dropped
        // on the floor from here, so puts stay in flight.
        for (seq, conn) in [(1u64, 1u64), (2, 2)] {
            let outs = leader.step(Input::Client {
                conn,
                msg: ClientMsg::Put {
                    client: 4,
                    seq,
                    key: format!("k{seq}"),
                    value: "v".into(),
                },
            });
            assert!(
                !outs
                    .iter()
                    .any(|o| matches!(o, Output::Reply { .. })),
                "put {seq} should be in flight, not answered"
            );
        }
        let outs = leader.step(Input::Client {
            conn: 3,
            msg: ClientMsg::Put {
                client: 4,
                seq: 3,
                key: "k3".into(),
                value: "v".into(),
            },
        });
        assert!(outs.contains(&Output::Reply {
            conn: 3,
            reply: ClientReply::Overloaded
        }));
    }

    #[test]
    fn nack_retires_a_zombie_leader() {
        let mut engines = three();
        elect_node_one(&mut engines);
        let leader = engines.get_mut(&1).unwrap();
        assert_eq!(leader.role(), Role::Leader);
        let term = leader.time().0;
        let outs = leader.step(Input::Peer(PeerMsg::Nack {
            from: 3,
            time: term + 5,
        }));
        assert_eq!(leader.role(), Role::Follower);
        assert_eq!(leader.time().0, term + 5);
        // The step-down journaled and persisted the adopted term.
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::Persist { .. })));
    }

    #[test]
    fn identical_inputs_yield_identical_outputs() {
        let script = |engine: &mut Engine| {
            let mut all = Vec::new();
            for _ in 0..60 {
                all.extend(engine.step(Input::Tick));
            }
            all.extend(engine.step(Input::Client {
                conn: 1,
                msg: ClientMsg::Status,
            }));
            all
        };
        let mut a = fresh(1, &[1, 2, 3], EngineParams::default());
        let mut b = fresh(1, &[1, 2, 3], EngineParams::default());
        assert_eq!(script(&mut a), script(&mut b));
    }

    #[test]
    fn reconfiguration_commits_and_takes_effect() {
        let mut engines = three();
        elect_node_one(&mut engines);
        // R3 needs a committed own-term entry: the barrier already is.
        let outs = engines.get_mut(&1).unwrap().step(Input::Client {
            conn: 1,
            msg: ClientMsg::Reconfigure {
                client: 2,
                seq: 1,
                members: vec![1, 2],
            },
        });
        let replies = pump(&mut engines, outs);
        assert_eq!(
            replies,
            vec![(
                1,
                ClientReply::Acked {
                    seq: 1,
                    duplicate: false
                }
            )]
        );
        let members: Vec<u32> = engines[&1].members().iter().map(|n| n.0).collect();
        assert_eq!(members, vec![1, 2]);
        // R1+ rejects a two-node jump from {1,2}.
        let outs = engines.get_mut(&1).unwrap().step(Input::Client {
            conn: 1,
            msg: ClientMsg::Reconfigure {
                client: 2,
                seq: 2,
                members: vec![3, 4],
            },
        });
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Reply {
                reply: ClientReply::Rejected { .. },
                ..
            }
        )));
    }
}
