//! Wire message types: what `adored` nodes and clients say to each
//! other, as JSON payloads inside [`crate::det::wire`] frames.
//!
//! The peer protocol is the existing certified model's [`Request`]
//! (full-log `Elect`/`Commit` broadcasts) **plus explicit
//! acknowledgement messages**. The simulated `NetState` models an ack
//! as the synchronous return half of a delivery; on a real wire the
//! return path is its own packet, so [`PeerMsg`] reifies the three ack
//! shapes the model folds away: a granted vote ([`PeerMsg::ElectAck`]),
//! an adoption ack ([`PeerMsg::CommitAck`]), and a higher-term
//! rejection ([`PeerMsg::Nack`], which is how a deposed or partitioned
//! leader learns to step down — the model's recipient-side `StaleTime`
//! rejection, made visible to the sender).

use serde::{Deserialize, Serialize};

use adore_kv::KvCommand;
use adore_raft::{Entry, Request};
use adore_schemes::SingleNode;

/// The configuration scheme the networked runtime replicates over.
pub type Cfg = SingleNode;

/// One replicated command with its exactly-once session envelope.
///
/// `op: None` is the leader's no-op barrier entry, appended on election
/// win so the log always ends with an entry of the leader's own term
/// (Raft's current-term commit rule) without waiting for client
/// traffic. Client ops always carry `Some` and a real `(client, seq)`
/// pair; the pair rides in the replicated entry itself, so any later
/// leader can rebuild the dedup table from its log alone.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionCmd {
    /// The issuing client's id (0 for protocol-internal no-ops).
    pub client: u64,
    /// The client's per-session request sequence number.
    pub seq: u64,
    /// The command, or `None` for the election no-op barrier.
    pub op: Option<KvCommand>,
}

impl SessionCmd {
    /// The leader's no-op barrier entry payload.
    #[must_use]
    pub fn noop() -> Self {
        SessionCmd {
            client: 0,
            seq: 0,
            op: None,
        }
    }
}

/// A log entry of the networked runtime.
pub type NetEntry = Entry<Cfg, SessionCmd>;

/// A protocol request of the networked runtime (the model's
/// full-log-shipping `Elect`/`Commit`).
pub type NetRequest = Request<Cfg, SessionCmd>;

/// First frame on any connection: who is on the other end.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Hello {
    /// A cluster peer's outbound replication link.
    Peer {
        /// The connecting node's id.
        from: u32,
    },
    /// A client session.
    Client {
        /// The client's self-chosen id.
        client: u64,
    },
}

/// A message between cluster nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerMsg {
    /// A broadcast protocol request (election or commit, full log).
    Req(NetRequest),
    /// A vote: the sender adopted the candidate's term `time` and found
    /// its log up to date.
    ElectAck {
        /// The voter.
        from: u32,
        /// The candidate term being voted for.
        time: u64,
    },
    /// A replication ack: the sender adopted the leader's log of length
    /// `len` at term `time` (and synced its WAL first).
    CommitAck {
        /// The acking follower.
        from: u32,
        /// The leader term being acked.
        time: u64,
        /// The adopted log length.
        len: u64,
    },
    /// A higher-term rejection: the sender's term `time` exceeds the
    /// request's. A leader or candidate receiving this adopts the term
    /// and steps down — the real-wire form of the model's `StaleTime`
    /// rejection, and the mechanism that retires zombie leaders after a
    /// partition heals.
    Nack {
        /// The rejecting node.
        from: u32,
        /// The rejecting node's (higher) term.
        time: u64,
    },
}

/// A request from a client to a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Write `key = value`, exactly once per `(client, seq)`.
    Put {
        /// The issuing client.
        client: u64,
        /// The client's request sequence number.
        seq: u64,
        /// The key.
        key: String,
        /// The value.
        value: String,
    },
    /// Read a key from the committed store (leader only).
    Get {
        /// The key.
        key: String,
    },
    /// Propose a membership change (guarded by R1⁺/R2/R3).
    Reconfigure {
        /// The issuing client.
        client: u64,
        /// The client's request sequence number.
        seq: u64,
        /// The proposed member set.
        members: Vec<u32>,
    },
    /// Ask the node about itself (role, term, commit watermark).
    Status,
}

/// A node's reply to a client request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientReply {
    /// The write (or reconfiguration) committed. `duplicate` marks a
    /// retry that was deduplicated: acknowledged again, applied once.
    Acked {
        /// The request sequence this acknowledges.
        seq: u64,
        /// Whether this ack deduplicated a retry.
        duplicate: bool,
    },
    /// This node is not the leader; try the hinted one.
    Redirect {
        /// The sender's best guess at the current leader.
        leader: Option<u32>,
    },
    /// The node shed the request under load (bounded inflight queue
    /// full). The client should back off and retry.
    Overloaded,
    /// The request's sequence number fell out of the dedup window (or
    /// regressed below it): the node cannot decide whether it was
    /// already applied, so it refuses rather than risk a double apply.
    SessionStale {
        /// The session's current floor: seqs at or below it are
        /// undecidable.
        floor: u64,
    },
    /// The protocol rejected the request (e.g. a reconfiguration guard).
    Rejected {
        /// Why.
        reason: String,
    },
    /// A read result.
    Value {
        /// The key read.
        key: String,
        /// The committed value, if present.
        value: Option<String>,
    },
    /// A status report.
    Status {
        /// The replying node.
        nid: u32,
        /// Its role ("leader", "candidate", "follower").
        role: String,
        /// Its current term.
        term: u64,
        /// Its log length.
        log_len: u64,
        /// Its commit watermark.
        commit_len: u64,
        /// Its best guess at the current leader.
        leader: Option<u32>,
        /// Its effective configuration's members.
        members: Vec<u32>,
    },
}

/// Encodes any serializable message as a wire frame.
///
/// # Errors
///
/// [`crate::det::wire::WireError::Oversized`] if the encoded payload
/// exceeds the frame cap.
pub fn encode_msg<T: Serialize>(msg: &T) -> Result<Vec<u8>, crate::det::wire::WireError> {
    let payload = serde_json::to_string(msg).map_err(|e| {
        crate::det::wire::WireError::BadPayload { msg: e.to_string() }
    })?;
    crate::det::wire::encode_frame(payload.as_bytes())
}

/// Decodes a frame payload into a message.
///
/// # Errors
///
/// [`crate::det::wire::WireError::BadPayload`] when the payload is not
/// valid JSON for `T`.
pub fn decode_msg<T: serde::de::DeserializeOwned>(
    payload: &[u8],
) -> Result<T, crate::det::wire::WireError> {
    let s = std::str::from_utf8(payload).map_err(|e| {
        crate::det::wire::WireError::BadPayload { msg: e.to_string() }
    })?;
    serde_json::from_str(s).map_err(|e| crate::det::wire::WireError::BadPayload {
        msg: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det::wire::split_frame;

    #[test]
    fn peer_messages_round_trip_through_frames() {
        let msg = PeerMsg::CommitAck {
            from: 2,
            time: 7,
            len: 42,
        };
        let framed = encode_msg(&msg).unwrap();
        let (payload, _) = split_frame(&framed).unwrap().unwrap();
        assert_eq!(decode_msg::<PeerMsg>(payload).unwrap(), msg);
    }

    #[test]
    fn client_messages_round_trip_through_frames() {
        let msg = ClientMsg::Put {
            client: 9,
            seq: 3,
            key: "k".into(),
            value: "v".into(),
        };
        let framed = encode_msg(&msg).unwrap();
        let (payload, _) = split_frame(&framed).unwrap().unwrap();
        assert_eq!(decode_msg::<ClientMsg>(payload).unwrap(), msg);
    }

    #[test]
    fn wrong_type_decodes_to_a_typed_error() {
        let framed = encode_msg(&ClientMsg::Status).unwrap();
        let (payload, _) = split_frame(&framed).unwrap().unwrap();
        assert!(decode_msg::<PeerMsg>(payload).is_err());
    }
}
