//! Exactly-once client sessions: the server-side dedup window.
//!
//! Every client write carries a `(client, seq)` pair that is replicated
//! *inside* the log entry, so the table here is a pure index over the
//! log: any leader — including one elected mid-retry — rebuilds it from
//! its own log and reaches the same verdicts. A retried write is
//! therefore acknowledged again but applied at most once, across
//! leader changes and process restarts.
//!
//! Window semantics (the exact verdicts the edge-case tests pin down):
//!
//! - A seq recorded and still inside the window → [`SeqVerdict::Duplicate`].
//! - A seq at or below the session's `floor` → [`SeqVerdict::Stale`]:
//!   the table can no longer decide whether it was applied, so it
//!   refuses rather than risk a double apply. The floor trails the
//!   highest recorded seq by the window size, so a seq *regression*
//!   (a client restarting its counter, or a wrapped counter landing
//!   low) is `Stale`, never silently fresh.
//! - Anything else → [`SeqVerdict::Fresh`].
//!
//! The table is bounded on both axes: per-client state is capped by the
//! window (floor advance evicts old seqs) and the client count is
//! capped with deterministic least-recently-used eviction.

use std::collections::BTreeMap;

/// The dedup verdict for one `(client, seq)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqVerdict {
    /// Never seen and inside the window: append and apply it.
    Fresh,
    /// Already appended at log position `len` (1-based log length at
    /// which it is covered): acknowledge without re-applying.
    Duplicate {
        /// The 1-based log length that covers the original append.
        len: u64,
    },
    /// At or below the dedup floor: undecidable, refuse.
    Stale {
        /// The session's current floor.
        floor: u64,
    },
}

/// One client's window state.
#[derive(Debug, Clone, Default)]
struct ClientWindow {
    /// Seqs at or below this are out of the window (refused as stale).
    floor: u64,
    /// Retained seqs above the floor, each with the 1-based log length
    /// covering its append.
    recent: BTreeMap<u64, u64>,
    /// Logical touch stamp for LRU client eviction.
    last_touch: u64,
}

/// The bounded exactly-once dedup table.
#[derive(Debug, Clone)]
pub struct SessionTable {
    /// How many seqs the highest recorded seq keeps alive behind it.
    window: u64,
    /// Maximum distinct clients retained.
    max_clients: usize,
    clients: BTreeMap<u64, ClientWindow>,
    touch: u64,
}

impl SessionTable {
    /// Creates a table with the given dedup window (in seqs) and client
    /// cap. A zero window still deduplicates the highest seq itself.
    #[must_use]
    pub fn new(window: u64, max_clients: usize) -> Self {
        SessionTable {
            window,
            max_clients: max_clients.max(1),
            clients: BTreeMap::new(),
            touch: 0,
        }
    }

    /// The dedup verdict for `(client, seq)`. Read-only: recording
    /// happens separately, after the append actually went through.
    #[must_use]
    pub fn check(&self, client: u64, seq: u64) -> SeqVerdict {
        let Some(cw) = self.clients.get(&client) else {
            return SeqVerdict::Fresh;
        };
        if let Some(len) = cw.recent.get(&seq) {
            return SeqVerdict::Duplicate { len: *len };
        }
        if seq <= cw.floor {
            return SeqVerdict::Stale { floor: cw.floor };
        }
        SeqVerdict::Fresh
    }

    /// Records that `(client, seq)` was appended, covered once the log
    /// reaches `len` entries. Advances the floor to trail the highest
    /// recorded seq by the window, evicting whatever falls below it —
    /// those seqs answer [`SeqVerdict::Stale`] from now on.
    pub fn record(&mut self, client: u64, seq: u64, len: u64) {
        if !self.clients.contains_key(&client) && self.clients.len() >= self.max_clients {
            self.evict_lru();
        }
        self.touch += 1;
        let touch = self.touch;
        let cw = self.clients.entry(client).or_default();
        cw.last_touch = touch;
        cw.recent.insert(seq, len);
        let highest = cw.recent.keys().next_back().copied().unwrap_or(0);
        let floor = cw.floor.max(highest.saturating_sub(self.window));
        cw.floor = floor;
        cw.recent.retain(|s, _| *s > floor);
    }

    /// Drops the least-recently-touched client (ties broken by lower
    /// id, so eviction is deterministic).
    fn evict_lru(&mut self) {
        let victim = self
            .clients
            .iter()
            .min_by_key(|(id, cw)| (cw.last_touch, **id))
            .map(|(id, _)| *id);
        if let Some(id) = victim {
            self.clients.remove(&id);
        }
    }

    /// Number of distinct clients currently tracked.
    #[must_use]
    pub fn clients(&self) -> usize {
        self.clients.len()
    }

    /// Forgets everything (used when a log adoption truncates history:
    /// the caller rebuilds from the new log).
    pub fn clear(&mut self) {
        self.clients.clear();
        self.touch = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_then_duplicate() {
        let mut t = SessionTable::new(64, 16);
        assert_eq!(t.check(1, 1), SeqVerdict::Fresh);
        t.record(1, 1, 10);
        assert_eq!(t.check(1, 1), SeqVerdict::Duplicate { len: 10 });
        assert_eq!(t.check(1, 2), SeqVerdict::Fresh);
    }

    #[test]
    fn regression_below_the_window_is_stale() {
        let mut t = SessionTable::new(8, 16);
        t.record(1, 100, 1);
        // floor = 100 - 8 = 92: a restarted counter landing low is
        // undecidable, not fresh.
        assert_eq!(t.check(1, 5), SeqVerdict::Stale { floor: 92 });
        // Inside the window but unseen: fresh.
        assert_eq!(t.check(1, 95), SeqVerdict::Fresh);
    }

    #[test]
    fn lru_client_eviction_is_deterministic() {
        let mut t = SessionTable::new(8, 2);
        t.record(1, 1, 1);
        t.record(2, 1, 2);
        t.record(1, 2, 3); // client 1 is now the most recent
        t.record(3, 1, 4); // evicts client 2
        assert_eq!(t.clients(), 2);
        assert_eq!(t.check(2, 1), SeqVerdict::Fresh, "evicted client forgotten");
        assert_eq!(t.check(1, 1), SeqVerdict::Duplicate { len: 1 });
    }
}
