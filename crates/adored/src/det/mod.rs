//! The deterministic half of `adored`: everything that decides *what*
//! the node does, with no sockets, clocks, or filesystem in reach.
//!
//! The runtime (`crate::node`) owns the IO threads and feeds this layer
//! through a channel; the lint scopes (L1 determinism, L7 taint) cover
//! exactly this directory, certifying that the protocol state machine
//! stays replayable even though the process around it is not.

pub mod engine;
pub mod msg;
pub mod session;
pub mod wire;
