//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! The real serde is a zero-copy streaming framework; this stand-in
//! instead serializes through an in-memory JSON value model
//! ([`Value`]), which is all the workspace needs: derived structs and
//! enums round-tripping through `serde_json` strings. The derive macros
//! (re-exported from `serde_derive`) generate the same JSON *shapes* as
//! real serde: struct fields in declaration order, externally tagged
//! enums, transparent newtypes.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// The value-model rendering of `self`.
    fn ser_value(&self) -> Value;
}

/// A type that can reconstruct itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a value-model node.
    ///
    /// # Errors
    ///
    /// A [`de::Error`] describing the first shape mismatch.
    fn deser_value(v: &Value) -> Result<Self, de::Error>;
}

/// Deserialization support types.
pub mod de {
    use std::fmt;

    /// A deserialization failure: the value did not have the expected
    /// shape.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Creates an error with the given message.
        #[must_use]
        pub fn custom(msg: impl Into<String>) -> Self {
            Error { msg: msg.into() }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// Owned deserialization (the stand-in has no borrowed variant, so
    /// every [`Deserialize`](crate::Deserialize) type qualifies).
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Serialization support types (parity with the real crate's paths).
pub mod ser {
    pub use crate::Serialize;
}

mod impls;
