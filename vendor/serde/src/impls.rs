//! `Serialize`/`Deserialize` implementations for std types.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};

use crate::de::Error;
use crate::{Deserialize, Serialize, Value};

fn type_err(expected: &str, found: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", found.kind()))
}

// ---- references and smart pointers -----------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        T::deser_value(v).map(Box::new)
    }
}

// ---- scalars ----------------------------------------------------------

impl Serialize for bool {
    fn ser_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deser_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    other => Err(type_err("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn ser_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        u64::deser_value(v)
            .and_then(|n| usize::try_from(n).map_err(|_| Error::custom("integer out of range")))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser_value(&self) -> Value {
                let n = i64::from(*self);
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn deser_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::Int(n) => i128::from(*n),
                    Value::UInt(n) => i128::from(*n),
                    other => return Err(type_err("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn ser_value(&self) -> Value {
        (*self as i64).ser_value()
    }
}

impl Deserialize for isize {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        i64::deser_value(v)
            .and_then(|n| isize::try_from(n).map_err(|_| Error::custom("integer out of range")))
    }
}

impl Serialize for f64 {
    fn ser_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(type_err("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn ser_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        f64::deser_value(v).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn ser_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| type_err("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

// ---- strings ----------------------------------------------------------

impl Serialize for str {
    fn ser_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn ser_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| type_err("string", v))
    }
}

// ---- unit and option --------------------------------------------------

impl Serialize for () {
    fn ser_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(type_err("null", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.ser_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deser_value(other).map(Some),
        }
    }
}

// ---- sequences --------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser_value(&self) -> Value {
        self.as_slice().ser_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| type_err("array", v))?
            .iter()
            .map(T::deser_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::deser_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| type_err("array", v))?
            .iter()
            .map(T::deser_value)
            .collect()
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| type_err("array", v))?
            .iter()
            .map(T::deser_value)
            .collect()
    }
}

// ---- maps (arrays of [key, value] pairs; see vendor/README.md) --------

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn ser_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.ser_value(), v.ser_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| type_err("array", v))?
            .iter()
            .map(|pair| {
                let kv = crate::value::get_tuple(pair, 2)?;
                Ok((K::deser_value(&kv[0])?, V::deser_value(&kv[1])?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn ser_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.ser_value(), v.ser_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| type_err("array", v))?
            .iter()
            .map(|pair| {
                let kv = crate::value::get_tuple(pair, 2)?;
                Ok((K::deser_value(&kv[0])?, V::deser_value(&kv[1])?))
            })
            .collect()
    }
}

// ---- tuples -----------------------------------------------------------

macro_rules! impl_tuple {
    ($n:expr => $($idx:tt $t:ident),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn ser_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.ser_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deser_value(v: &Value) -> Result<Self, Error> {
                let items = crate::value::get_tuple(v, $n)?;
                Ok(($($t::deser_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => 0 A);
impl_tuple!(2 => 0 A, 1 B);
impl_tuple!(3 => 0 A, 1 B, 2 C);
impl_tuple!(4 => 0 A, 1 B, 2 C, 3 D);
impl_tuple!(5 => 0 A, 1 B, 2 C, 3 D, 4 E);
impl_tuple!(6 => 0 A, 1 B, 2 C, 3 D, 4 E, 5 F);

// ---- value itself -----------------------------------------------------

impl Serialize for Value {
    fn ser_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
