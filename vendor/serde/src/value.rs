//! The in-memory JSON value model shared by `serde` and `serde_json`.

use crate::de::Error;

/// One JSON value.
///
/// Objects keep insertion order (struct field order), matching how the
/// real serde_json streams struct fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A one-word description of the value's shape, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Looks up a required object field (derive-macro support).
///
/// # Errors
///
/// When the field is missing.
pub fn get_field<'a>(pairs: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Checks an array's arity (derive-macro support for tuple shapes).
///
/// # Errors
///
/// When `v` is not an array of exactly `n` elements.
pub fn get_tuple(v: &Value, n: usize) -> Result<&[Value], Error> {
    let items = v
        .as_array()
        .ok_or_else(|| Error::custom(format!("expected array, found {}", v.kind())))?;
    if items.len() == n {
        Ok(items)
    } else {
        Err(Error::custom(format!(
            "expected array of {n} elements, found {}",
            items.len()
        )))
    }
}
