//! The sampling [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for sampling values of type [`Strategy::Value`].
///
/// Unlike the real proptest strategy (which builds shrinkable value
/// trees), this stand-in only samples.
pub trait Strategy {
    /// The type of sampled values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Object-safe sampling, for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A weighted union of strategies with a common value type
/// (the `prop_oneof!` backing type).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union over `(weight, strategy)` arms. Panics if empty or all
    /// weights are zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

// ---- ranges -----------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width u64 range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

// ---- tuples -----------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($idx:tt $s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(0 A);
impl_tuple_strategy!(0 A, 1 B);
impl_tuple_strategy!(0 A, 1 B, 2 C);
impl_tuple_strategy!(0 A, 1 B, 2 C, 3 D);
impl_tuple_strategy!(0 A, 1 B, 2 C, 3 D, 4 E);
impl_tuple_strategy!(0 A, 1 B, 2 C, 3 D, 4 E, 5 F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy::ranges", 0);
        for _ in 0..200 {
            let x = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let y = (5usize..=5).sample(&mut rng);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::for_case("strategy::compose", 0);
        let s = crate::prop_oneof![
            3 => (0u32..10).prop_map(|x| x * 2),
            1 => Just(99u32),
        ];
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v == 99 || (v % 2 == 0 && v < 20));
        }
    }
}
