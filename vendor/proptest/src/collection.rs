//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length bound for collection strategies (half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

// Unsuffixed literal ranges (`1..40`) default to i32.
impl From<Range<i32>> for SizeRange {
    fn from(r: Range<i32>) -> Self {
        SizeRange {
            lo: usize::try_from(r.start).expect("nonnegative size"),
            hi: usize::try_from(r.end).expect("nonnegative size"),
        }
    }
}

impl From<RangeInclusive<i32>> for SizeRange {
    fn from(r: RangeInclusive<i32>) -> Self {
        SizeRange {
            lo: usize::try_from(*r.start()).expect("nonnegative size"),
            hi: usize::try_from(*r.end()).expect("nonnegative size") + 1,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.lo < self.size.hi, "empty size range");
        let len = self.size.lo + rng.index(self.size.hi - self.size.lo);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Samples vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::for_case("collection::bounds", 0);
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
