//! Per-test configuration and the deterministic sampling RNG.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// How many sampled cases each property test runs.
///
/// The real crate defaults to 256 cases with shrinking; the stand-in
/// defaults lower because it reruns deterministically anyway.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies: seeded from the test's module path and
/// the case index, so every run samples the same inputs.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// The RNG for one (test, case) pair.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let seed = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniformly random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniformly random index in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("t::x", 3);
        let mut b = TestRng::for_case("t::x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_cases_differ() {
        let mut a = TestRng::for_case("t::x", 0);
        let mut b = TestRng::for_case("t::x", 1);
        assert_ne!(
            (a.next_u64(), a.next_u64()),
            (b.next_u64(), b.next_u64())
        );
    }
}
