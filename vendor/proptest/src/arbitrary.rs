//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A type with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Samples one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_the_domain() {
        let mut rng = TestRng::for_case("arbitrary::domain", 0);
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..64 {
            if bool::arbitrary(&mut rng) {
                seen_true = true;
            } else {
                seen_false = true;
            }
        }
        assert!(seen_true && seen_false);
    }
}
