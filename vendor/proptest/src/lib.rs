//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Keeps the API shape the workspace uses — `Strategy` with a `Value`
//! associated type, `any::<T>()`, `prop::collection::vec`, tuple and
//! range strategies, `Just`, `prop_map`, weighted `prop_oneof!`, and
//! the `proptest!` / `prop_assert*` macros — but implements plain
//! deterministic sampling: each `#[test]` runs `cases` iterations with
//! a per-(test, case) seeded RNG. There is no shrinking and no
//! persistence; `.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Builds a weighted union of strategies with a common value type.
///
/// Both the weighted (`3 => strat`) and unweighted (`strat`) arm forms
/// are supported; weights are relative sampling frequencies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property (plain `assert!` here — the
/// stand-in reports failures by panicking, which the test harness
/// surfaces the same way).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a plain test running `config.cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                        __case,
                    );
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
