//! Offline stand-in for the `syn` crate (see `vendor/README.md`).
//!
//! Parses Rust source at *item granularity*: a [`File`] of [`Item`]s —
//! functions, impl blocks, modules, structs, enums, traits — each with
//! its attributes, name, span, and body tokens. Expression-level syntax
//! stays as raw [`proc_macro2`] token trees; `adore-lint`'s rules are
//! token-pattern analyses, so they never need full expression ASTs.
//!
//! Known approximations (all irrelevant to this workspace, asserted by
//! `adore-lint`'s self-check):
//! * a `{ ... }` const-generic default in a signature would be taken
//!   for the function body;
//! * `impl` self-type names are resolved to the last path segment
//!   before the generic arguments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proc_macro2::{Delimiter, Group, LineColumn, Span, TokenStream, TokenTree};

/// A parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    pos: LineColumn,
}

impl Error {
    /// Where parsing failed.
    #[must_use]
    pub fn position(&self) -> LineColumn {
        self.pos
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}:{}", self.msg, self.pos.line, self.pos.column)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// An attribute: `#[path(tokens)]` or `#![path(tokens)]`.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// Whether this is an inner (`#![...]`) attribute.
    pub inner: bool,
    /// The attribute path rendered as text (`derive`, `cfg`, `must_use`).
    pub path: String,
    /// Everything after the path, verbatim.
    pub tokens: TokenStream,
    /// Span of the whole attribute.
    pub span: Span,
}

impl Attribute {
    /// Whether the attribute path is exactly `name`.
    #[must_use]
    pub fn is(&self, name: &str) -> bool {
        self.path == name
    }

    /// Whether this is `#[cfg(test)]`.
    #[must_use]
    pub fn is_cfg_test(&self) -> bool {
        self.path == "cfg" && self.tokens.to_string().contains("test")
    }
}

/// A function item (free or associated).
#[derive(Debug, Clone)]
pub struct ItemFn {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The function name.
    pub ident: String,
    /// Span of the name.
    pub span: Span,
    /// Signature tokens between the name and the body (generics,
    /// parameters, return type, where clause).
    pub signature: TokenStream,
    /// The `{ ... }` body; `None` for trait method declarations.
    pub body: Option<Group>,
}

/// A module item.
#[derive(Debug, Clone)]
pub struct ItemMod {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The module name.
    pub ident: String,
    /// Span of the name.
    pub span: Span,
    /// Parsed contents for inline modules; `None` for `mod name;`.
    pub content: Option<Vec<Item>>,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ItemImpl {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The self type's final path segment (`AdoreState` for
    /// `impl<C, M> adore_core::AdoreState<C, M>`).
    pub self_ty: String,
    /// The implemented trait's final path segment, if a trait impl.
    pub trait_: Option<String>,
    /// Span of the `impl` keyword.
    pub span: Span,
    /// Parsed associated items.
    pub items: Vec<Item>,
}

/// A struct declaration.
#[derive(Debug, Clone)]
pub struct ItemStruct {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The struct name.
    pub ident: String,
    /// Span of the name.
    pub span: Span,
    /// Field tokens: brace or paren group; `None` for unit structs.
    pub body: Option<Group>,
}

/// An enum declaration.
#[derive(Debug, Clone)]
pub struct ItemEnum {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The enum name.
    pub ident: String,
    /// Span of the name.
    pub span: Span,
    /// The variant list group.
    pub body: Option<Group>,
}

/// Any other item (use, const, static, type, macro invocation, ...),
/// kept as raw tokens so analyses can still scan it.
#[derive(Debug, Clone)]
pub struct ItemOther {
    /// Outer attributes.
    pub attrs: Vec<Attribute>,
    /// The leading keyword if one was recognized (`use`, `const`, ...).
    pub keyword: Option<String>,
    /// Span of the first token.
    pub span: Span,
    /// The item's tokens, excluding attributes.
    pub tokens: TokenStream,
}

/// One item in a file, module, impl, or trait body.
#[derive(Debug, Clone)]
pub enum Item {
    /// `fn`
    Fn(ItemFn),
    /// `mod`
    Mod(ItemMod),
    /// `impl`
    Impl(ItemImpl),
    /// `struct`
    Struct(ItemStruct),
    /// `enum`
    Enum(ItemEnum),
    /// `trait` (items parsed like a module body)
    Trait(ItemMod),
    /// Anything else
    Other(ItemOther),
}

impl Item {
    /// The item's outer attributes.
    #[must_use]
    pub fn attrs(&self) -> &[Attribute] {
        match self {
            Item::Fn(i) => &i.attrs,
            Item::Mod(i) | Item::Trait(i) => &i.attrs,
            Item::Impl(i) => &i.attrs,
            Item::Struct(i) => &i.attrs,
            Item::Enum(i) => &i.attrs,
            Item::Other(i) => &i.attrs,
        }
    }
}

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    /// Inner (`#![...]`) attributes at the top of the file.
    pub attrs: Vec<Attribute>,
    /// Top-level items.
    pub items: Vec<Item>,
}

/// Parses a whole source file.
///
/// # Errors
///
/// Returns an error when the source fails to lex (unbalanced
/// delimiters, unterminated literals).
///
/// # Examples
///
/// ```
/// let file = syn::parse_file("fn main() { println!(\"hi\"); }").unwrap();
/// assert_eq!(file.items.len(), 1);
/// match &file.items[0] {
///     syn::Item::Fn(f) => assert_eq!(f.ident, "main"),
///     other => panic!("expected fn, got {other:?}"),
/// }
/// ```
pub fn parse_file(src: &str) -> Result<File> {
    let src = src.strip_prefix('\u{feff}').unwrap_or(src);
    // A shebang line is not Rust syntax; drop it before lexing.
    let src_owned;
    let src = if src.starts_with("#!") && !src.starts_with("#![") {
        src_owned = match src.find('\n') {
            Some(nl) => format!("{}{}", " ".repeat(nl), &src[nl..]),
            None => String::new(),
        };
        &src_owned
    } else {
        src
    };
    let stream: TokenStream = src.parse().map_err(|e: proc_macro2::LexError| Error {
        msg: e.to_string(),
        pos: e.position(),
    })?;
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut parser = Parser::new(&tokens);
    let (attrs, items) = parser.parse_items(true)?;
    Ok(File { attrs, items })
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    tokens: &'a [TokenTree],
    pos: usize,
}

const MODIFIERS: &[&str] = &["pub", "default", "unsafe", "async", "extern", "auto"];

impl<'a> Parser<'a> {
    fn new(tokens: &'a [TokenTree]) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&'a TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<&'a TokenTree> {
        let t = self.tokens.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    fn peek_ident(&self) -> Option<String> {
        match self.peek() {
            Some(TokenTree::Ident(i)) => Some(i.to_string()),
            _ => None,
        }
    }

    fn peek_punct(&self) -> Option<char> {
        match self.peek() {
            Some(TokenTree::Punct(p)) => Some(p.as_char()),
            _ => None,
        }
    }

    /// Parses a sequence of items until the token list is exhausted.
    /// Inner attributes are only collected when `top_level` is set.
    fn parse_items(&mut self, top_level: bool) -> Result<(Vec<Attribute>, Vec<Item>)> {
        let mut inner_attrs = Vec::new();
        let mut items = Vec::new();
        while self.peek().is_some() {
            let attrs = self.parse_attrs(&mut inner_attrs, top_level)?;
            if self.peek().is_none() {
                break;
            }
            items.push(self.parse_item(attrs)?);
        }
        Ok((inner_attrs, items))
    }

    /// Collects outer attributes; inner ones go to `inner_attrs` (or are
    /// discarded for non-top-level bodies).
    fn parse_attrs(
        &mut self,
        inner_attrs: &mut Vec<Attribute>,
        top_level: bool,
    ) -> Result<Vec<Attribute>> {
        let mut out = Vec::new();
        loop {
            let Some(TokenTree::Punct(p)) = self.peek() else {
                return Ok(out);
            };
            if p.as_char() != '#' {
                return Ok(out);
            }
            let span = p.span();
            self.bump();
            let inner = if self.peek_punct() == Some('!') {
                self.bump();
                true
            } else {
                false
            };
            let Some(TokenTree::Group(g)) = self.peek() else {
                // A stray `#` (e.g. inside macro fragments): treat as
                // ordinary tokens by rewinding one step and bailing out.
                self.pos -= 1;
                return Ok(out);
            };
            if g.delimiter() != Delimiter::Bracket {
                self.pos -= 1;
                return Ok(out);
            }
            let attr = attribute_from_group(inner, g, span);
            self.bump();
            if inner {
                if top_level {
                    inner_attrs.push(attr);
                }
                // Inner attributes elsewhere (e.g. inside fn bodies we
                // never item-parse) are simply dropped.
            } else {
                out.push(attr);
            }
        }
    }

    fn parse_item(&mut self, attrs: Vec<Attribute>) -> Result<Item> {
        let start_pos = self.pos;
        let span = self.peek().map_or_else(Span::call_site, TokenTree::span);

        // Skip visibility and modifiers: `pub`, `pub(crate)`, `unsafe`,
        // `async`, `const fn`, `extern "C" fn`, ...
        loop {
            match self.peek_ident().as_deref() {
                Some(m) if MODIFIERS.contains(&m) => {
                    self.bump();
                    // pub(crate) / extern "C"
                    match self.peek() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            self.bump();
                        }
                        Some(TokenTree::Literal(_)) if m == "extern" => {
                            self.bump();
                        }
                        _ => {}
                    }
                }
                Some("const") => {
                    // `const fn` is a modifier; `const NAME: ...` an item.
                    let next_is_fn = matches!(
                        self.tokens.get(self.pos + 1),
                        Some(TokenTree::Ident(i)) if *i == "fn"
                    );
                    if next_is_fn {
                        self.bump();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }

        let keyword = self.peek_ident();
        match keyword.as_deref() {
            Some("fn") => self.parse_fn(attrs),
            Some("mod") => self.parse_mod(attrs),
            Some("trait") => self.parse_trait(attrs),
            Some("impl") => self.parse_impl(attrs),
            Some("struct") => self.parse_struct(attrs),
            Some("enum") => self.parse_enum(attrs),
            Some("union") => self.parse_struct(attrs),
            _ => self.parse_other(attrs, keyword, span, start_pos),
        }
    }

    fn parse_fn(&mut self, attrs: Vec<Attribute>) -> Result<Item> {
        self.bump(); // `fn`
        let (ident, span) = self.expect_name("fn")?;
        let mut signature = TokenStream::new();
        let mut body = None;
        while let Some(tt) = self.peek() {
            match tt {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    body = Some(g.clone());
                    self.bump();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == ';' => {
                    self.bump();
                    break;
                }
                _ => {
                    signature.push(self.bump().expect("peeked").clone());
                }
            }
        }
        Ok(Item::Fn(ItemFn {
            attrs,
            ident,
            span,
            signature,
            body,
        }))
    }

    fn parse_mod(&mut self, attrs: Vec<Attribute>) -> Result<Item> {
        self.bump(); // `mod`
        let (ident, span) = self.expect_name("mod")?;
        match self.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().trees().to_vec();
                self.bump();
                let mut sub = Parser::new(&inner);
                let (_, items) = sub.parse_items(false)?;
                Ok(Item::Mod(ItemMod {
                    attrs,
                    ident,
                    span,
                    content: Some(items),
                }))
            }
            _ => {
                // `mod name;`
                if self.peek_punct() == Some(';') {
                    self.bump();
                }
                Ok(Item::Mod(ItemMod {
                    attrs,
                    ident,
                    span,
                    content: None,
                }))
            }
        }
    }

    fn parse_trait(&mut self, attrs: Vec<Attribute>) -> Result<Item> {
        self.bump(); // `trait`
        let (ident, span) = self.expect_name("trait")?;
        // Skip generics / supertraits / where clause up to the body.
        while let Some(tt) = self.peek() {
            match tt {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().trees().to_vec();
                    self.bump();
                    let mut sub = Parser::new(&inner);
                    let (_, items) = sub.parse_items(false)?;
                    return Ok(Item::Trait(ItemMod {
                        attrs,
                        ident,
                        span,
                        content: Some(items),
                    }));
                }
                TokenTree::Punct(p) if p.as_char() == ';' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        Ok(Item::Trait(ItemMod {
            attrs,
            ident,
            span,
            content: None,
        }))
    }

    fn parse_impl(&mut self, attrs: Vec<Attribute>) -> Result<Item> {
        let span = self.peek().map_or_else(Span::call_site, TokenTree::span);
        self.bump(); // `impl`
        let mut header = Vec::new();
        let mut body = None;
        while let Some(tt) = self.peek() {
            match tt {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    body = Some(g.clone());
                    self.bump();
                    break;
                }
                _ => {
                    header.push(self.bump().expect("peeked").clone());
                }
            }
        }
        let (self_ty, trait_) = split_impl_header(&header);
        let items = match &body {
            Some(g) => {
                let inner: Vec<TokenTree> = g.stream().trees().to_vec();
                let mut sub = Parser::new(&inner);
                let (_, items) = sub.parse_items(false)?;
                items
            }
            None => Vec::new(),
        };
        Ok(Item::Impl(ItemImpl {
            attrs,
            self_ty,
            trait_,
            span,
            items,
        }))
    }

    fn parse_struct(&mut self, attrs: Vec<Attribute>) -> Result<Item> {
        self.bump(); // `struct` / `union`
        let (ident, span) = self.expect_name("struct")?;
        let mut body = None;
        while let Some(tt) = self.peek() {
            match tt {
                TokenTree::Group(g)
                    if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis) =>
                {
                    body = Some(g.clone());
                    self.bump();
                    // Tuple structs end with `;` after the paren group.
                    if g.delimiter() == Delimiter::Parenthesis
                        && self.peek_punct() == Some(';')
                    {
                        self.bump();
                    }
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == ';' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        Ok(Item::Struct(ItemStruct {
            attrs,
            ident,
            span,
            body,
        }))
    }

    fn parse_enum(&mut self, attrs: Vec<Attribute>) -> Result<Item> {
        self.bump(); // `enum`
        let (ident, span) = self.expect_name("enum")?;
        let mut body = None;
        while let Some(tt) = self.peek() {
            match tt {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    body = Some(g.clone());
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        Ok(Item::Enum(ItemEnum {
            attrs,
            ident,
            span,
            body,
        }))
    }

    /// Consumes an unrecognized item: tokens up to a top-level `;` or a
    /// trailing brace group (macro_rules!, use, const, static, type, a
    /// macro invocation in item position, ...).
    fn parse_other(
        &mut self,
        attrs: Vec<Attribute>,
        keyword: Option<String>,
        span: Span,
        start_pos: usize,
    ) -> Result<Item> {
        // Include any modifiers already skipped.
        self.pos = start_pos;
        let mut tokens = TokenStream::new();
        let mut saw_any = false;
        while let Some(tt) = self.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ';' => {
                    tokens.push(self.bump().expect("peeked").clone());
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '#' && saw_any => {
                    // Next item's attribute: stop here.
                    break;
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    tokens.push(self.bump().expect("peeked").clone());
                    break;
                }
                _ => {
                    tokens.push(self.bump().expect("peeked").clone());
                    saw_any = true;
                }
            }
        }
        Ok(Item::Other(ItemOther {
            attrs,
            keyword,
            span,
            tokens,
        }))
    }

    fn expect_name(&mut self, what: &str) -> Result<(String, Span)> {
        match self.bump() {
            Some(TokenTree::Ident(i)) => Ok((i.to_string(), i.span())),
            other => Err(Error {
                msg: format!("expected {what} name, found {other:?}"),
                pos: other
                    .map(TokenTree::span)
                    .unwrap_or_else(Span::call_site)
                    .start(),
            }),
        }
    }
}

fn attribute_from_group(inner: bool, g: &Group, span: Span) -> Attribute {
    let trees = g.stream().trees();
    let mut path = String::new();
    let mut i = 0;
    while let Some(tt) = trees.get(i) {
        match tt {
            TokenTree::Ident(id) => {
                path.push_str(&id.to_string());
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == ':' => {
                path.push(':');
                i += 1;
            }
            _ => break,
        }
    }
    let tokens: TokenStream = trees[i..].iter().cloned().collect();
    Attribute {
        inner,
        path,
        tokens,
        span,
    }
}

/// Splits an impl header (everything between `impl` and the body) into
/// `(self_type, trait)` final path segments.
fn split_impl_header(header: &[TokenTree]) -> (String, Option<String>) {
    // Strip leading generics `<...>` by angle-bracket counting; `->`
    // inside them must not count its `>`.
    let mut i = 0;
    if matches!(header.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        let mut prev_dash = false;
        for (j, tt) in header.iter().enumerate() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if !prev_dash => {
                        depth -= 1;
                        if depth == 0 {
                            i = j + 1;
                            break;
                        }
                    }
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            } else {
                prev_dash = false;
            }
        }
    }
    let rest = &header[i..];

    // Cut a trailing where clause (top-level `where` ident).
    let mut end = rest.len();
    let mut depth = 0i32;
    let mut prev_dash = false;
    for (j, tt) in rest.iter().enumerate() {
        match tt {
            TokenTree::Punct(p) => {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if !prev_dash => depth -= 1,
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            }
            TokenTree::Ident(id) if depth == 0 && *id == "where" => {
                end = j;
                break;
            }
            _ => prev_dash = false,
        }
    }
    let rest = &rest[..end];

    // Split at a top-level `for` (trait impls); `for<'a>` HRTBs appear
    // inside generics where depth > 0, so top-level `for` is reliable.
    let mut split = None;
    let mut depth = 0i32;
    let mut prev_dash = false;
    for (j, tt) in rest.iter().enumerate() {
        match tt {
            TokenTree::Punct(p) => {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if !prev_dash => depth -= 1,
                    _ => {}
                }
                prev_dash = p.as_char() == '-';
            }
            TokenTree::Ident(id) if depth == 0 && *id == "for" => {
                split = Some(j);
                prev_dash = false;
            }
            _ => prev_dash = false,
        }
    }
    match split {
        Some(j) => (
            last_path_segment(&rest[j + 1..]),
            Some(last_path_segment(&rest[..j])),
        ),
        None => (last_path_segment(rest), None),
    }
}

/// The final path segment of a type path, before its generic arguments:
/// `adore_core::AdoreState<C, M>` → `AdoreState`.
fn last_path_segment(tokens: &[TokenTree]) -> String {
    let mut name = String::new();
    for tt in tokens {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "dyn" || s == "mut" {
                    continue;
                }
                name = s;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => break,
            _ => {}
        }
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Vec<Item> {
        parse_file(src).expect("parses").items
    }

    #[test]
    fn functions_with_bodies_and_attrs() {
        let its = items("#[must_use]\npub fn f(x: u32) -> u32 { x + 1 }\nfn g();");
        match &its[0] {
            Item::Fn(f) => {
                assert_eq!(f.ident, "f");
                assert!(f.attrs[0].is("must_use"));
                assert!(f.body.is_some());
                assert_eq!(f.span.start().line, 2);
            }
            other => panic!("expected fn, got {other:?}"),
        }
        match &its[1] {
            Item::Fn(f) => assert!(f.body.is_none()),
            other => panic!("expected fn, got {other:?}"),
        }
    }

    #[test]
    fn modules_nest_and_carry_cfg_test() {
        let its = items("#[cfg(test)]\nmod tests { use super::*; fn helper() {} }");
        match &its[0] {
            Item::Mod(m) => {
                assert!(m.attrs[0].is_cfg_test());
                let content = m.content.as_ref().expect("inline");
                assert_eq!(content.len(), 2);
                assert!(matches!(content[1], Item::Fn(_)));
            }
            other => panic!("expected mod, got {other:?}"),
        }
    }

    #[test]
    fn impl_headers_resolve_self_type_and_trait() {
        let its = items(
            "impl<C: Ord, M> adore_core::AdoreState<C, M> { fn a() {} }\n\
             impl<T> Display for Wrapper<T> where T: Debug { }",
        );
        match &its[0] {
            Item::Impl(i) => {
                assert_eq!(i.self_ty, "AdoreState");
                assert!(i.trait_.is_none());
                assert_eq!(i.items.len(), 1);
            }
            other => panic!("expected impl, got {other:?}"),
        }
        match &its[1] {
            Item::Impl(i) => {
                assert_eq!(i.self_ty, "Wrapper");
                assert_eq!(i.trait_.as_deref(), Some("Display"));
            }
            other => panic!("expected impl, got {other:?}"),
        }
    }

    #[test]
    fn structs_enums_and_others() {
        let its = items(
            "pub struct P { x: u32 }\nstruct Unit;\nstruct Tup(u8, u8);\n\
             enum E { A, B }\nuse std::fmt;\nconst N: usize = 3;",
        );
        assert!(matches!(&its[0], Item::Struct(s) if s.ident == "P" && s.body.is_some()));
        assert!(matches!(&its[1], Item::Struct(s) if s.body.is_none()));
        assert!(matches!(&its[2], Item::Struct(s) if s.body.is_some()));
        assert!(matches!(&its[3], Item::Enum(e) if e.ident == "E"));
        assert!(matches!(&its[4], Item::Other(o) if o.keyword.as_deref() == Some("use")));
        assert!(matches!(&its[5], Item::Other(o) if o.keyword.as_deref() == Some("const")));
    }

    #[test]
    fn inner_attrs_collect_at_top_level() {
        let file = parse_file("#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nfn a() {}")
            .expect("parses");
        assert_eq!(file.attrs.len(), 2);
        assert!(file.attrs[0].is("forbid"));
        assert_eq!(file.items.len(), 1);
    }

    #[test]
    fn const_fn_and_extern_fn_are_functions() {
        let its = items("pub const fn k() -> u8 { 0 }\npub extern \"C\" fn e() {}");
        assert!(matches!(&its[0], Item::Fn(f) if f.ident == "k"));
        assert!(matches!(&its[1], Item::Fn(f) if f.ident == "e"));
    }

    #[test]
    fn macro_invocations_in_item_position() {
        let its = items("macro_rules! m { () => {}; }\nthread_local! { static X: u8 = 0; }");
        assert!(matches!(&its[0], Item::Other(_)));
        assert!(matches!(&its[1], Item::Other(_)));
    }
}
