//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Prints and parses the [`serde::Value`] model. The compact printer
//! matches real serde_json byte-for-byte on the constructs the
//! workspace serializes (`{"k":v}` with no spaces — tests pattern-match
//! on that); the pretty printer uses the same two-space indent style.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

pub use serde::Value as JsonValue;

/// Serializes `value` as compact JSON (`{"k":v}`, no whitespace).
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` keeps API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.ser_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` keeps API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.ser_value(), 0, &mut out);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// On malformed JSON, trailing input, or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::deser_value(&v)?)
}

// ---- printing ---------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(x: f64, out: &mut String) {
    if x.is_finite() {
        let s = format!("{x}");
        let needs_dot = !s.contains('.') && !s.contains('e') && !s.contains('E');
        out.push_str(&s);
        if needs_dot {
            out.push_str(".0");
        }
    } else {
        // Real serde_json errors on non-finite floats; the workspace
        // never serializes them, so print null for robustness.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_pretty(v: &Value, level: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(level + 1, out);
                write_pretty(item, level + 1, out);
            }
            out.push('\n');
            indent(level, out);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(level + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, level + 1, out);
            }
            out.push('\n');
            indent(level, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---- parsing ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(mag) = text.strip_prefix('-') {
                if let Ok(n) = mag.parse::<u64>() {
                    if n == 0 {
                        return Ok(Value::UInt(0));
                    }
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::Int(i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_matches_serde_json_conventions() {
        let v = Value::Object(vec![
            ("time".to_string(), Value::UInt(1)),
            ("neg".to_string(), Value::Int(-3)),
            (
                "arr".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("s".to_string(), Value::Str("a\"b".to_string())),
        ]);
        let mut out = String::new();
        write_compact(&v, &mut out);
        assert_eq!(out, r#"{"time":1,"neg":-3,"arr":[true,null],"s":"a\"b"}"#);
    }

    #[test]
    fn round_trips_through_text() {
        let text = r#"{"a":[1,-2,3.5,"x",{"b":false}],"c":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_prints_nested_structures() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&Value::Float(1.0)).unwrap(), "1.0");
        assert_eq!(to_string(&Value::Float(0.25)).unwrap(), "0.25");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v: Value = from_str(r#""A😀\n""#).unwrap();
        assert_eq!(v, Value::Str("A\u{1F600}\n".to_string()));
    }
}
