//! Offline stand-in for the `proc-macro2` crate (see `vendor/README.md`).
//!
//! Implements the part of the real API that `syn`'s stand-in and
//! `adore-lint` consume: lexing Rust source into a [`TokenStream`] of
//! [`TokenTree`]s — groups, identifiers, punctuation, and literals —
//! with [`Span`]s that carry real line/column positions (the real crate
//! only exposes those on its `span-locations` feature).
//!
//! Comments are discarded during lexing, exactly like the real lexer;
//! `adore-lint` scans raw source lines separately for its suppression
//! pragmas. Doc comments are *also* discarded rather than being
//! converted to `#[doc = "..."]` attributes — a divergence from rustc
//! that none of our consumers observe, since they never inspect doc
//! attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::str::FromStr;

/// A line/column position in the original source.
///
/// `line` is 1-based and `column` is 0-based, matching the real crate's
/// `span-locations` convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LineColumn {
    /// 1-based line number.
    pub line: usize,
    /// 0-based UTF-8 column.
    pub column: usize,
}

/// A region of source code, carried by every token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    start: LineColumn,
    end: LineColumn,
}

impl Span {
    /// A span pointing at the start of an empty source ("call site").
    #[must_use]
    pub fn call_site() -> Self {
        Span {
            start: LineColumn { line: 1, column: 0 },
            end: LineColumn { line: 1, column: 0 },
        }
    }

    /// The position where this token begins.
    #[must_use]
    pub fn start(&self) -> LineColumn {
        self.start
    }

    /// The position just past the end of this token.
    #[must_use]
    pub fn end(&self) -> LineColumn {
        self.end
    }
}

/// How a [`Punct`] relates to the following token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spacing {
    /// The next character continues the punctuation run (`=` in `==`).
    Joint,
    /// The punctuation character stands alone.
    Alone,
}

/// The bracket style of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delimiter {
    /// `( ... )`
    Parenthesis,
    /// `{ ... }`
    Brace,
    /// `[ ... ]`
    Bracket,
    /// An invisible delimiter (never produced by this lexer).
    None,
}

/// An identifier or keyword.
#[derive(Debug, Clone)]
pub struct Ident {
    sym: String,
    span: Span,
}

impl Ident {
    /// Creates an identifier with the given span.
    #[must_use]
    pub fn new(sym: &str, span: Span) -> Self {
        Ident {
            sym: sym.to_string(),
            span,
        }
    }

    /// The span of the identifier.
    #[must_use]
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.sym)
    }
}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        self.sym == other
    }
}

impl PartialEq<&str> for Ident {
    fn eq(&self, other: &&str) -> bool {
        self.sym == *other
    }
}

/// A single punctuation character.
#[derive(Debug, Clone)]
pub struct Punct {
    ch: char,
    spacing: Spacing,
    span: Span,
}

impl Punct {
    /// The character itself.
    #[must_use]
    pub fn as_char(&self) -> char {
        self.ch
    }

    /// Whether the next token continues a multi-character operator.
    #[must_use]
    pub fn spacing(&self) -> Spacing {
        self.spacing
    }

    /// The span of the character.
    #[must_use]
    pub fn span(&self) -> Span {
        self.span
    }
}

/// A literal: string, raw string, byte string, char, or number.
///
/// The original source text is preserved verbatim in
/// [`Literal::text`]; no unescaping is performed (none of our
/// consumers need literal *values*).
#[derive(Debug, Clone)]
pub struct Literal {
    text: String,
    span: Span,
}

impl Literal {
    /// The literal exactly as written in the source.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The span of the literal.
    #[must_use]
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// A delimited subsequence of tokens.
#[derive(Debug, Clone)]
pub struct Group {
    delimiter: Delimiter,
    stream: TokenStream,
    span: Span,
}

impl Group {
    /// The bracket style.
    #[must_use]
    pub fn delimiter(&self) -> Delimiter {
        self.delimiter
    }

    /// The tokens between the delimiters.
    #[must_use]
    pub fn stream(&self) -> &TokenStream {
        &self.stream
    }

    /// The span from opening to closing delimiter.
    #[must_use]
    pub fn span(&self) -> Span {
        self.span
    }
}

/// A single token tree.
#[derive(Debug, Clone)]
pub enum TokenTree {
    /// A delimited group of tokens.
    Group(Group),
    /// An identifier or keyword.
    Ident(Ident),
    /// A punctuation character.
    Punct(Punct),
    /// A literal.
    Literal(Literal),
}

impl TokenTree {
    /// The span of the token.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            TokenTree::Group(g) => g.span(),
            TokenTree::Ident(i) => i.span(),
            TokenTree::Punct(p) => p.span(),
            TokenTree::Literal(l) => l.span(),
        }
    }
}

/// A sequence of token trees.
#[derive(Debug, Clone, Default)]
pub struct TokenStream {
    trees: Vec<TokenTree>,
}

impl TokenStream {
    /// An empty stream.
    #[must_use]
    pub fn new() -> Self {
        TokenStream::default()
    }

    /// Whether the stream holds no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Number of top-level token trees.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// The top-level token trees as a slice.
    #[must_use]
    pub fn trees(&self) -> &[TokenTree] {
        &self.trees
    }

    /// Appends one token tree.
    pub fn push(&mut self, tt: TokenTree) {
        self.trees.push(tt);
    }
}

impl IntoIterator for TokenStream {
    type Item = TokenTree;
    type IntoIter = std::vec::IntoIter<TokenTree>;
    fn into_iter(self) -> Self::IntoIter {
        self.trees.into_iter()
    }
}

impl FromIterator<TokenTree> for TokenStream {
    fn from_iter<I: IntoIterator<Item = TokenTree>>(iter: I) -> Self {
        TokenStream {
            trees: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for TokenStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut joint = true; // no leading space
        for tt in &self.trees {
            if !joint {
                f.write_str(" ")?;
            }
            joint = false;
            match tt {
                TokenTree::Group(g) => {
                    let (open, close) = match g.delimiter() {
                        Delimiter::Parenthesis => ("(", ")"),
                        Delimiter::Brace => ("{ ", " }"),
                        Delimiter::Bracket => ("[", "]"),
                        Delimiter::None => ("", ""),
                    };
                    if g.stream().is_empty() {
                        let trimmed: String =
                            format!("{open}{close}").split_whitespace().collect();
                        f.write_str(&trimmed)?;
                    } else {
                        write!(f, "{open}{}{close}", g.stream())?;
                    }
                }
                TokenTree::Ident(i) => write!(f, "{i}")?,
                TokenTree::Punct(p) => {
                    write!(f, "{}", p.as_char())?;
                    joint = p.spacing() == Spacing::Joint;
                }
                TokenTree::Literal(l) => write!(f, "{l}")?,
            }
        }
        Ok(())
    }
}

/// A lexing failure with its position.
#[derive(Debug, Clone)]
pub struct LexError {
    msg: String,
    pos: LineColumn,
}

impl LexError {
    /// Where lexing failed.
    #[must_use]
    pub fn position(&self) -> LineColumn {
        self.pos
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}:{}", self.msg, self.pos.line, self.pos.column)
    }
}

impl std::error::Error for LexError {}

impl FromStr for TokenStream {
    type Err = LexError;

    /// Lexes Rust source into a token stream.
    ///
    /// # Examples
    ///
    /// ```
    /// use proc_macro2::TokenStream;
    /// let ts: TokenStream = "fn f() { x.unwrap() }".parse().unwrap();
    /// assert_eq!(ts.to_string(), "fn f () { x . unwrap () }");
    /// ```
    fn from_str(src: &str) -> Result<Self, LexError> {
        let mut lexer = Lexer::new(src);
        let stream = lexer.lex_stream(None)?;
        if lexer.peek().is_some() {
            return Err(lexer.error("unexpected closing delimiter"));
        }
        Ok(stream)
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 0,
        }
    }

    fn here(&self) -> LineColumn {
        LineColumn {
            line: self.line,
            column: self.col,
        }
    }

    fn error(&self, msg: &str) -> LexError {
        LexError {
            msg: msg.to_string(),
            pos: self.here(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek_at(1) == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek_at(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some('/'), Some('*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lexes until EOF (outermost) or the matching close delimiter.
    fn lex_stream(&mut self, close: Option<char>) -> Result<TokenStream, LexError> {
        let mut out = TokenStream::new();
        loop {
            self.skip_trivia()?;
            let Some(c) = self.peek() else {
                if close.is_some() {
                    return Err(self.error("unbalanced delimiter: unexpected end of input"));
                }
                return Ok(out);
            };
            if matches!(c, ')' | ']' | '}') {
                if close == Some(c) {
                    return Ok(out);
                }
                if close.is_none() {
                    // Leave it for the caller, which reports the error.
                    return Ok(out);
                }
                return Err(self.error("mismatched closing delimiter"));
            }
            let tt = self.lex_token()?;
            out.push(tt);
        }
    }

    fn lex_token(&mut self) -> Result<TokenTree, LexError> {
        let start = self.here();
        let c = self.peek().expect("caller checked non-empty");

        // Delimited groups.
        if let Some((delim, close)) = match c {
            '(' => Some((Delimiter::Parenthesis, ')')),
            '[' => Some((Delimiter::Bracket, ']')),
            '{' => Some((Delimiter::Brace, '}')),
            _ => None,
        } {
            self.bump();
            let stream = self.lex_stream(Some(close))?;
            self.bump(); // the close delimiter (lex_stream verified it)
            return Ok(TokenTree::Group(Group {
                delimiter: delim,
                stream,
                span: Span {
                    start,
                    end: self.here(),
                },
            }));
        }

        // String-ish literals and raw identifiers starting with letters.
        if c == '"' {
            return self.lex_string(start);
        }
        if c == 'r' || c == 'b' || c == 'c' {
            if let Some(tt) = self.try_lex_prefixed(start)? {
                return Ok(tt);
            }
        }
        if c == '\'' {
            return self.lex_quote(start);
        }
        if c.is_ascii_digit() {
            return self.lex_number(start);
        }
        if is_ident_start(c) {
            return Ok(self.lex_ident(start));
        }

        // Everything else is punctuation.
        self.bump();
        let spacing = match self.peek() {
            Some(n) if is_punct_char(n) => Spacing::Joint,
            _ => Spacing::Alone,
        };
        Ok(TokenTree::Punct(Punct {
            ch: c,
            spacing,
            span: Span {
                start,
                end: self.here(),
            },
        }))
    }

    /// `r"..."`, `r#"..."#`, `r#ident`, `b"..."`, `br#"..."#`, `b'x'`,
    /// `c"..."` — or `None` when the `r`/`b`/`c` begins a plain ident.
    fn try_lex_prefixed(&mut self, start: LineColumn) -> Result<Option<TokenTree>, LexError> {
        let c = self.peek().expect("caller checked");
        let c1 = self.peek_at(1);
        let c2 = self.peek_at(2);
        match (c, c1, c2) {
            // Raw identifier r#foo (but not raw string r#"...).
            ('r', Some('#'), Some(n)) if is_ident_start(n) => {
                self.bump();
                self.bump();
                Ok(Some(self.lex_ident(start)))
            }
            ('r', Some('"'), _) | ('r', Some('#'), Some('"')) | ('r', Some('#'), Some('#')) => {
                // lex_raw_string consumes the leading `r` itself.
                Ok(Some(self.lex_raw_string(start)?))
            }
            ('b', Some('r'), Some('"')) | ('b', Some('r'), Some('#')) => {
                self.bump(); // the `b`; lex_raw_string consumes the `r`
                Ok(Some(self.lex_raw_string(start)?))
            }
            ('b', Some('"'), _) | ('c', Some('"'), _) => {
                self.bump();
                Ok(Some(self.lex_string(start)?))
            }
            ('b', Some('\''), _) => {
                self.bump();
                self.bump(); // opening quote
                if self.peek() == Some('\\') {
                    self.bump();
                    self.bump();
                } else {
                    self.bump();
                }
                if self.peek() != Some('\'') {
                    return Err(self.error("unterminated byte literal"));
                }
                self.bump();
                Ok(Some(self.literal_from(start)))
            }
            _ => Ok(None),
        }
    }

    fn lex_string(&mut self, start: LineColumn) -> Result<TokenTree, LexError> {
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump();
                }
                Some('"') => break,
                Some(_) => {}
                None => return Err(self.error("unterminated string literal")),
            }
        }
        // Literal suffix, e.g. "..."suffix (rare; keep idents attached).
        self.consume_ident_run();
        Ok(self.literal_from(start))
    }

    fn lex_raw_string(&mut self, start: LineColumn) -> Result<TokenTree, LexError> {
        self.bump(); // the 'r' was NOT yet consumed by callers; this is it
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek() != Some('"') {
            return Err(self.error("malformed raw string"));
        }
        self.bump();
        'scan: loop {
            match self.bump() {
                Some('"') => {
                    for i in 0..hashes {
                        if self.peek_at(i) != Some('#') {
                            continue 'scan;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                Some(_) => {}
                None => return Err(self.error("unterminated raw string")),
            }
        }
        self.consume_ident_run();
        Ok(self.literal_from(start))
    }

    /// `'x'`, `'\n'` char literals, or `'lifetime` (punct + ident).
    fn lex_quote(&mut self, start: LineColumn) -> Result<TokenTree, LexError> {
        self.bump(); // the quote
        match self.peek() {
            Some('\\') => {
                // Escaped char literal.
                self.bump();
                self.bump();
                while self.peek().is_some() && self.peek() != Some('\'') {
                    self.bump(); // \u{...} etc.
                }
                if self.peek() != Some('\'') {
                    return Err(self.error("unterminated char literal"));
                }
                self.bump();
                Ok(self.literal_from(start))
            }
            Some(c) if is_ident_start(c) => {
                // Could be 'a' (char) or 'a (lifetime): a char literal has
                // exactly one ident char followed by a closing quote.
                let mut len = 0usize;
                while self
                    .peek_at(len)
                    .is_some_and(is_ident_continue)
                {
                    len += 1;
                }
                if len == 1 && self.peek_at(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    Ok(self.literal_from(start))
                } else {
                    // Lifetime: emit a joint quote punct; the following
                    // ident is produced by the next lex_token call.
                    Ok(TokenTree::Punct(Punct {
                        ch: '\'',
                        spacing: Spacing::Joint,
                        span: Span {
                            start,
                            end: self.here(),
                        },
                    }))
                }
            }
            Some(c) if c != '\'' => {
                // Non-alphanumeric char literal like '+' or ' '.
                self.bump();
                if self.peek() != Some('\'') {
                    return Err(self.error("unterminated char literal"));
                }
                self.bump();
                Ok(self.literal_from(start))
            }
            _ => Err(self.error("empty char literal")),
        }
    }

    fn lex_number(&mut self, start: LineColumn) -> Result<TokenTree, LexError> {
        // Integer part (decimal or prefixed).
        if self.peek() == Some('0')
            && matches!(self.peek_at(1), Some('x') | Some('o') | Some('b'))
        {
            self.bump();
            self.bump();
        }
        self.consume_digit_run();
        // Fractional part: consume '.' only when a digit follows, so
        // ranges (1..n) and method calls (1.max(x)) lex as separate tokens.
        if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            self.consume_digit_run();
        }
        // Exponent.
        if matches!(self.peek(), Some('e') | Some('E'))
            && (self.peek_at(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek_at(1), Some('+') | Some('-'))
                    && self.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
        {
            self.bump();
            if matches!(self.peek(), Some('+') | Some('-')) {
                self.bump();
            }
            self.consume_digit_run();
        }
        // Suffix (u32, f64, usize, ...).
        self.consume_ident_run();
        Ok(self.literal_tt(start))
    }

    fn lex_ident(&mut self, start: LineColumn) -> TokenTree {
        self.consume_ident_run();
        let text = self.text_from(start);
        TokenTree::Ident(Ident {
            sym: text,
            span: Span {
                start,
                end: self.here(),
            },
        })
    }

    fn consume_digit_run(&mut self) {
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
        {
            self.bump();
        }
    }

    fn consume_ident_run(&mut self) {
        while self.peek().is_some_and(is_ident_continue) {
            self.bump();
        }
    }

    /// Source text from `start` to the current position (same line spans
    /// reconstruct from columns; multi-line falls back to a placeholder —
    /// only string literals can span lines and consumers don't read them).
    fn text_from(&self, start: LineColumn) -> String {
        // Recover by replaying offsets: we track only line/col, so walk
        // chars backwards is impractical; instead record by position.
        // `pos` is a char index; find the char index of `start` by
        // scanning: expensive in theory, but `text_from` is only called
        // for single tokens, so we track a simpler invariant: callers
        // bump linearly and the token began `self.pos - n` chars ago
        // where n is unknown. To keep this O(1) we re-derive from spans:
        // tokens never contain newlines except strings, which keep a
        // placeholder body.
        if start.line == self.line {
            let n = self.col - start.column;
            self.chars[self.pos - n..self.pos].iter().collect()
        } else {
            "\"...\"".to_string()
        }
    }

    fn literal_from(&self, start: LineColumn) -> TokenTree {
        self.literal_tt(start)
    }

    fn literal_tt(&self, start: LineColumn) -> TokenTree {
        TokenTree::Literal(Literal {
            text: self.text_from(start),
            span: Span {
                start,
                end: self.here(),
            },
        })
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

fn is_punct_char(c: char) -> bool {
    matches!(
        c,
        '!' | '#'
            | '$'
            | '%'
            | '&'
            | '\''
            | '*'
            | '+'
            | ','
            | '-'
            | '.'
            | '/'
            | ':'
            | ';'
            | '<'
            | '='
            | '>'
            | '?'
            | '@'
            | '^'
            | '|'
            | '~'
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> TokenStream {
        src.parse().expect("lexes")
    }

    #[test]
    fn idents_puncts_and_groups_roundtrip() {
        let ts = lex("fn main() { let x = a.b; }");
        assert_eq!(ts.to_string(), "fn main () { let x = a . b ; }");
    }

    #[test]
    fn comments_are_dropped() {
        let ts = lex("a // line\n/* block /* nested */ */ b");
        assert_eq!(ts.to_string(), "a b");
    }

    #[test]
    fn strings_chars_and_lifetimes() {
        let ts = lex(r#"f("hi\"", 'x', '\n', &'a str)"#);
        assert_eq!(ts.to_string(), r#"f ("hi\"" , 'x' , '\n' , &'a str)"#);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let ts = lex(r##"r#"raw "str""# r#type b"bytes""##);
        assert_eq!(ts.len(), 3);
        let ts = lex("r#fn");
        match &ts.trees()[0] {
            TokenTree::Ident(i) => assert_eq!(i.to_string(), "r#fn"),
            other => panic!("expected ident, got {other:?}"),
        }
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        assert_eq!(lex("1..n").to_string(), "1 .. n");
        assert_eq!(lex("1.5f64 + 0x_ff").to_string(), "1.5f64 + 0x_ff");
        assert_eq!(lex("1.max(2)").to_string(), "1 . max (2)");
    }

    #[test]
    fn spans_carry_line_and_column() {
        let ts = lex("a\n  bcd");
        let b = &ts.trees()[1];
        assert_eq!(b.span().start(), LineColumn { line: 2, column: 2 });
        assert_eq!(b.span().end(), LineColumn { line: 2, column: 5 });
    }

    #[test]
    fn unbalanced_input_is_an_error() {
        assert!("fn f( {".parse::<TokenStream>().is_err());
        assert!("a }".parse::<TokenStream>().is_err());
    }

    #[test]
    fn spacing_distinguishes_joint_runs() {
        let ts = lex("a == b = c");
        let puncts: Vec<(char, Spacing)> = ts
            .trees()
            .iter()
            .filter_map(|t| match t {
                TokenTree::Punct(p) => Some((p.as_char(), p.spacing())),
                _ => None,
            })
            .collect();
        assert_eq!(
            puncts,
            vec![
                ('=', Spacing::Joint),
                ('=', Spacing::Alone),
                ('=', Spacing::Alone)
            ]
        );
    }
}
