//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the bare `proc_macro` API (no `syn`/`quote` available
//! offline). Supports what the workspace's types use: named structs,
//! tuple structs (newtypes are transparent), unit structs, and enums
//! with unit / tuple / named-field variants, all with plain type
//! parameters. Serde attributes (`#[serde(...)]`) are not supported —
//! the workspace does not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One generic parameter of the deriving type.
struct Param {
    /// The bare name (`C`, `'a`, `N`).
    name: String,
    /// The declaration with bounds but without defaults (`C: Clone`).
    decl: String,
    /// Whether a `Serialize`/`Deserialize` bound applies (type params only).
    needs_bound: bool,
}

enum Body {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    params: Vec<Param>,
    body: Body,
}

// ---- token-stream parsing --------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    /// Skips `#[...]` attributes (including doc comments).
    fn skip_attrs(&mut self) {
        while self.is_punct('#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                other => panic!("serde derive: malformed attribute, found {other:?}"),
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in path)`.
    fn skip_vis(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }
}

/// Parses `<...>` generics into parameter records. The cursor must sit on
/// the opening `<`.
fn parse_generics(c: &mut Cursor) -> Vec<Param> {
    c.next(); // consume '<'
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut current: Vec<TokenTree> = Vec::new();
    loop {
        let t = c
            .next()
            .unwrap_or_else(|| panic!("serde derive: unterminated generics"));
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        if !current.is_empty() {
                            params.push(param_from_tokens(&current));
                        }
                        return params;
                    }
                }
                ',' if depth == 1 => {
                    params.push(param_from_tokens(&current));
                    current.clear();
                    continue;
                }
                _ => {}
            }
        }
        current.push(t);
    }
}

/// Builds a [`Param`] from one comma-separated generics segment.
fn param_from_tokens(tokens: &[TokenTree]) -> Param {
    // Drop a trailing `= Default` (defaults are illegal in impls).
    let mut cut = tokens.len();
    let mut angle = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                '=' if angle == 0 => {
                    cut = i;
                    break;
                }
                _ => {}
            }
        }
    }
    let tokens = &tokens[..cut];
    let decl = render(tokens);
    let (name, needs_bound) = match tokens.first() {
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
            let lt = match tokens.get(1) {
                Some(TokenTree::Ident(i)) => format!("'{i}"),
                other => panic!("serde derive: malformed lifetime, found {other:?}"),
            };
            (lt, false)
        }
        Some(TokenTree::Ident(i)) if i.to_string() == "const" => {
            let n = match tokens.get(1) {
                Some(TokenTree::Ident(i)) => i.to_string(),
                other => panic!("serde derive: malformed const param, found {other:?}"),
            };
            (n, false)
        }
        Some(TokenTree::Ident(i)) => (i.to_string(), true),
        other => panic!("serde derive: malformed generic param, found {other:?}"),
    };
    Param {
        name,
        decl,
        needs_bound,
    }
}

fn render(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Parses named fields inside a brace group: returns field names in
/// declaration order.
fn parse_named_fields(g: &proc_macro::Group) -> Vec<String> {
    let mut c = Cursor::new(g.stream());
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            return fields;
        }
        c.skip_vis();
        fields.push(c.expect_ident("field name"));
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected ':' after field, found {other:?}"),
        }
        // Skip the type: everything up to a comma at angle depth 0.
        let mut angle = 0usize;
        loop {
            match c.peek() {
                None => return fields,
                Some(TokenTree::Punct(p)) => {
                    let ch = p.as_char();
                    if ch == '<' {
                        angle += 1;
                    } else if ch == '>' {
                        angle = angle.saturating_sub(1);
                    } else if ch == ',' && angle == 0 {
                        c.next();
                        break;
                    }
                    c.next();
                }
                Some(_) => {
                    c.next();
                }
            }
        }
    }
}

/// Counts tuple fields inside a paren group (top-level commas + 1).
fn count_tuple_fields(g: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0usize;
    let mut count = 1;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(g: &proc_macro::Group) -> Vec<Variant> {
    let mut c = Cursor::new(g.stream());
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            return variants;
        }
        let name = c.expect_ident("variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(vg);
                c.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(vg);
                c.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        if c.is_punct('=') {
            while !c.at_end() && !c.is_punct(',') {
                c.next();
            }
        }
        if c.is_punct(',') {
            c.next();
        }
        variants.push(Variant { name, shape });
    }
}

fn parse_input(ts: TokenStream) -> Input {
    let mut c = Cursor::new(ts);
    c.skip_attrs();
    c.skip_vis();
    let keyword = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    let params = if c.is_punct('<') {
        parse_generics(&mut c)
    } else {
        Vec::new()
    };
    // Skip a `where` clause if present (bounds are re-derived from the
    // parameter declarations; the workspace's derived types have none).
    if c.is_ident("where") {
        while !c.at_end() {
            match c.peek() {
                Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Brace && keyword != "enum" =>
                {
                    break
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => break,
                _ => {
                    c.next();
                }
            }
        }
    }
    let body = if keyword == "enum" {
        match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g))
            }
            other => panic!("serde derive: expected enum body, found {other:?}"),
        }
    } else {
        match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            None => Body::Unit,
            other => panic!("serde derive: expected struct body, found {other:?}"),
        }
    };
    Input { name, params, body }
}

// ---- code generation --------------------------------------------------

/// `impl<decls> Trait for Name<names> where P: Trait, ...` header parts.
fn impl_header(input: &Input, trait_path: &str) -> (String, String, String) {
    let decls: Vec<&str> = input.params.iter().map(|p| p.decl.as_str()).collect();
    let names: Vec<&str> = input.params.iter().map(|p| p.name.as_str()).collect();
    let impl_generics = if decls.is_empty() {
        String::new()
    } else {
        format!("<{}>", decls.join(", "))
    };
    let type_generics = if names.is_empty() {
        String::new()
    } else {
        format!("<{}>", names.join(", "))
    };
    let bounds: Vec<String> = input
        .params
        .iter()
        .filter(|p| p.needs_bound)
        .map(|p| format!("{}: {trait_path}", p.name))
        .collect();
    let where_clause = if bounds.is_empty() {
        String::new()
    } else {
        format!("where {}", bounds.join(", "))
    };
    (impl_generics, type_generics, where_clause)
}

/// Derives `Serialize` (see the crate docs for supported shapes).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (ig, tg, wc) = impl_header(&input, "::serde::Serialize");
    let name = &input.name;
    let body = match &input.body {
        Body::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::ser_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Body::Tuple(1) => "::serde::Serialize::ser_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::ser_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "Self::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "Self::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::ser_value(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::ser_value(__f{i})"))
                                .collect();
                            format!(
                                "Self::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::ser_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl{ig} ::serde::Serialize for {name}{tg} {wc} {{\n\
         fn ser_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("serde derive: generated impl parses")
}

/// Derives `Deserialize` (see the crate docs for supported shapes).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let (ig, tg, wc) = impl_header(&input, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.body {
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deser_value(\
                         ::serde::value::get_field(__obj, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::de::Error::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::deser_value(__v)?))")
        }
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deser_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = ::serde::value::get_tuple(__v, {n})?;\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::Unit => format!(
            "match __v {{ ::serde::Value::Null => Ok({name}), _ => \
             Err(::serde::de::Error::custom(\"expected null for {name}\")) }}"
        ),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => Ok(Self::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok(Self::{vn}(\
                             ::serde::Deserialize::deser_value(__inner)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deser_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let __items = ::serde::value::get_tuple(__inner, {n})?;\n\
                                 Ok(Self::{vn}({}))\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deser_value(\
                                         ::serde::value::get_field(__obj, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let __obj = __inner.as_object().ok_or_else(|| \
                                 ::serde::de::Error::custom(\
                                 \"expected object for variant {vn}\"))?;\n\
                                 Ok(Self::{vn} {{ {} }})\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit}\n\
                 __other => Err(::serde::de::Error::custom(::std::format!(\n\
                 \"unknown unit variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 match __tag.as_str() {{\n\
                 {data}\n\
                 __other => Err(::serde::de::Error::custom(::std::format!(\n\
                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::de::Error::custom(::std::format!(\n\
                 \"expected variant of {name}, found {{}}\", __other.kind()))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    let out = format!(
        "impl{ig} ::serde::Deserialize for {name}{tg} {wc} {{\n\
         fn deser_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("serde derive: generated impl parses")
}
