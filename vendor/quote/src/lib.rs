//! Offline stand-in for the `quote` crate (see `vendor/README.md`).
//!
//! Supports the literal-token subset of `quote!`: the macro body is
//! stringified and re-lexed through the `proc-macro2` stand-in. `#var`
//! interpolation and repetition (`#(...)*`) are **not** supported — the
//! workspace only uses `quote!` to build fixed token streams in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use proc_macro2::TokenStream;

/// Types that can render themselves into a [`TokenStream`].
pub trait ToTokens {
    /// Appends `self` to the stream.
    fn to_tokens(&self, tokens: &mut TokenStream);

    /// Renders `self` as a fresh stream.
    fn to_token_stream(&self) -> TokenStream {
        let mut ts = TokenStream::new();
        self.to_tokens(&mut ts);
        ts
    }
}

impl ToTokens for TokenStream {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        for tt in self.clone() {
            tokens.push(tt);
        }
    }
}

impl ToTokens for proc_macro2::TokenTree {
    fn to_tokens(&self, tokens: &mut TokenStream) {
        tokens.push(self.clone());
    }
}

/// Lexes stringified macro input; the backend of [`quote!`].
///
/// Not part of the real crate's API — do not call directly.
#[must_use]
pub fn __parse_quoted(src: &str) -> TokenStream {
    src.parse().expect("quote! body must be lexable Rust tokens")
}

/// Builds a [`TokenStream`] from literal tokens.
///
/// # Examples
///
/// ```
/// let ts = quote::quote! { fn answer() -> u32 { 42 } };
/// assert_eq!(ts.to_string(), "fn answer () -> u32 { 42 }");
/// ```
#[macro_export]
macro_rules! quote {
    ($($tt:tt)*) => {
        $crate::__parse_quoted(stringify!($($tt)*))
    };
}

#[cfg(test)]
mod tests {
    use crate::ToTokens;

    #[test]
    fn quote_builds_a_stream() {
        let ts = quote! { let x = a.b; };
        assert_eq!(ts.to_string(), "let x = a . b ;");
    }

    #[test]
    fn to_tokens_appends() {
        let a = quote! { a };
        let mut out = quote! { start };
        a.to_tokens(&mut out);
        assert_eq!(out.to_string(), "start a");
    }
}
