//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the `rand` 0.8 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`]/[`Rng::gen_bool`], and
//! [`seq::SliceRandom::choose`]/[`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64: deterministic, seedable, and of ample
//! quality for simulations and randomized testing. The output stream is
//! **not** the same as the real `rand` crate's `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word generation.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    ///
    /// Panics on an empty range, like the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 uniform mantissa bits against the threshold.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A type with uniform sampling over half-open and inclusive bounds.
///
/// Keeping the [`SampleRange`] impls generic over `T: SampleUniform`
/// (mirroring the real crate) is what lets unsuffixed literals in
/// `gen_range(0..100)` unify with the surrounding integer type.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::RngCore;

    /// Random selection and permutation over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.next_u64() as usize % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..1000u64)).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(5..10u32);
            assert!((5..10).contains(&x));
            let y = rng.gen_range(3..=4u64);
            assert!((3..=4).contains(&y));
            let z = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn choose_and_shuffle_cover_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut ys = [1, 2, 3, 4, 5];
        ys.shuffle(&mut rng);
        let mut sorted = ys;
        sorted.sort_unstable();
        assert_eq!(sorted, xs);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
