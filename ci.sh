#!/usr/bin/env bash
# Tier-1 gate for the workspace: build, test, lint, and a fixed-seed
# nemesis smoke run. Fully offline — all dependencies are vendored
# in-tree under vendor/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test -q =="
cargo test -q --workspace --offline

# The storage crate's recovery semantics are the foundation the nemesis
# disk faults stand on; run its suite by name so a storage regression is
# reported as such, not as a downstream nemesis failure.
echo "== cargo test -p adore-storage =="
cargo test -q -p adore-storage --offline

# Source-level protocol discipline: determinism (L1), panic-free
# recovery (L2), mutation/construction encapsulation (L3), certificate
# hygiene (L4), no stray console output in protocol crates (L5), the
# flow-sensitive rules — guard-before-mutation (L6), nondeterminism
# taint (L7), discarded fallible results in recovery scopes (L8) — and
# the concurrency-discipline rules L9-L12 (lock order, no-panic lock
# acquisition, no guard across blocking calls, bounded channels), and
# the spec-conformance rules L13-L15 (differential drift against the
# checker, semantic guard sufficiency, durable-before-outbound order).
# Exits non-zero on any unsuppressed finding (-D semantics); every
# suppression pragma must carry a written reason. Config: adore-lint.toml.
echo "== adore-lint =="
cargo run -q -p adore-lint --offline

# Concurrency-discipline gate, isolated: the L9-L12 self-scan runs on
# its own (same -D semantics) so a deadlock- or backpressure-discipline
# regression in the threaded runtime is reported as exactly that, not
# buried in the full-rule output above — and so the gate survives even
# if a future change teaches the full scan to tolerate other rules.
echo "== adore-lint --only L9,L10,L11,L12 =="
cargo run -q -p adore-lint --offline -- --only L9,L10,L11,L12

# Flow-discipline table: per-rule L6-L8 and L9-L12 findings plus
# isolated per-rule analysis timing. The bench self-asserts 0
# unsuppressed findings (same -D semantics as the scan above), and CI
# asserts the table was actually regenerated so results/flow_table.txt
# cannot go stale.
echo "== flow-lint table (L6-L12) =="
rm -f results/flow_table.txt
cargo run -p adore-bench --bin flow_table --release --offline >/dev/null
test -s results/flow_table.txt || {
    echo "ci: results/flow_table.txt was not regenerated" >&2
    exit 1
}

# Spec-conformance gate, isolated: the protocol handlers' extracted
# guarded-command IR is replayed differentially against the checker's
# transition system (L13), guard sufficiency (L14) and emission order
# (L15) are certified on the same IR, and the committed IR dump is
# regenerated and diffed so results/gcir.json always shows reviewers
# the exact model the gate certified.
echo "== adore-lint --only L13,L14,L15 (differential conformance) =="
cargo run -q -p adore-lint --offline -- --only L13,L14,L15
cargo run -q -p adore-lint --offline -- --dump-ir > target/gcir.regen.json
diff -u results/gcir.json target/gcir.regen.json || {
    echo "ci: results/gcir.json is stale — regenerate with adore-lint --dump-ir" >&2
    exit 1
}

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

# The nemesis campaigns are seeded (scripted ablations plus random
# schedules with seeds 0..10 fixed in the harness), so the run is
# deterministic: it self-asserts 0 sound-guard violations and one
# minimized replayable counterexample per guard ablation.
echo "== nemesis smoke run (fixed seeds) =="
cargo run -p adore-bench --bin nemesis_table --release --offline >/dev/null

# Same deal for the storage nemesis: seeded random campaigns mixing disk
# faults with network/process faults under the strict policy and the
# storage certification checker (self-asserts 0 violations), plus one
# minimized replayable counterexample per storage ablation. A small seed
# count keeps the gate fast; the full 100-seed table is E10.
echo "== storage nemesis smoke run (fixed seeds) =="
STORAGE_TABLE_SEEDS=10 \
    cargo run -p adore-bench --bin storage_table --release --offline >/dev/null

# Observability gate: run the E11 harness (self-asserts that tracing is
# invisible to the simulation, that every ablation's audit reproduces
# its live verdict, and that the streaming OnlineAuditor reproduces
# every batch verdict on every journal it writes), then re-audit the
# written journals with the standalone auditor. The auditor
# reconstructs protocol state purely from the trace; a non-zero exit
# means the audit's independent verdict no longer matches the live
# run's — i.e. instrumentation and protocol have drifted apart. CI also
# asserts the table was actually regenerated so results/obs_table.txt
# cannot go stale.
echo "== observability gate (trace-certified audit, batch == online) =="
rm -f results/obs_table.txt
cargo run -p adore-bench --bin obs_table --release --offline >/dev/null
test -s results/obs_table.txt || {
    echo "ci: results/obs_table.txt was not regenerated" >&2
    exit 1
}
cargo run -q -p adore-obs --release --offline -- --audit target/obs/r3-sound.jsonl >/dev/null
cargo run -q -p adore-obs --release --offline -- --audit target/obs/no-R3-ablated.jsonl >/dev/null

# Networked-runtime gate: a real 3-process cluster on localhost TCP.
# The smoke driver elects a leader, acknowledges writes, kill -9s the
# leader mid-stream, verifies failover with zero acked-write loss and
# zero duplicate session applies, restarts the corpse into its data
# dir, and self-audits the merged journals. The standalone auditor then
# re-certifies the same journals from scratch. `timeout` bounds the
# gate against a hung cluster (the nodes also self-limit their runtime).
echo "== adored smoke (3 nodes, kill -9 leader, audited) =="
rm -rf target/adored-smoke
timeout 150 cargo run -q -p adored --release --offline -- \
    smoke --nodes 3 --seed 7 --dir target/adored-smoke
cargo run -q -p adore-obs --release --offline -- --audit target/adored-smoke/merged.jsonl >/dev/null

# Netmesis gate: the fault-injecting wire layer runs one fixed schedule
# — a partition dropped onto a live reconfiguration — against a real
# 3-node cluster behind per-link proxies, with the availability monitor
# journaling every acked write. The hunt self-audits (zero acked-write
# loss, zero duplicate applies) and the standalone auditor re-certifies
# the merged journals. `timeout` bounds the gate; the full 25-seed
# campaign with corruption/gray-pause/reset faults is E14.
echo "== netmesis gate (partition during reconfig, audited) =="
rm -rf target/netmesis-gate
timeout 90 cargo run -q -p adored --release --offline -- \
    hunt --gate --dir target/netmesis-gate
cargo run -q -p adore-obs --release --offline -- --audit target/netmesis-gate/netmesis-gate/merged.jsonl >/dev/null

# Live-plane gate: the open-loop load generator drives a real 3-node
# cluster at three fixed offered rates while every node streams its
# trace to the in-process online auditor over TCP. The bench exits
# non-zero unless the online audit reports CERTIFIED (and, when zero
# frames were shed, unless the batch auditor agrees with the online
# verdict event-for-event). Small rates and short phases keep the gate
# bounded; the full campaign is E15.
echo "== live-plane gate (open-loop bench, online-audited) =="
rm -rf target/bench-live
timeout 120 cargo run -q -p adored --release --offline -- \
    bench --open-loop 40,80,120 --secs-per-rate 2 --seed 11 \
    --dir target/bench-live --out results/BENCH_live.json
test -s results/BENCH_live.json || {
    echo "ci: results/BENCH_live.json was not regenerated" >&2
    exit 1
}

echo "ci: all green"
