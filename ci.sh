#!/usr/bin/env bash
# Tier-1 gate for the workspace: build, test, lint, and a fixed-seed
# nemesis smoke run. Fully offline — all dependencies are vendored
# in-tree under vendor/.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test -q =="
cargo test -q --workspace --offline

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

# The nemesis campaigns are seeded (scripted ablations plus random
# schedules with seeds 0..10 fixed in the harness), so the run is
# deterministic: it self-asserts 0 sound-guard violations and one
# minimized replayable counterexample per guard ablation.
echo "== nemesis smoke run (fixed seeds) =="
cargo run -p adore-bench --bin nemesis_table --release --offline >/dev/null

echo "ci: all green"
