//! Fig. 2, executable: the same `put("a", 1)` through the three model
//! styles the paper contrasts — SMR's opaque RPC, the network-based event
//! soup, and the ADO-style atomic three-step.
//!
//! ```sh
//! cargo run --example fig2_interfaces
//! ```

use adore::core::majority::Majority;
use adore::core::{node_set, AdoreState, NodeId, PullDecision, PushDecision, Timestamp};
use adore::kv::{Cluster, KvCommand, LatencyModel};
use adore::raft::{EventOutcome, MsgId, NetEvent, NetState, Role};
use adore::schemes::SingleNode;

/// SMR (Fig. 2 top): `return rpc_call(["put","a",1]);` — one opaque call
/// against the replicated object; everything else is someone else's
/// problem.
fn smr_style() -> Result<(), Box<dyn std::error::Error>> {
    let mut cluster = Cluster::new(SingleNode::new([1, 2, 3]), LatencyModel::default(), 1);
    cluster.elect(NodeId(1))?;
    // The entire client program:
    cluster.submit(KvCommand::put("a", "1"))?;
    assert_eq!(cluster.get("a")?, Some("1".to_string()));
    println!("SMR:     one rpc_call; committed; internals invisible");
    Ok(())
}

/// Network-based (Fig. 2 middle): the client-visible operation dissolves
/// into sends, receives, and quorum counting — every line below is one of
/// the paper's pseudo-code lines.
fn network_style() {
    let mut st: NetState<SingleNode, KvCommand> = NetState::new(
        SingleNode::new([1, 2, 3]),
        adore::core::ReconfigGuard::all(),
    );
    // for s in cfg { send(s, ELECT); } ... collect votes ...
    st.step(&NetEvent::Elect { nid: NodeId(1) });
    let mut events = 1;
    for voter in [2u32, 3] {
        st.step(&NetEvent::Deliver {
            msg: MsgId(0),
            to: NodeId(voter),
        });
        events += 1;
    }
    // if !isQuorum(votes) { return FAIL; }
    assert_eq!(st.server(NodeId(1)).unwrap().role, Role::Leader);
    // for s in cfg { send(s, COMMIT, ["put","a",1]); } ... collect acks ...
    st.step(&NetEvent::Invoke {
        nid: NodeId(1),
        method: KvCommand::put("a", "1"),
    });
    st.step(&NetEvent::Commit { nid: NodeId(1) });
    events += 2;
    for acker in [2u32, 3] {
        let out = st.step(&NetEvent::Deliver {
            msg: MsgId(1),
            to: NodeId(acker),
        });
        assert_eq!(out, EventOutcome::Applied);
        events += 1;
    }
    // if isQuorum(votes) { return OK; }
    assert_eq!(st.server(NodeId(1)).unwrap().commit_len, 1);
    println!("network: {events} interleavable events to commit one command");
}

/// ADO/ADORE (Fig. 2 bottom): three atomic steps, each of which can fail —
/// `if !pull() ... if !invoke(...) ... if push() ...` — over the
/// centralized cache tree.
fn ado_style() -> Result<(), Box<dyn std::error::Error>> {
    let mut st: AdoreState<Majority, KvCommand> = AdoreState::new(Majority::new([1, 2, 3]));
    // if !pull() { return FAIL; }
    st.pull(
        NodeId(1),
        &PullDecision::Ok {
            supporters: node_set([1, 2]),
            time: Timestamp(1),
        },
    )?;
    // if !invoke(["put","a",1]) { return FAIL; }
    let m = st
        .invoke(NodeId(1), KvCommand::put("a", "1"))
        .applied()
        .expect("leader invokes");
    // if push() { return OK; } else { return FAIL; }
    st.push(
        NodeId(1),
        &PushDecision::Ok {
            supporters: node_set([1, 3]),
            target: m,
        },
    )?;
    assert_eq!(st.committed_log(), vec![m]);
    println!("ADORE:   3 atomic steps; tree:\n{}", st.render_tree());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Fig. 2 — put(\"a\", 1) in three model styles\n");
    smr_style()?;
    network_style();
    ado_style()?;
    println!("same outcome at three abstraction levels; ADORE keeps the quorum and");
    println!("uncommitted-state detail SMR hides, without the network model's event soup.");
    Ok(())
}
