//! A replicated key-value store serving requests through live
//! reconfiguration on a simulated five-node cluster.
//!
//! ```sh
//! cargo run --example kv_cluster
//! ```

use adore::core::NodeId;
use adore::kv::{Cluster, KvCommand, LatencyModel};
use adore::schemes::SingleNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cluster = Cluster::new(
        SingleNode::new([1, 2, 3, 4, 5]),
        LatencyModel::default(),
        42,
    );
    cluster.elect(NodeId(1))?;
    println!("elected {} over 5 nodes", cluster.leader().expect("leader"));

    // Serve a batch of writes.
    let mut total = 0u64;
    for i in 0..200 {
        total += cluster.submit(KvCommand::put(format!("user:{i}"), format!("balance={i}")))?;
    }
    println!(
        "200 writes, mean latency {:.2}ms",
        total as f64 / 200.0 / 1000.0
    );

    // Live reconfiguration: drop to three nodes, one at a time, while the
    // store keeps serving between the steps.
    let t = cluster.reconfigure(SingleNode::new([1, 2, 3, 4]))?;
    println!("5→4 reconfigured in {:.2}ms", t as f64 / 1000.0);
    cluster.submit(KvCommand::put("during", "reconfig"))?;
    let t = cluster.reconfigure(SingleNode::new([1, 2, 3]))?;
    println!("4→3 reconfigured in {:.2}ms", t as f64 / 1000.0);

    let lat3 = cluster.submit(KvCommand::put("small", "cluster"))?;
    println!("write on 3 nodes: {:.2}ms", lat3 as f64 / 1000.0);

    // Grow back; the fresh nodes receive the whole log (catch-up transfer).
    cluster.reconfigure(SingleNode::new([1, 2, 3, 4]))?;
    cluster.reconfigure(SingleNode::new([1, 2, 3, 4, 5]))?;
    let after_growth = cluster.submit(KvCommand::put("big", "again"))?;
    println!(
        "first write after 3→5 growth: {:.2}ms (behind the catch-up transfer)",
        after_growth as f64 / 1000.0
    );

    // Consistency: committed prefixes agree everywhere, and the store
    // materializes deterministically from them.
    cluster.verify().expect("committed prefixes agree");
    let store = cluster.committed_store();
    assert_eq!(store.get("user:0"), Some("balance=0"));
    assert_eq!(store.get("big"), Some("again"));
    println!(
        "verified: {} keys committed across {} virtual ms",
        store.len(),
        cluster.now_us() / 1000
    );
    Ok(())
}
