//! Rediscovering the Raft single-server membership-change bug (Figs. 4/12).
//!
//! Replays the paper's exact schedule under the flawed guard (no R3),
//! shows the diverging commits, dumps the counterexample as replayable
//! JSON, lets the random walker find the bug on its own, and demonstrates
//! that the full guard blocks the schedule at its first step.
//!
//! ```sh
//! cargo run --example reconfig_bug
//! ```

use adore::checker::{fig4_scenario, random_walk, ExploreParams, InvariantSuite, WalkParams};
use adore::core::ReconfigGuard;
use adore::schemes::SingleNode;

fn main() {
    // 1. The paper's schedule under Raft's original algorithm (R1+R2 only).
    let flawed = fig4_scenario(ReconfigGuard::all().without_r3());
    let (outcome, state) = flawed.run();
    let (step, violation) = outcome
        .violation
        .clone()
        .expect("the flawed algorithm loses committed data");
    println!(
        "flawed guard {}: violation after op {step}: {violation}",
        flawed.guard
    );
    println!(
        "cache tree (two CCaches on diverging branches):\n{}",
        state.render_tree()
    );

    // 2. The counterexample is a serializable artifact.
    let json = flawed.to_json();
    println!(
        "replayable counterexample ({} bytes of JSON); first lines:",
        json.len()
    );
    for line in json.lines().take(6) {
        println!("  {line}");
    }
    let reparsed: adore::checker::Scenario<SingleNode, String> =
        adore::checker::Scenario::from_json(&json).expect("round-trip");
    assert_eq!(reparsed.run().0, outcome);

    // 3. The random walker finds the same class of bug unaided.
    let params = WalkParams {
        walks: 2000,
        steps_per_walk: 30,
        explore: ExploreParams {
            guard: ReconfigGuard::all().without_r3(),
            suite: InvariantSuite::SafetyOnly,
            spare_nodes: 0,
            ..ExploreParams::default()
        },
    };
    let report = random_walk(&SingleNode::new([1, 2, 3, 4]), &params, 2026);
    let (v, trace, _) = report
        .violation
        .expect("random exploration rediscovers the bug");
    println!(
        "\nrandom walker: violation after {} applied ops ({v}); trace:",
        report.ops_applied
    );
    for op in &trace {
        println!("  {}", op.summary());
    }

    // 4. R3 ends the story: the sound guard rejects the schedule at once.
    let sound = fig4_scenario(ReconfigGuard::all());
    let (outcome, _) = sound.run();
    assert!(outcome.violation.is_none());
    println!(
        "\nsound guard {}: first rejected op = #{} (the initial reconfiguration), no violation",
        sound.guard,
        outcome.first_noop.expect("R3 rejects the first reconfig")
    );
}
