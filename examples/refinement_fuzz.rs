//! Fuzzing the Raft → SRaft → ADORE refinement across schemes and guards.
//!
//! Generates adversarial asynchronous schedules (reordering, loss,
//! duplication, rival leaders), normalizes each (Lemmas C.3/C.7/C.9 with
//! per-stage equivalence checks), and mirrors every step into a shadow
//! ADORE state asserting the `logMatch` relation.
//!
//! ```sh
//! cargo run --release --example refinement_fuzz [seeds]
//! ```

use adore::core::{Configuration, ReconfigGuard};
use adore::raft::{check_refinement, random_trace, ScheduleParams};
use adore::schemes::{Joint, PrimaryBackup, ReconfigSpace, SingleNode};

fn fuzz<C: Configuration + ReconfigSpace>(
    name: &str,
    conf0: C,
    guard: ReconfigGuard,
    check_safety: bool,
    seeds: u64,
) {
    let mut clean = 0u64;
    let mut boundary = 0u64;
    let mut unsafe_stops = 0u64;
    for seed in 0..seeds {
        let trace = random_trace(
            &conf0,
            guard,
            &ScheduleParams {
                steps: 250,
                ..ScheduleParams::default()
            },
            2,
            seed,
        );
        let report =
            check_refinement(&conf0, guard, &trace, check_safety).expect("normalization holds");
        assert!(
            report.is_clean(),
            "{name} seed {seed}: {}",
            report.violations[0]
        );
        clean += 1;
        boundary += report.partial_adoption_elections as u64;
        if report.unsafe_at.is_some() {
            unsafe_stops += 1;
        }
    }
    println!(
        "{name:<28} {clean}/{seeds} clean; {boundary} boundary stops; {unsafe_stops} runs hit the (expected) unsafety"
    );
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    println!("refinement fuzz, {seeds} schedules per row, 250 events each\n");
    fuzz(
        "single-node / sound",
        SingleNode::new([1, 2, 3, 4]),
        ReconfigGuard::all(),
        true,
        seeds,
    );
    fuzz(
        "joint consensus / sound",
        Joint::stable([1, 2, 3]),
        ReconfigGuard::all(),
        true,
        seeds,
    );
    fuzz(
        "primary-backup / sound",
        PrimaryBackup::new(1, [2, 3]),
        ReconfigGuard::all(),
        true,
        seeds,
    );
    fuzz(
        "single-node / no R3 (flawed)",
        SingleNode::new([1, 2, 3, 4]),
        ReconfigGuard::all().without_r3(),
        false,
        seeds,
    );
    println!("\nevery checked step satisfied logMatch; the flawed variant is checked up to");
    println!("its safety violation, where both models go unsafe together.");
}
