//! Nemesis walkthrough: compose an adversarial fault schedule, run it
//! against the simulated cluster with safety checking, then hunt a
//! guard-ablation bug down to a minimized, replayable JSON witness.
//!
//! Run with: `cargo run --example nemesis_demo`

use adore::core::ReconfigGuard;
use adore::nemesis::{
    hunt, r3_ablation_schedule, replay, run_schedule, DiskFault, DurabilityPolicy, EngineParams,
    Fault, FaultSchedule,
};

fn main() {
    let params = EngineParams::default();

    // 1. Compose a campaign: crash-restart churn (including a torn disk
    //    write at the crash point), an asymmetric link cut, message
    //    tampering, clock skew, and a reconfiguration — all racing client
    //    writes, all under the sound R1+^R2^R3 guard and the strict
    //    durability policy.
    let campaign = FaultSchedule {
        name: "demo".into(),
        seed: 7,
        members: vec![1, 2, 3, 4, 5],
        guard: ReconfigGuard::all(),
        durability: DurabilityPolicy::strict(),
        faults: vec![
            Fault::ClientBurst { writes: 3 },
            Fault::OrphanWrite,
            Fault::CrashDisk {
                nid: 4,
                fault: DiskFault::TornTail { keep_bytes: 5 },
            },
            Fault::CutOneWay { from: 5, to: 1 },
            Fault::Duplicate { copies: 3 },
            Fault::SkewTimeout { pct: 250 },
            Fault::ClientBurst { writes: 3 },
            Fault::ReconfigRemove { nid: 4 },
            Fault::Reorder { window_us: 4_000 },
            Fault::Recover { nid: 4 },
            Fault::HealAll,
            Fault::ClientBurst { writes: 3 },
        ],
    };
    let report = run_schedule(&campaign, &params);
    println!(
        "campaign '{}': safe={}, {}/{} ops acked, {} entries committed",
        campaign.name,
        report.is_safe(),
        report.degraded.total_acked(),
        report.degraded.total_attempted(),
        report.committed_entries
    );
    for (i, phase) in report.degraded.phases.iter().enumerate() {
        println!(
            "  phase {i:2}  {:<32} availability {:>3.0}%",
            phase.fault,
            report.degraded.availability(i) * 100.0
        );
    }
    assert!(report.is_safe());

    // 2. Ablate R3 and hunt: the engine finds the Fig. 4 divergence,
    //    delta-debugs the schedule, and emits a portable witness.
    let flawed = r3_ablation_schedule();
    let cex = hunt(&flawed, &params).expect("no-R3 must diverge");
    println!(
        "\nno-R3 hunt: {} (schedule minimized {} -> {} faults)",
        cex.violation,
        cex.original_faults,
        cex.schedule.faults.len()
    );
    let json = serde_json::to_string_pretty(&cex.schedule).expect("serializes");
    println!("minimized witness:\n{json}");

    // 3. The witness is replayable data: parse it back, replay it, and
    //    confirm both the violation and that the sound guard defuses it.
    let parsed: FaultSchedule = serde_json::from_str(&json).expect("parses");
    assert_eq!(replay(&parsed, &params), Some(cex.violation));
    assert_eq!(
        replay(&parsed.with_guard(ReconfigGuard::all()), &params),
        None
    );
    println!("\nwitness replays deterministically; restoring R3 defuses it.");
}
