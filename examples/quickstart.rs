//! Quickstart: drive the ADORE model through the paper's Fig. 5
//! walkthrough and watch the cache tree evolve.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use adore::core::majority::Majority;
use adore::core::{
    invariants, node_set, AdoreState, NodeId, PullDecision, PushDecision, ReconfigGuard, Timestamp,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three replicas; methods are plain strings.
    let mut st: AdoreState<Majority, &str> = AdoreState::new(Majority::new([1, 2, 3]));
    println!("(a) genesis:\n{}", st.render_tree());

    // (b) S1 wins an election supported by {S1, S2} and invokes M1, M2.
    st.pull(
        NodeId(1),
        &PullDecision::Ok {
            supporters: node_set([1, 2]),
            time: Timestamp(1),
        },
    )?;
    let _m1 = st.invoke(NodeId(1), "M1").applied().expect("S1 leads");
    let m2 = st.invoke(NodeId(1), "M2").applied().expect("S1 leads");
    println!("(b) S1 elected, invokes M1, M2:\n{}", st.render_tree());

    // (c) S1 commits the branch up to M2 with acknowledgements from S3.
    st.push(
        NodeId(1),
        &PushDecision::Ok {
            supporters: node_set([1, 3]),
            target: m2,
        },
    )?;
    println!("(c) S1 pushes M1·M2:\n{}", st.render_tree());

    // (d) S1 proposes a reconfiguration (same members under the static
    // scheme) — all of R1+/R2/R3 hold, so it is admitted.
    let out = st.reconfig(NodeId(1), Majority::new([1, 2, 3]), ReconfigGuard::all());
    println!("(d) S1 reconfigures: {out:?}\n{}", st.render_tree());

    // (e) S2 is elected by {S2, S3}. Neither voter has observed S1's
    // uncommitted caches, so the election lands on the committed prefix,
    // and S2's invocation forks the tree.
    st.pull(
        NodeId(2),
        &PullDecision::Ok {
            supporters: node_set([2, 3]),
            time: Timestamp(2),
        },
    )?;
    st.invoke(NodeId(2), "M3").applied().expect("S2 leads");
    println!("(e) S2 elected, invokes M3:\n{}", st.render_tree());

    // The committed log is the agreed history; every invariant of the
    // safety proof holds at every step.
    let log: Vec<String> = st
        .committed_log()
        .iter()
        .map(|id| st.cache(*id).summary())
        .collect();
    println!("committed log: {log:?}");
    let violations = invariants::check_all(&st);
    println!("invariant suite: {} violations", violations.len());
    assert!(violations.is_empty());
    Ok(())
}
