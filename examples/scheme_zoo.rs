//! The reconfiguration-scheme zoo: the same ADORE state machine run under
//! all six `isQuorum`/`R1⁺` instantiations, each validated against the
//! Fig. 7 assumptions first.
//!
//! ```sh
//! cargo run --example scheme_zoo
//! ```

use adore::core::{
    invariants, node_set, AdoreState, Configuration, NodeId, PullDecision, PushDecision,
    ReconfigGuard, Timestamp,
};
use adore::schemes::{
    powerset_configs, validate, DynamicQuorum, Joint, ManagedPrimary, PrimaryBackup, SingleNode,
    StaticMajority, WeightedMajority,
};

/// One election/commit round followed by a reconfiguration attempt under
/// the given scheme; returns whether the reconfiguration was admitted.
fn drive<C: Configuration + std::fmt::Debug>(conf0: C, quorum: &[u32], next: C) -> bool {
    let mut st: AdoreState<C, &str> = AdoreState::new(conf0);
    st.pull(
        NodeId(quorum[0]),
        &PullDecision::Ok {
            supporters: node_set(quorum.iter().copied()),
            time: Timestamp(1),
        },
    )
    .expect("valid election");
    let leader = NodeId(quorum[0]);
    let m = st
        .invoke(leader, "warmup")
        .applied()
        .expect("leader invokes");
    st.push(
        leader,
        &PushDecision::Ok {
            supporters: node_set(quorum.iter().copied()),
            target: m,
        },
    )
    .expect("valid commit");
    let admitted = st
        .reconfig(leader, next, ReconfigGuard::all())
        .applied()
        .is_some();
    assert!(invariants::check_all(&st).is_empty());
    admitted
}

fn main() {
    // 1. Raft single-node: change one member at a time.
    let v = validate(&powerset_configs(
        &node_set([1, 2, 3, 4]),
        SingleNode::from_set,
    ));
    assert!(v.is_valid());
    let ok = drive(
        SingleNode::new([1, 2, 3]),
        &[1, 2],
        SingleNode::new([1, 2, 3, 4]),
    );
    println!(
        "raft single-node:    validated on {} overlap instances; add-one admitted: {ok}",
        v.overlap_instances
    );

    // 2. Raft joint consensus: stable → joint → stable.
    let ok = drive(
        Joint::stable([1, 2, 3]),
        &[1, 2],
        Joint::stable([1, 2, 3]).enter_joint(node_set([4, 5, 6])),
    );
    println!("raft joint:          enter-joint admitted: {ok}");

    // 3. Primary-backup: quorum = any set containing the primary.
    let ok = drive(
        PrimaryBackup::new(1, [2, 3]),
        &[1],
        PrimaryBackup::new(1, [4, 5, 6, 7]),
    );
    println!(
        "primary-backup:      wholesale backup swap admitted: {ok} (quorum was the primary alone)"
    );

    // 4. Dynamic quorum sizes: a size-4 quorum of five lets three nodes go.
    let ok = drive(
        DynamicQuorum::new(4, [1, 2, 3, 4, 5]),
        &[1, 2, 3, 4],
        DynamicQuorum::new(2, [1, 2]),
    );
    println!("dynamic quorums:     5-to-2 shrink in one step admitted: {ok}");

    // 5. Static majority: only the identity reconfiguration is related.
    let admitted_same = drive(
        StaticMajority::new([1, 2, 3]),
        &[1, 2],
        StaticMajority::new([1, 2, 3]),
    );
    let admitted_other = drive(
        StaticMajority::new([1, 2, 3]),
        &[1, 2],
        StaticMajority::new([1, 2]),
    );
    println!("static majority:     identity admitted: {admitted_same}; membership change admitted: {admitted_other}");

    // 6. Weighted majority: one heavy node plus one light node is a quorum.
    let ok = drive(
        WeightedMajority::new([(1, 3), (2, 1), (3, 1), (4, 1)]),
        &[1, 2],
        WeightedMajority::new([(1, 3), (2, 1), (3, 1), (4, 1)]),
    );
    println!("weighted majority:   weight-3+1 quorum of total 6 led a round: {ok}");

    // 7. Managed primary set: promote a backup to primary in one step
    // while swapping the remaining backups wholesale.
    let ok = drive(
        ManagedPrimary::new([1, 2, 3], [4, 5]),
        &[1, 2],
        ManagedPrimary::new([1, 2, 3, 4], [6, 7]),
    );
    println!("managed primaries:   promote-and-swap admitted: {ok}");

    println!("\nall seven schemes drove the same ADORE state machine with every invariant intact.");
}
