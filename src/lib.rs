//! **Adore-rs** — atomic distributed objects with certified
//! reconfiguration: an executable, from-scratch Rust reproduction of
//! *"Adore: Atomic Distributed Objects with Certified Reconfiguration"*
//! (Honoré, Shin, Kim, Shao — PLDI 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `adore-core` | the ADORE model: cache tree, `pull`/`invoke`/`reconfig`/`push`, R1⁺/R2/R3 guards, safety invariants, CADO |
//! | [`tree`] | `adore-tree` | the append-only cache-tree substrate |
//! | [`schemes`] | `adore-schemes` | six reconfiguration-scheme instantiations + exhaustive REFLEXIVE/OVERLAP validation |
//! | [`ado`] | `adore-ado` | the original ADO model (persistent log + cache tree, Appendix D) |
//! | [`raft`] | `adore-raft` | network-based Raft, SRaft trace normalization, executable refinement to ADORE |
//! | [`checker`] | `adore-checker` | bounded-exhaustive model checker, random walker, scripted scenarios (incl. the Fig. 4 bug) |
//! | [`kv`] | `adore-kv` | replicated key-value store on a simulated cluster (the Fig. 16 workload) |
//! | [`storage`] | `adore-storage` | durable write-ahead log over a simulated disk: CRC-framed records, injectable crash faults, policy-gated recovery |
//! | [`nemesis`] | `adore-nemesis` | composable fault-injection engine: adversarial schedules (network, process, and disk faults), safety checking, minimized replayable counterexamples |
//!
//! # Quickstart
//!
//! ```
//! use adore::core::majority::Majority;
//! use adore::core::{invariants, node_set, AdoreState, NodeId, PullDecision, PushDecision, Timestamp};
//!
//! let mut st: AdoreState<Majority, &str> = AdoreState::new(Majority::new([1, 2, 3]));
//! st.pull(NodeId(1), &PullDecision::Ok { supporters: node_set([1, 2]), time: Timestamp(1) })?;
//! let m = st.invoke(NodeId(1), "put(a, 1)").applied().unwrap();
//! st.push(NodeId(1), &PushDecision::Ok { supporters: node_set([1, 3]), target: m })?;
//! assert!(invariants::check_all(&st).is_empty());
//! # Ok::<(), adore::core::OracleError>(())
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the paper-vs-measured
//! results; the `examples/` directory contains runnable walkthroughs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adore_ado as ado;
pub use adore_checker as checker;
pub use adore_core as core;
pub use adore_kv as kv;
pub use adore_nemesis as nemesis;
pub use adore_raft as raft;
pub use adore_schemes as schemes;
pub use adore_storage as storage;
pub use adore_tree as tree;
