//! The certification campaign: the heavyweight runs behind the repo's
//! "executable certification" claim, sized so the default suite stays
//! fast. The `#[ignore]`d tests are the deep versions reported in
//! `EXPERIMENTS.md`; run them with:
//!
//! ```sh
//! cargo test --release --test certification -- --ignored
//! ```

use adore::checker::{explore, random_walk, ExploreParams, InvariantSuite, WalkParams};
use adore::core::ReconfigGuard;
use adore::raft::{check_refinement, random_trace, ScheduleParams};
use adore::schemes::{Joint, ManagedPrimary, PrimaryBackup, SingleNode};

/// Fast certification: every scheme's transition system explored
/// exhaustively to depth 3 with the full invariant suite.
#[test]
fn quick_exhaustive_certification_across_schemes() {
    let params = ExploreParams {
        max_depth: 3,
        spare_nodes: 1,
        suite: InvariantSuite::Full,
        ..ExploreParams::default()
    };
    assert!(explore(&SingleNode::new([1, 2, 3]), &params).is_safe());
    assert!(explore(&Joint::stable([1, 2]), &params).is_safe());
    assert!(explore(&PrimaryBackup::new(1, [2, 3]), &params).is_safe());
    assert!(explore(&ManagedPrimary::new([1, 2], [3]), &params).is_safe());
}

/// Deep campaign: exhaustive to depth 5 on three nodes plus a spare —
/// ~215k states under the full invariant suite (reported in
/// `EXPERIMENTS.md`).
#[test]
#[ignore = "deep campaign: run with --release -- --ignored"]
fn deep_exhaustive_certification_single_node() {
    let params = ExploreParams {
        max_depth: 5,
        max_states: 5_000_000,
        spare_nodes: 1,
        suite: InvariantSuite::Full,
        ..ExploreParams::default()
    };
    let report = explore(&SingleNode::new([1, 2, 3]), &params);
    assert!(report.is_safe(), "{:?}", report.violation);
    assert!(!report.truncated);
    assert!(report.states > 100_000, "{} states", report.states);
}

/// Deep campaign: half a million random walk operations with the full
/// invariant suite, across guards — only the sound one stays clean.
#[test]
#[ignore = "deep campaign: run with --release -- --ignored"]
fn deep_random_walk_certification() {
    let sound = random_walk(
        &SingleNode::new([1, 2, 3, 4]),
        &WalkParams {
            walks: 2_000,
            steps_per_walk: 50,
            explore: ExploreParams {
                suite: InvariantSuite::Full,
                spare_nodes: 1,
                ..ExploreParams::default()
            },
        },
        2026,
    );
    assert!(sound.is_safe(), "{:?}", sound.violation);
    assert!(sound.ops_applied > 50_000);

    let flawed = random_walk(
        &SingleNode::new([1, 2, 3, 4]),
        &WalkParams {
            walks: 2_000,
            steps_per_walk: 50,
            explore: ExploreParams {
                guard: ReconfigGuard::all().without_r3(),
                suite: InvariantSuite::SafetyOnly,
                spare_nodes: 0,
                ..ExploreParams::default()
            },
        },
        2026,
    );
    assert!(flawed.violation.is_some(), "flawed guard must be caught");
}

/// Deep campaign: 500 adversarial schedules per scheme through the full
/// refinement pipeline.
#[test]
#[ignore = "deep campaign: run with --release -- --ignored"]
fn deep_refinement_certification() {
    for seed in 0..500u64 {
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let trace = random_trace(
            &conf0,
            ReconfigGuard::all(),
            &ScheduleParams {
                steps: 250,
                crash_weight: 1,
                ..ScheduleParams::default()
            },
            2,
            seed,
        );
        let report = check_refinement(&conf0, ReconfigGuard::all(), &trace, true)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(
            report.is_clean(),
            "seed {seed}: {:?}",
            report.violations.first()
        );
    }
}
