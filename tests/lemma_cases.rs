//! The case analyses of Appendix B, as directed tests.
//!
//! Each proof in Appendix B proceeds by enumerating the possible shapes of
//! the cache tree and showing the bad ones impossible. The operational
//! semantics cannot *reach* the bad shapes (that is the theorem), so these
//! tests demonstrate the case analyses from both sides:
//!
//! * the **good** shapes arise from real operation sequences and satisfy
//!   the lemma;
//! * the **bad** shapes, drawn directly with the
//!   [`StateBuilder`](adore_core::builder::StateBuilder), are exactly what
//!   the corresponding checker rejects — and each bad shape is shown to
//!   require an oracle decision the semantics refuses (`OracleError`),
//!   closing the loop on *why* it is unreachable.

use adore::core::builder::StateBuilder;
use adore::core::invariants::{self, Violation};
use adore::core::majority::Majority;
use adore::core::{
    node_set, AdoreState, NodeId, OracleError, PullDecision, PullOutcome, PushDecision,
    ReconfigGuard, Timestamp,
};
use adore::schemes::SingleNode;

fn cf() -> Majority {
    Majority::new([1, 2, 3])
}

type St = AdoreState<Majority, &'static str>;
type B = StateBuilder<Majority, &'static str>;

fn pull_ok(st: &mut St, nid: u32, supp: &[u32], t: u64) -> adore::core::CacheId {
    match st
        .pull(
            NodeId(nid),
            &PullDecision::Ok {
                supporters: node_set(supp.iter().copied()),
                time: Timestamp(t),
            },
        )
        .unwrap()
    {
        PullOutcome::Elected(id) => id,
        other => panic!("expected election, got {other:?}"),
    }
}

/// Lemma B.1 (descendant order): every operationally added cache is
/// greater than its parent — each of the four cache kinds checked at its
/// insertion site.
#[test]
fn b1_every_operation_grows_the_order() {
    let mut st: St = AdoreState::new(cf());
    // ECache: fresh timestamp above the parent's.
    let e = pull_ok(&mut st, 1, &[1, 2], 1);
    // MCache: parent's version plus one.
    let m = st.invoke(NodeId(1), "a").applied().unwrap();
    // CCache: copies (time, vrsn) but the commit bit breaks the tie up.
    st.push(
        NodeId(1),
        &PushDecision::Ok {
            supporters: node_set([1, 2]),
            target: m,
        },
    )
    .unwrap();
    // RCache: again parent's version plus one.
    st.reconfig(NodeId(1), cf(), ReconfigGuard::all())
        .applied()
        .unwrap();
    assert!(invariants::check_descendant_order(&st).is_ok());
    let _ = e;
}

/// Lemma B.2 (leader time uniqueness, rdist 0): the overlap argument. The
/// bad shape — two same-time elections — requires a pull whose timestamp
/// is not fresh for the shared voter, which the oracle validation refuses.
#[test]
fn b2_duplicate_terms_require_an_invalid_oracle() {
    let mut st: St = AdoreState::new(cf());
    pull_ok(&mut st, 1, &[1, 2], 1);
    // Any quorum of {1,2,3} shares a member with {1,2}; S2's attempt to
    // reuse timestamp 1 dies on the shared voter's freshness check.
    for supp in [[2u32, 1], [2, 3]] {
        let err = st
            .pull(
                NodeId(2),
                &PullDecision::Ok {
                    supporters: node_set(supp),
                    time: Timestamp(1),
                },
            )
            .unwrap_err();
        assert!(
            matches!(err, OracleError::StaleTimestamp { .. }),
            "{supp:?}"
        );
    }
    // The bad shape itself, drawn by hand, is what the checker rejects.
    let mut b = B::new(cf());
    b.election(0, NodeId(1), Timestamp(1), [1, 2], cf());
    b.election(0, NodeId(2), Timestamp(1), [2, 3], cf());
    assert!(matches!(
        invariants::check_leader_time_uniqueness(&b.build(), 0),
        Err(Violation::DuplicateLeaderTime { .. })
    ));
}

/// Theorem B.3 (election-commit order, rdist 0): an election outranking a
/// commit lands below it, because `mostRecent` of any quorum sees the
/// commit (quorum overlap).
#[test]
fn b3_elections_land_below_outranked_commits() {
    let mut st: St = AdoreState::new(cf());
    pull_ok(&mut st, 1, &[1, 2], 1);
    let m = st.invoke(NodeId(1), "a").applied().unwrap();
    st.push(
        NodeId(1),
        &PushDecision::Ok {
            supporters: node_set([1, 2]),
            target: m,
        },
    )
    .unwrap();
    // Every possible quorum for S3's election intersects {1,2}; wherever
    // it draws its votes, the new ECache descends from the commit.
    for supp in [[3u32, 1], [3, 2]] {
        let mut fork = st.clone();
        let e = pull_ok(&mut fork, 3, &supp, 2);
        let commit = fork.commits().max().unwrap();
        assert!(
            fork.tree().is_strict_ancestor(commit, e),
            "election with {supp:?} escaped the commit"
        );
        assert!(invariants::check_election_commit_order(&fork, 0).is_ok());
    }
    // The escaped shape, drawn by hand, is what the checker rejects.
    let mut b = B::new(cf());
    let e1 = b.election(0, NodeId(1), Timestamp(1), [1, 2], cf());
    let m1 = b.method(e1, NodeId(1), Timestamp(1), 1, "a", cf());
    b.commit(m1, NodeId(1), [1, 2], cf());
    b.election(0, NodeId(3), Timestamp(2), [2, 3], cf());
    assert!(matches!(
        invariants::check_election_commit_order(&b.build(), 0),
        Err(Violation::ElectionCommitOrder { .. })
    ));
}

/// Theorem B.4 (safety, rdist 0): the three shapes of the proof. Two
/// commits on one branch (good); forked commits under a shared election
/// (impossible: only `pull` forks the tree); forked commits under distinct
/// elections (impossible: B.3).
#[test]
fn b4_commit_pairs_stay_on_one_branch() {
    // Good shape: both commits on one branch via honest operation.
    let mut st: St = AdoreState::new(cf());
    pull_ok(&mut st, 1, &[1, 2], 1);
    let m1 = st.invoke(NodeId(1), "a").applied().unwrap();
    let m2 = st.invoke(NodeId(1), "b").applied().unwrap();
    st.push(
        NodeId(1),
        &PushDecision::Ok {
            supporters: node_set([1, 2]),
            target: m1,
        },
    )
    .unwrap();
    st.push(
        NodeId(1),
        &PushDecision::Ok {
            supporters: node_set([1, 3]),
            target: m2,
        },
    )
    .unwrap();
    assert!(invariants::check_safety(&st).is_ok());

    // Bad shape: a push whose target sits on a stale branch requires a
    // supporter that has observed a newer timestamp — or a caller that is
    // no longer leader; both die in oracle validation.
    let mut st: St = AdoreState::new(cf());
    pull_ok(&mut st, 1, &[1, 2], 1);
    let m1 = st.invoke(NodeId(1), "a").applied().unwrap();
    pull_ok(&mut st, 2, &[1, 2, 3], 2);
    let _m2 = st.invoke(NodeId(2), "x").applied().unwrap();
    // S1 (preempted) cannot commit its stale cache with any quorum.
    for supp in [[1u32, 2], [1, 3]] {
        let err = st
            .push(
                NodeId(1),
                &PushDecision::Ok {
                    supporters: node_set(supp),
                    target: m1,
                },
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                OracleError::CannotCommit | OracleError::StaleTimestamp { .. }
            ),
            "{supp:?}: {err:?}"
        );
    }
}

/// Lemma B.5/Theorem B.7 (rdist 1): with a single reconfiguration between
/// them, R1⁺ keeps quorums overlapping, so the rdist-0 arguments repeat.
#[test]
fn b5_b7_single_reconfig_keeps_the_overlap_arguments() {
    let mut st: AdoreState<SingleNode, &'static str> = AdoreState::new(SingleNode::new([1, 2, 3]));
    // Round 1: commit under {1,2,3}, then admit S4 (single-node R1+).
    st.pull(
        NodeId(1),
        &PullDecision::Ok {
            supporters: node_set([1, 2]),
            time: Timestamp(1),
        },
    )
    .unwrap();
    let m = st.invoke(NodeId(1), "a").applied().unwrap();
    st.push(
        NodeId(1),
        &PushDecision::Ok {
            supporters: node_set([1, 2]),
            target: m,
        },
    )
    .unwrap();
    st.reconfig(
        NodeId(1),
        SingleNode::new([1, 2, 3, 4]),
        ReconfigGuard::all(),
    )
    .applied()
    .unwrap();
    let r = st.invoke(NodeId(1), "b").applied().unwrap();
    st.push(
        NodeId(1),
        &PushDecision::Ok {
            supporters: node_set([1, 2, 4]),
            target: r,
        },
    )
    .unwrap();
    // An election under the new configuration still lands below the last
    // commit: its quorum must touch {1,2,4}.
    let out = st
        .pull(
            NodeId(3),
            &PullDecision::Ok {
                supporters: node_set([2, 3, 4]),
                time: Timestamp(2),
            },
        )
        .unwrap();
    let PullOutcome::Elected(e) = out else {
        panic!("quorum of the 4-node configuration expected");
    };
    let commit = st.commits().max().unwrap();
    assert!(st.tree().is_strict_ancestor(commit, e));
    assert!(invariants::check_all(&st).is_empty());
    // The whole history is one branch: rdist-1 pairs straddle the single
    // RCache, and the rdist-1 lemmas hold on them (checked by check_all).
    assert_eq!(st.tree().leaves().count(), 1);
}

/// Lemma B.8 (CCache in RCache fork): R3 forces a commit below the fork of
/// any two same-configuration reconfigurations; the commitless fork is the
/// detectable hazard.
#[test]
fn b8_fork_without_commit_is_the_hazard_r3_prevents() {
    // With R3 on, the operational path to the fork is blocked outright.
    let mut st: St = AdoreState::new(cf());
    pull_ok(&mut st, 1, &[1, 2], 1);
    assert!(st
        .reconfig(NodeId(1), cf(), ReconfigGuard::all())
        .applied()
        .is_none());
    // Without R3, the fork arises and the checker names it.
    let flawed = ReconfigGuard::all().without_r3();
    let mut st: St = AdoreState::new(cf());
    pull_ok(&mut st, 1, &[1, 2], 1);
    st.reconfig(NodeId(1), cf(), flawed).applied().unwrap();
    pull_ok(&mut st, 2, &[2, 3], 2);
    st.reconfig(NodeId(2), cf(), flawed).applied().unwrap();
    assert!(matches!(
        invariants::check_ccache_in_rcache_fork(&st),
        Err(Violation::MissingForkCommit { .. })
    ));
}

/// Theorem B.9 (safety, any rdist): the inductive decomposition —
/// a chain of guarded reconfigurations keeps safety at every rdist.
#[test]
fn b9_chained_reconfigurations_stay_safe_at_growing_rdist() {
    let mut st: AdoreState<SingleNode, &'static str> = AdoreState::new(SingleNode::new([1, 2, 3]));
    let mut time = 0u64;
    let mut members = vec![1u32, 2, 3];
    for round in 0..4 {
        time += 1;
        let leader = members[0];
        // A strict majority of the current membership.
        let supporters: Vec<u32> = members
            .iter()
            .copied()
            .take(members.len() / 2 + 1)
            .collect();
        st.pull(
            NodeId(leader),
            &PullDecision::Ok {
                supporters: node_set(supporters.iter().copied()),
                time: Timestamp(time),
            },
        )
        .unwrap();
        let m = st.invoke(NodeId(leader), "w").applied().unwrap();
        st.push(
            NodeId(leader),
            &PushDecision::Ok {
                supporters: node_set(supporters.iter().copied()),
                target: m,
            },
        )
        .unwrap();
        // Admit one more node per round — each commit raises the maximum
        // possible rdist of the history by one.
        let newcomer = 4 + round;
        members.push(newcomer);
        let r = st
            .reconfig(
                NodeId(leader),
                SingleNode::new(members.iter().copied()),
                ReconfigGuard::all(),
            )
            .applied()
            .unwrap();
        st.push(
            NodeId(leader),
            &PushDecision::Ok {
                supporters: node_set(supporters.iter().copied()),
                target: r,
            },
        )
        .unwrap();
        assert!(
            invariants::check_all(&st).is_empty(),
            "round {round} broke an invariant"
        );
    }
    // Four reconfigurations in the history; safety holds throughout.
    assert_eq!(
        st.committed_log()
            .iter()
            .filter(|id| st.cache(**id).kind() == adore::core::CacheKind::Reconfig)
            .count(),
        4
    );
}
