//! Property-based integration tests over the ADORE model: arbitrary valid
//! operation sequences — any scheme, any interleaving the oracles allow —
//! preserve the full invariant suite under the sound guard.

use adore::checker::{explore, CheckerOp, ExploreParams, InvariantSuite};
use adore::core::{invariants, AdoreState, NodeId, ReconfigGuard};
use adore::schemes::{Joint, PrimaryBackup, ReconfigSpace, SingleNode};
use proptest::prelude::*;

/// Replays a random selection among the valid successor operations at each
/// step (the oracle-resolved transition relation), asserting the invariant
/// suite after every applied op. `choices` drives which successor is taken.
fn run_random_ops<C>(conf0: C, choices: &[u16]) -> AdoreState<C, &'static str>
where
    C: adore::core::Configuration + ReconfigSpace,
{
    let params = ExploreParams {
        spare_nodes: 1,
        ..ExploreParams::default()
    };
    let mut universe = conf0.members();
    let max = universe.iter().map(|n| n.0).max().unwrap_or(0);
    universe.insert(NodeId(max + 1));
    let mut st: AdoreState<C, &'static str> = AdoreState::new(conf0);
    for &c in choices {
        let ops = adore::checker::explore::successors(&st, &params, &universe);
        if ops.is_empty() {
            break;
        }
        let op = &ops[c as usize % ops.len()];
        op.apply(&mut st, ReconfigGuard::all());
        let violations = invariants::check_all(&st);
        assert!(
            violations.is_empty(),
            "violation after {}: {:?}",
            op.summary(),
            violations[0]
        );
    }
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_node_random_ops_preserve_all_invariants(choices in prop::collection::vec(any::<u16>(), 1..25)) {
        run_random_ops(SingleNode::new([1, 2, 3]), &choices);
    }

    #[test]
    fn joint_random_ops_preserve_all_invariants(choices in prop::collection::vec(any::<u16>(), 1..20)) {
        run_random_ops(Joint::stable([1, 2, 3]), &choices);
    }

    #[test]
    fn primary_backup_random_ops_preserve_all_invariants(choices in prop::collection::vec(any::<u16>(), 1..20)) {
        run_random_ops(PrimaryBackup::new(1, [2, 3]), &choices);
    }

    /// Committed logs only grow: replaying a prefix of the choices yields a
    /// committed log that is a prefix of the full run's committed log.
    #[test]
    fn committed_log_is_monotone(choices in prop::collection::vec(any::<u16>(), 2..20), cut in 1usize..19) {
        let cut = cut.min(choices.len() - 1);
        let short = run_random_ops(SingleNode::new([1, 2, 3]), &choices[..cut]);
        let long = run_random_ops(SingleNode::new([1, 2, 3]), &choices);
        let short_log = short.committed_log();
        let long_log = long.committed_log();
        prop_assert!(short_log.len() <= long_log.len());
        // Same deterministic replay: the short log is a literal prefix.
        prop_assert_eq!(&long_log[..short_log.len()], &short_log[..]);
    }

    /// The exhaustive explorer agrees with per-path checking: any state
    /// reached by random choices is also within the explorer's reach (and
    /// hence already certified) when the depth bound covers it.
    #[test]
    fn random_paths_stay_within_certified_space(choices in prop::collection::vec(any::<u16>(), 1..4)) {
        let report = explore(&SingleNode::new([1, 2]), &ExploreParams {
            max_depth: 4,
            spare_nodes: 1,
            suite: InvariantSuite::Full,
            ..ExploreParams::default()
        });
        prop_assert!(report.is_safe());
        let st = run_random_ops(SingleNode::new([1, 2]), &choices);
        prop_assert!(invariants::check_all(&st).is_empty());
    }
}

/// The checker's op alphabet is complete for the directed scenario: the
/// Fig. 4 ops under the sound guard replay as no-ops exactly where the
/// guard bites and nowhere else.
#[test]
fn fig4_ops_replay_deterministically() {
    let scenario = adore::checker::fig4_scenario(ReconfigGuard::all().without_r3());
    let mut st: AdoreState<SingleNode, String> = AdoreState::new(scenario.conf0.clone());
    let mut applied = 0;
    for op in &scenario.ops {
        if op.apply(&mut st, scenario.guard) {
            applied += 1;
        }
    }
    assert_eq!(applied, scenario.ops.len());
    assert!(invariants::check_safety(&st).is_err());
    // The same ops under the sound guard: the reconfigs and the dependent
    // suffix fail, leaving a safe state.
    let mut st: AdoreState<SingleNode, String> = AdoreState::new(scenario.conf0.clone());
    for op in &scenario.ops {
        op.apply(&mut st, ReconfigGuard::all());
    }
    assert!(invariants::check_safety(&st).is_ok());
    let _ = CheckerOp::<SingleNode, String>::Invoke {
        caller: NodeId(1),
        method: "alphabet-completeness".to_string(),
    };
}
