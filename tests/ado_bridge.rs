//! Cross-model agreement: the ADO model (Appendix D) and the ADORE/CADO
//! model, driven by corresponding operations, agree on the committed
//! history.
//!
//! ADORE refines the ADO abstraction conceptually ("ADORE builds on the
//! ADO's core concepts", §1): where ADO keeps a persistent log and
//! discards stale branches at commit time, ADORE keeps everything in one
//! tree and marks commits with `CCaches`. This bridge mirrors a random
//! CADO run (no reconfiguration — the ADO model has none) into an ADO run
//! and checks that the ADO persistent log always equals the ADORE
//! committed log.
//!
//! The mapping is partial in two documented ways, both toward ADO being
//! the *more* abstract model:
//! * ADO discards stale branches at each commit, so an ADORE election
//!   landing on a stale branch has no ADO counterpart (the lineage is
//!   skipped and its later operations ignored);
//! * ADO's push requires the caller to be the globally maximal owner,
//!   while ADORE's valid-oracle rule only constrains the supporters'
//!   times — ADORE pushes rejected by ADO are skipped and must then be
//!   non-quorum or stale in ADORE's own terms too.

use std::collections::BTreeMap;

use adore::ado::{self, AdoState};
use adore::checker::{CheckerOp, ExploreParams};
use adore::core::majority::Majority;
use adore::core::{AdoreState, CacheId, CacheKind, NodeId, PullOutcome, PushOutcome};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Mirrors one random CADO run into ADO and checks log agreement after
/// every operation. Returns (ops applied, pushes mirrored).
fn run_bridge(seed: u64, steps: usize) -> (u64, u64) {
    let conf0 = Majority::new([1, 2, 3]);
    let universe = conf0_members();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adore: AdoreState<Majority, &'static str> = AdoreState::new(conf0.clone());
    let mut ado: AdoState<&'static str> = AdoState::new();
    // ADORE method-cache id -> ADO cid, for lineages ADO can represent.
    let mut cid_of: BTreeMap<CacheId, ado::Cid> = BTreeMap::new();
    // ADORE election cache -> whether its lineage is mapped in ADO.
    let mut lineage_ok: BTreeMap<CacheId, bool> = BTreeMap::new();
    let params = ExploreParams {
        with_reconfig: false,
        spare_nodes: 0,
        ..ExploreParams::default()
    };

    let mut applied = 0u64;
    let mut pushes = 0u64;
    for _ in 0..steps {
        let ops = adore::checker::explore::successors(&adore, &params, &universe);
        if ops.is_empty() {
            break;
        }
        // Class-weighted selection: pushes and invokes are rare among the
        // enumerated decisions but are what the bridge exercises.
        let class = rng.gen_range(0..10u32);
        let pool: Vec<&CheckerOp<Majority, &'static str>> = match class {
            0..=2 => ops
                .iter()
                .filter(|o| matches!(o, CheckerOp::Pull { .. }))
                .collect(),
            3..=5 => ops
                .iter()
                .filter(|o| matches!(o, CheckerOp::Invoke { .. }))
                .collect(),
            _ => ops
                .iter()
                .filter(|o| matches!(o, CheckerOp::Push { .. }))
                .collect(),
        };
        let op = match pool.choose(&mut rng) {
            Some(op) => (*op).clone(),
            None => ops.choose(&mut rng).expect("non-empty").clone(),
        };
        match &op {
            CheckerOp::Pull { caller, decision } => {
                let before = adore.tree().len();
                let out = adore.pull(*caller, decision).expect("enumerated decision");
                applied += 1;
                if let PullOutcome::Elected(ecache) = out {
                    let _ = before;
                    // Map the election: its snapshot is the last method
                    // cache at or above C_max (the ECache's parent chain).
                    let time = adore.cache(ecache).time();
                    let snapshot = last_method_above(&adore, ecache);
                    let mapped = match snapshot {
                        // Fully committed prefix: ADO's root snapshot.
                        None => Some(ado.root_cid()),
                        Some(m) => cid_of
                            .get(&m)
                            .copied()
                            .filter(|c| ado.cache_tree().contains_key(c) || *c == ado.root_cid()),
                    };
                    match mapped {
                        Some(snap) if ado.no_owner_at(ado_time(time)) => {
                            ado.pull(
                                ado_nid(*caller),
                                &ado::PullDecision::Ok {
                                    time: ado_time(time),
                                    snapshot: snap,
                                },
                            )
                            .expect("mapped pull is valid");
                            lineage_ok.insert(ecache, true);
                        }
                        _ => {
                            lineage_ok.insert(ecache, false);
                        }
                    }
                }
            }
            CheckerOp::Invoke { caller, method } => {
                if let Some(id) = adore.invoke(*caller, method).applied() {
                    applied += 1;
                    if lineage_is_mapped(&adore, &lineage_ok, id) {
                        match ado.invoke(ado_nid(*caller), method) {
                            Ok(cid) => {
                                cid_of.insert(id, cid);
                            }
                            Err(_) => {
                                // The ADO twin's active cache was discarded
                                // by a commit on another branch: ADO has
                                // already pruned what ADORE merely marks
                                // stale. Unmap the lineage.
                                unmap_lineage(&adore, &mut lineage_ok, id);
                            }
                        }
                    }
                }
            }
            CheckerOp::Push { caller, decision } => {
                let out = adore.push(*caller, decision).expect("enumerated decision");
                applied += 1;
                if let PushOutcome::Committed(ccache) = out {
                    let target = adore
                        .tree()
                        .parent(ccache)
                        .expect("commit has a method parent");
                    if lineage_is_mapped(&adore, &lineage_ok, target) {
                        if let Some(&cid) = cid_of.get(&target) {
                            // ADO additionally demands the caller be the
                            // maximal owner; skip when it is not (ADORE's
                            // oracle was more permissive).
                            if ado.max_owner() == Some(ado::Owner::Node(ado_nid(*caller)))
                                && ado.cache_tree().contains_key(&cid)
                                && ado
                                    .push(ado_nid(*caller), &ado::PushDecision::Ok { target: cid })
                                    .is_ok()
                            {
                                pushes += 1;
                                assert_logs_agree(&adore, &ado);
                            }
                        }
                    }
                }
            }
            CheckerOp::Reconfig { .. } => unreachable!("CADO run has no reconfig"),
        }
    }
    (applied, pushes)
}

fn conf0_members() -> adore::core::NodeSet {
    adore::core::node_set([1, 2, 3])
}

fn ado_nid(n: NodeId) -> ado::NodeId {
    ado::NodeId(n.0)
}

fn ado_time(t: adore::core::Timestamp) -> ado::Timestamp {
    ado::Timestamp(t.0)
}

/// The last `MCache` on the branch from the root to `below` (exclusive of
/// `below` itself, which is an `ECache`).
fn last_method_above(st: &AdoreState<Majority, &'static str>, below: CacheId) -> Option<CacheId> {
    st.tree()
        .ancestors_inclusive(below)
        .skip(1)
        .find(|id| st.cache(*id).kind() == CacheKind::Method)
}

/// Marks the lineage of `id` (its nearest election ancestor) unmapped.
fn unmap_lineage(
    st: &AdoreState<Majority, &'static str>,
    lineage_ok: &mut BTreeMap<CacheId, bool>,
    id: CacheId,
) {
    if let Some(e) = st
        .tree()
        .ancestors_inclusive(id)
        .find(|a| st.cache(*a).kind() == CacheKind::Election)
    {
        lineage_ok.insert(e, false);
    }
}

/// Whether the nearest election at or above `id` belongs to a mapped
/// lineage.
fn lineage_is_mapped(
    st: &AdoreState<Majority, &'static str>,
    lineage_ok: &BTreeMap<CacheId, bool>,
    id: CacheId,
) -> bool {
    st.tree()
        .ancestors_inclusive(id)
        .find(|a| st.cache(*a).kind() == CacheKind::Election)
        .and_then(|e| lineage_ok.get(&e).copied())
        .unwrap_or(false)
}

/// ADO's persistent log must equal ADORE's committed log, method by
/// method.
fn assert_logs_agree(adore: &AdoreState<Majority, &'static str>, ado: &AdoState<&'static str>) {
    let adore_log: Vec<&str> = adore
        .committed_log()
        .iter()
        .filter_map(|id| match adore.cache(*id) {
            adore::core::Cache::Method { method, .. } => Some(*method),
            _ => None,
        })
        .collect();
    let ado_log: Vec<&str> = ado.persistent_log().into_iter().copied().collect();
    assert_eq!(
        adore_log, ado_log,
        "ADO and ADORE disagree on the committed history"
    );
}

#[test]
fn random_cado_runs_agree_with_ado_on_committed_history() {
    let mut total_pushes = 0;
    for seed in 0..25 {
        let (applied, pushes) = run_bridge(seed, 60);
        assert!(applied > 0, "seed {seed} applied nothing");
        total_pushes += pushes;
    }
    // The bridge must actually exercise commits, not vacuously pass.
    assert!(
        total_pushes >= 20,
        "only {total_pushes} pushes mirrored across all seeds"
    );
}

#[test]
fn directed_round_trip_matches_exactly() {
    use adore::core::{node_set, PullDecision, PushDecision, Timestamp};
    let mut adore: AdoreState<Majority, &'static str> = AdoreState::new(Majority::new([1, 2, 3]));
    let mut ado: AdoState<&'static str> = AdoState::new();

    // Round 1: S1 commits a, b.
    adore
        .pull(
            NodeId(1),
            &PullDecision::Ok {
                supporters: node_set([1, 2]),
                time: Timestamp(1),
            },
        )
        .unwrap();
    ado.pull(
        ado::NodeId(1),
        &ado::PullDecision::Ok {
            time: ado::Timestamp(1),
            snapshot: ado.root_cid(),
        },
    )
    .unwrap();
    adore.invoke(NodeId(1), "a").applied().unwrap();
    let a = ado.invoke(ado::NodeId(1), "a").unwrap();
    let b_adore = adore.invoke(NodeId(1), "b").applied().unwrap();
    let b = ado.invoke(ado::NodeId(1), "b").unwrap();
    let _ = a;
    adore
        .push(
            NodeId(1),
            &PushDecision::Ok {
                supporters: node_set([1, 2]),
                target: b_adore,
            },
        )
        .unwrap();
    ado.push(ado::NodeId(1), &ado::PushDecision::Ok { target: b })
        .unwrap();
    assert_logs_agree(&adore, &ado);

    // Round 2: S2 takes over from the committed prefix and commits c.
    adore
        .pull(
            NodeId(2),
            &PullDecision::Ok {
                supporters: node_set([2, 3]),
                time: Timestamp(2),
            },
        )
        .unwrap();
    ado.pull(
        ado::NodeId(2),
        &ado::PullDecision::Ok {
            time: ado::Timestamp(2),
            snapshot: ado.root_cid(),
        },
    )
    .unwrap();
    let c_adore = adore.invoke(NodeId(2), "c").applied().unwrap();
    let c = ado.invoke(ado::NodeId(2), "c").unwrap();
    adore
        .push(
            NodeId(2),
            &PushDecision::Ok {
                supporters: node_set([2, 3]),
                target: c_adore,
            },
        )
        .unwrap();
    ado.push(ado::NodeId(2), &ado::PushDecision::Ok { target: c })
        .unwrap();
    assert_logs_agree(&adore, &ado);
    assert_eq!(ado.persistent_log(), vec![&"a", &"b", &"c"]);
}
