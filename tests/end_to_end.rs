//! Cross-crate integration tests: the model, the schemes, the checker, the
//! network protocol, the refinement, and the application layer working
//! together.

use adore::checker::{
    explore, fig4_scenario, random_walk, ExploreParams, InvariantSuite, WalkParams,
};
use adore::core::{invariants, Configuration, NodeId, ReconfigGuard};
use adore::kv::{run_fig16, Cluster, Fig16Params, KvCommand, LatencyModel};
use adore::raft::{check_refinement, random_trace, NetState, ScheduleParams};
use adore::schemes::{
    powerset_configs, validate, DynamicQuorum, Joint, PrimaryBackup, SingleNode, StaticMajority,
};

/// Every shipped scheme passes exhaustive REFLEXIVE/OVERLAP validation —
/// the precondition under which all other guarantees hold.
#[test]
fn all_schemes_satisfy_the_fig7_assumptions() {
    let universe = adore::core::node_set([1, 2, 3, 4]);
    assert!(validate(&powerset_configs(&universe, SingleNode::from_set)).is_valid());
    assert!(validate(&powerset_configs(&universe, StaticMajority::from_set)).is_valid());
    assert!(validate(&powerset_configs(&universe, Joint::stable_set)).is_valid());
    assert!(validate(&[
        PrimaryBackup::new(1, [2, 3]),
        PrimaryBackup::new(1, [3, 4]),
        PrimaryBackup::new(2, [1]),
    ])
    .is_valid());
    assert!(validate(&[
        DynamicQuorum::new(2, [1, 2, 3]),
        DynamicQuorum::new(3, [1, 2, 3]),
        DynamicQuorum::new(3, [1, 2, 3, 4]),
    ])
    .is_valid());
}

/// Exhaustive exploration certifies safety for several schemes at once.
#[test]
fn exhaustive_safety_holds_across_schemes() {
    let params = ExploreParams {
        max_depth: 4,
        spare_nodes: 1,
        suite: InvariantSuite::Full,
        ..ExploreParams::default()
    };
    let single = explore(&SingleNode::new([1, 2]), &params);
    assert!(single.is_safe(), "{:?}", single.violation);
    let joint = explore(&Joint::stable([1, 2]), &params);
    assert!(joint.is_safe(), "{:?}", joint.violation);
    let pb = explore(&PrimaryBackup::new(1, [2]), &params);
    assert!(pb.is_safe(), "{:?}", pb.violation);
}

/// Exhaustive search detects the no-R3 hazard at its earliest observable
/// point: Lemma B.8 (CCache in RCache fork) — the invariant whose failure
/// precedes the Fig. 4 data loss — is falsified within four operations,
/// and the shortest witness is exactly the two-forked-reconfigurations
/// prefix of the paper's schedule.
#[test]
fn exhaustive_search_finds_the_b8_early_warning_without_r3() {
    let params = ExploreParams {
        max_depth: 4,
        max_states: 1_000_000,
        guard: ReconfigGuard::all().without_r3(),
        spare_nodes: 0,
        suite: InvariantSuite::Full,
        ..ExploreParams::default()
    };
    let report = explore(&SingleNode::new([1, 2, 3]), &params);
    let (violation, trace) = report
        .violation
        .expect("exhaustive search finds the early warning");
    assert!(matches!(
        violation,
        invariants::Violation::MissingForkCommit { .. }
    ));
    assert_eq!(trace.len(), 4, "pull, reconfig, pull, reconfig");
    // The same bound under the sound guard is entirely clean.
    let sound = explore(
        &SingleNode::new([1, 2, 3]),
        &ExploreParams {
            guard: ReconfigGuard::all(),
            ..params
        },
    );
    assert!(sound.is_safe(), "{:?}", sound.violation);
}

/// The directed Fig. 4 scenario, the random walker, and the network-level
/// replay all agree on the verdict per guard.
#[test]
fn all_three_discovery_methods_agree() {
    for (guard, buggy) in [
        (ReconfigGuard::all(), false),
        (ReconfigGuard::all().without_r3(), true),
    ] {
        // Directed scenario.
        let (outcome, _) = fig4_scenario(guard).run();
        assert_eq!(outcome.violation.is_some(), buggy, "scenario under {guard}");
        // Random walker (seed chosen so the flawed variant is found well
        // within the walk budget; the sound one never is, on any seed).
        let report = random_walk(
            &SingleNode::new([1, 2, 3, 4]),
            &WalkParams {
                walks: 200,
                steps_per_walk: 30,
                explore: ExploreParams {
                    guard,
                    spare_nodes: 0,
                    suite: InvariantSuite::SafetyOnly,
                    ..ExploreParams::default()
                },
            },
            9,
        );
        assert_eq!(report.violation.is_some(), buggy, "walker under {guard}");
    }
}

/// Random network schedules refine ADORE under every sound scheme.
#[test]
fn network_runs_refine_adore_across_schemes() {
    for seed in 0..10 {
        let conf0 = SingleNode::new([1, 2, 3]);
        let report = check_refinement(
            &conf0,
            ReconfigGuard::all(),
            &random_trace(
                &conf0,
                ReconfigGuard::all(),
                &ScheduleParams::default(),
                1,
                seed,
            ),
            true,
        )
        .expect("normalization equivalence");
        assert!(report.is_clean(), "seed {seed}: {:?}", report.violations);
    }
    for seed in 0..10 {
        let conf0 = Joint::stable([1, 2, 3]);
        let report = check_refinement(
            &conf0,
            ReconfigGuard::all(),
            &random_trace(
                &conf0,
                ReconfigGuard::all(),
                &ScheduleParams::default(),
                1,
                seed,
            ),
            true,
        )
        .expect("normalization equivalence");
        assert!(report.is_clean(), "seed {seed}: {:?}", report.violations);
    }
}

/// The KV cluster's committed state is exactly the fold of its committed
/// log — the application-level reading of replicated state safety — and
/// survives a full shrink/grow cycle.
#[test]
fn kv_cluster_is_consistent_through_reconfiguration() {
    let mut cluster = Cluster::new(
        SingleNode::new([1, 2, 3, 4, 5]),
        LatencyModel::default(),
        11,
    );
    cluster.elect(NodeId(1)).expect("election");
    for i in 0..50 {
        cluster
            .submit(KvCommand::put(format!("k{i}"), format!("v{i}")))
            .expect("commit");
    }
    cluster
        .reconfigure(SingleNode::new([1, 2, 3, 4]))
        .expect("shrink");
    cluster
        .reconfigure(SingleNode::new([1, 2, 3]))
        .expect("shrink");
    for i in 50..100 {
        cluster
            .submit(KvCommand::put(format!("k{i}"), format!("v{i}")))
            .expect("commit");
    }
    cluster
        .reconfigure(SingleNode::new([1, 2, 3, 4]))
        .expect("grow");
    cluster
        .reconfigure(SingleNode::new([1, 2, 3, 4, 5]))
        .expect("grow");
    for i in 100..120 {
        cluster
            .submit(KvCommand::put(format!("k{i}"), format!("v{i}")))
            .expect("commit");
    }
    cluster.verify().expect("log safety");
    let store = cluster.committed_store();
    for i in 0..120 {
        assert_eq!(store.get(&format!("k{i}")), Some(format!("v{i}").as_str()));
    }
}

/// The Fig. 16 runner produces the paper's shape on every seed: steady
/// phases with a growth spike at the 3→5 transition, never a violation.
#[test]
fn fig16_shape_holds_across_seeds() {
    let params = Fig16Params {
        requests_per_phase: 80,
        ..Fig16Params::default()
    };
    for seed in 0..4 {
        let run = run_fig16(&params, seed).expect("simulation completes");
        assert_eq!(run.records.len(), 240);
        let steady: u64 = run.records[40..80]
            .iter()
            .map(|r| r.latency_us)
            .sum::<u64>()
            / 40;
        let growth = run.records[160].latency_us;
        assert!(growth > steady, "seed {seed}: no growth cost");
    }
}

/// The same guarded protocol that is safe in ADORE is safe at the network
/// level on random schedules — and the committed prefixes agree with the
/// effective configuration discipline.
#[test]
fn network_level_random_schedules_preserve_log_safety() {
    for seed in 0..20 {
        let conf0 = SingleNode::new([1, 2, 3, 4]);
        let trace = random_trace(
            &conf0,
            ReconfigGuard::all(),
            &ScheduleParams {
                steps: 300,
                ..ScheduleParams::default()
            },
            2,
            seed,
        );
        let mut st: NetState<SingleNode, u32> = NetState::new(conf0.clone(), ReconfigGuard::all());
        st.replay(&trace);
        st.check_log_safety()
            .unwrap_or_else(|(a, b)| panic!("seed {seed}: {a} and {b} diverge"));
        // Every server's effective configuration is R1+-reachable from the
        // one at its committed prefix (single-node changes compose).
        for (nid, server) in st.servers() {
            let _ = nid;
            let cfg = adore::raft::effective_config(&conf0, &server.log);
            assert!(!cfg.members().is_empty());
        }
    }
}
